"""Database schema catalog.

The catalog describes the tables and typed columns that queries are resolved
against.  Qr-Hint (following the paper, Section 3) assumes all columns are
``NOT NULL`` and ignores key/foreign-key constraints, so a catalog is simply
a mapping from table names to ordered, typed column lists.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SqlType(enum.Enum):
    """Supported SQL column/expression types."""

    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    BOOL = "BOOL"

    @property
    def is_numeric(self):
        return self in (SqlType.INT, SqlType.FLOAT)

    def join(self, other):
        """Result type of an arithmetic combination of two types."""
        if self == other:
            return self
        if {self, other} == {SqlType.INT, SqlType.FLOAT}:
            return SqlType.FLOAT
        raise ValueError(f"incompatible types: {self} and {other}")


@dataclass(frozen=True)
class Column:
    """A typed column of a table."""

    name: str
    type: SqlType

    def __str__(self):
        return f"{self.name} {self.type.value}"


@dataclass(frozen=True)
class Table:
    """A named table with an ordered list of columns."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self):
        seen = set()
        for col in self.columns:
            key = col.name.lower()
            if key in seen:
                raise ValueError(f"duplicate column {col.name!r} in {self.name}")
            seen.add(key)

    def column(self, name):
        """Look up a column by (case-insensitive) name, or None."""
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        return None

    @property
    def column_names(self):
        return [col.name for col in self.columns]

    def __str__(self):
        cols = ", ".join(str(c) for c in self.columns)
        return f"{self.name}({cols})"


@dataclass
class Catalog:
    """A collection of tables forming a database schema."""

    tables: dict[str, Table] = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec):
        """Build a catalog from ``{"Table": [("col", SqlType), ...], ...}``.

        Column types may be given either as :class:`SqlType` members or as
        their string names (``"INT"``, ``"STRING"``, ...).
        """
        catalog = cls()
        for table_name, columns in spec.items():
            cols = []
            for col_name, col_type in columns:
                if isinstance(col_type, str):
                    col_type = SqlType[col_type.upper()]
                cols.append(Column(col_name, col_type))
            catalog.add(Table(table_name, tuple(cols)))
        return catalog

    def add(self, table):
        key = table.name.lower()
        if key in self.tables:
            raise ValueError(f"table {table.name!r} already in catalog")
        self.tables[key] = table
        return table

    def table(self, name):
        """Look up a table by (case-insensitive) name, or None."""
        return self.tables.get(name.lower())

    def __contains__(self, name):
        return name.lower() in self.tables

    def __iter__(self):
        return iter(self.tables.values())

    def __str__(self):
        return "\n".join(str(t) for t in self.tables.values())
