"""Boolean minimization substrate (Quine-McCluskey / Petrick)."""

from repro.boolmin.minimize import (
    DONT_CARE,
    TruthTable,
    implicants_to_formula,
    min_bool_exp,
    minimize_table,
)
from repro.boolmin.quine_mccluskey import (
    implicant_covers,
    implicant_literals,
    prime_implicants,
)

__all__ = [
    "DONT_CARE",
    "TruthTable",
    "implicant_covers",
    "implicant_literals",
    "implicants_to_formula",
    "min_bool_exp",
    "minimize_table",
    "prime_implicants",
]
