"""``MinBoolExp``: minimum-size Boolean expression from a truth table.

This is the ESPRESSO-role primitive of the paper (Section 5.2): given a
partial Boolean function (outputs 0 / 1 / don't-care ``*``), find a small
sum-of-products equivalent, honoring don't-cares.  The result is returned
both abstractly (list of implicants) and as a :class:`Formula` over caller-
supplied atoms.
"""

from __future__ import annotations

from repro.boolmin.cover import select_cover
from repro.boolmin.quine_mccluskey import implicant_literals, prime_implicants
from repro.logic.formulas import FALSE, TRUE, conj, disj, neg

DONT_CARE = "*"


class TruthTable:
    """A partial Boolean function of ``num_vars`` variables.

    Rows are indexed by minterm integer; bit ``i`` of the index is the truth
    value of variable ``i``.  Missing rows default to 0.
    """

    def __init__(self, num_vars, outputs=None):
        self.num_vars = num_vars
        self.outputs = dict(outputs or {})

    def set(self, minterm, value):
        if value not in (0, 1, DONT_CARE):
            raise ValueError(f"invalid output {value!r}")
        self.outputs[minterm] = value

    def fill_stride(self, base, stride, value):
        """Set every minterm in ``range(base, 2**num_vars, stride)``.

        Bulk form of :meth:`set` for whole subtrees (a fixed low-bit prefix
        with all high-bit completions); one dict update instead of a Python
        loop of per-row calls.
        """
        if value not in (0, 1, DONT_CARE):
            raise ValueError(f"invalid output {value!r}")
        self.outputs.update(
            dict.fromkeys(range(base, 1 << self.num_vars, stride), value)
        )

    def output(self, minterm):
        return self.outputs.get(minterm, 0)

    @property
    def on_set(self):
        return [m for m, v in self.outputs.items() if v == 1]

    @property
    def dc_set(self):
        return [m for m, v in self.outputs.items() if v == DONT_CARE]

    @property
    def off_set(self):
        known = set(self.outputs)
        off = [m for m, v in self.outputs.items() if v == 0]
        off += [m for m in range(2**self.num_vars) if m not in known]
        return off


def minimize_table(table):
    """Return a minimum cover (list of implicants) for the truth table."""
    on = table.on_set
    if not on:
        return []
    primes = prime_implicants(on, table.dc_set, table.num_vars)
    return select_cover(primes, on, table.num_vars)


def implicants_to_formula(implicants, atoms):
    """Render implicants as a DNF :class:`Formula` over ``atoms``.

    ``atoms`` is the list of formulas corresponding to variables ``0..n-1``.
    An empty implicant list is FALSE; an implicant with no literals is TRUE.
    """
    if not implicants:
        return FALSE
    clauses = []
    for value, mask in implicants:
        literals = []
        for i, atom in enumerate(atoms):
            bit = 1 << i
            if mask & bit:
                continue
            literals.append(atom if value & bit else neg(atom))
        clauses.append(conj(*literals))
    return disj(*clauses)


def min_bool_exp(table, atoms):
    """The paper's ``MinBoolExp``: minimized formula for a partial function."""
    implicants = minimize_table(table)
    return implicants_to_formula(implicants, atoms)


def formula_cost(implicants, num_vars):
    """(num products, total literals) -- the minimization objective."""
    return (
        len(implicants),
        sum(implicant_literals(p, num_vars) for p in implicants),
    )
