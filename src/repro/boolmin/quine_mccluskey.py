"""Quine-McCluskey prime implicant generation with don't-cares.

An implicant over ``n`` variables is a pair ``(value, mask)`` of ints:
bit ``i`` of ``mask`` set means variable ``i`` is unconstrained (a dash);
otherwise bit ``i`` of ``value`` gives the required polarity.
"""

from __future__ import annotations


def implicant_covers(implicant, minterm):
    value, mask = implicant
    return (minterm | mask) == (value | mask)


def implicant_literals(implicant, num_vars):
    """Number of literals (non-dash positions) in the implicant."""
    _, mask = implicant
    return num_vars - bin(mask).count("1")


def prime_implicants(minterms, dont_cares, num_vars):
    """Compute all prime implicants of the on-set given don't-cares.

    ``minterms`` and ``dont_cares`` are iterables of ints in
    ``[0, 2**num_vars)``.  Returns a list of ``(value, mask)`` pairs.
    """
    current = {(m, 0) for m in set(minterms) | set(dont_cares)}
    primes = set()
    while current:
        merged = set()
        next_level = set()
        grouped = {}
        for value, mask in current:
            key = (mask, bin(value).count("1"))
            grouped.setdefault(key, []).append((value, mask))
        by_mask = {}
        for value, mask in current:
            by_mask.setdefault(mask, set()).add(value)
        for value, mask in current:
            values = by_mask[mask]
            for bit_index in range(num_vars):
                bit = 1 << bit_index
                if mask & bit:
                    continue
                partner = value ^ bit
                if partner in values and (value & bit) == 0:
                    merged.add((value, mask))
                    merged.add((partner, mask))
                    next_level.add((value & ~bit, mask | bit))
        primes |= current - merged
        current = next_level
    return sorted(primes)
