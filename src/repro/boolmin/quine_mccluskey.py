"""Quine-McCluskey prime implicant generation with don't-cares.

An implicant over ``n`` variables is a pair ``(value, mask)`` of ints:
bit ``i`` of ``mask`` set means variable ``i`` is unconstrained (a dash);
otherwise bit ``i`` of ``value`` gives the required polarity.
"""

from __future__ import annotations


def implicant_covers(implicant, minterm):
    value, mask = implicant
    return (minterm | mask) == (value | mask)


def implicant_literals(implicant, num_vars):
    """Number of literals (non-dash positions) in the implicant."""
    _, mask = implicant
    return num_vars - bin(mask).count("1")


def prime_implicants(minterms, dont_cares, num_vars):
    """Compute all prime implicants of the on-set given don't-cares.

    ``minterms`` and ``dont_cares`` are iterables of ints in
    ``[0, 2**num_vars)``.  Returns a list of ``(value, mask)`` pairs.
    """
    current = {(m, 0) for m in set(minterms) | set(dont_cares)}
    primes = set()
    while current:
        merged = set()
        next_level = set()
        by_mask = {}
        for value, mask in current:
            by_mask.setdefault(mask, set()).add(value)
        for mask, values in by_mask.items():
            # Two implicants merge only if they share a mask and differ in
            # exactly one free bit, i.e. their popcounts differ by one.
            # Group by popcount so each value only probes the next group,
            # and hoist the free-bit list out of the inner loop.
            free_bits = [
                1 << b for b in range(num_vars) if not mask & (1 << b)
            ]
            by_count = {}
            for value in values:
                by_count.setdefault(bin(value).count("1"), set()).add(value)
            for count, group in by_count.items():
                partners = by_count.get(count + 1)
                if not partners:
                    continue
                for value in group:
                    for bit in free_bits:
                        if value & bit:
                            continue
                        partner = value | bit
                        if partner in partners:
                            merged.add((value, mask))
                            merged.add((partner, mask))
                            next_level.add((value, mask | bit))
        primes |= current - merged
        current = next_level
    return sorted(primes)
