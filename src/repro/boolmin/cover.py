"""Minimum-cover selection over prime implicants.

Petrick's method gives an exact minimum cover for small tables; a greedy
set-cover fallback handles larger instances (mirroring how ESPRESSO trades
exactness for speed).  The objective is lexicographic: fewest implicants,
then fewest total literals -- a faithful proxy for the paper's
smallest-syntax-tree objective for DNF formulas.
"""

from __future__ import annotations

import itertools

from repro.boolmin.quine_mccluskey import implicant_covers, implicant_literals

_EXACT_LIMIT_PRIMES = 18
_EXACT_LIMIT_MINTERMS = 64


def select_cover(primes, minterms, num_vars):
    """Choose a minimum subset of ``primes`` covering all ``minterms``."""
    minterms = sorted(set(minterms))
    if not minterms:
        return []
    coverage = {
        prime: frozenset(m for m in minterms if implicant_covers(prime, m))
        for prime in primes
    }
    useful = [p for p in primes if coverage[p]]

    # Essential primes first: a minterm covered by exactly one prime.
    essential = set()
    for m in minterms:
        covering = [p for p in useful if m in coverage[p]]
        if len(covering) == 1:
            essential.add(covering[0])
    covered = set()
    for p in essential:
        covered |= coverage[p]
    remaining = [m for m in minterms if m not in covered]
    candidates = [p for p in useful if p not in essential]

    if not remaining:
        return sorted(essential)

    if len(candidates) <= _EXACT_LIMIT_PRIMES and len(remaining) <= _EXACT_LIMIT_MINTERMS:
        extra = _exact_cover(candidates, remaining, coverage, num_vars)
    else:
        extra = _greedy_cover(candidates, remaining, coverage, num_vars)
    return sorted(essential | set(extra))


def _exact_cover(candidates, remaining, coverage, num_vars):
    """Branch-and-bound exact minimum cover (Petrick-equivalent)."""
    best = None
    best_key = None

    def key_of(selection):
        literals = sum(implicant_literals(p, num_vars) for p in selection)
        return (len(selection), literals)

    for size in range(1, len(candidates) + 1):
        if best is not None and size > best_key[0]:
            break
        for combo in itertools.combinations(candidates, size):
            covered = set()
            for p in combo:
                covered |= coverage[p]
            if all(m in covered for m in remaining):
                k = key_of(combo)
                if best is None or k < best_key:
                    best, best_key = combo, k
        if best is not None:
            break
    return list(best) if best is not None else _greedy_cover(
        candidates, remaining, coverage, num_vars
    )


def _greedy_cover(candidates, remaining, coverage, num_vars):
    chosen = []
    uncovered = set(remaining)
    pool = list(candidates)
    while uncovered:
        best = max(
            pool,
            key=lambda p: (
                len(coverage[p] & uncovered),
                -implicant_literals(p, num_vars),
            ),
        )
        if not coverage[best] & uncovered:
            break  # cannot make progress; inputs were inconsistent
        chosen.append(best)
        uncovered -= coverage[best]
        pool.remove(best)
    return chosen
