"""``DeriveFixes`` and ``DistributeFixes`` (Algorithm 3, Section 5.2).

Pushes a target bound top-down through the predicate's syntax tree: each
node splits its bound among its children -- as loosely as their repair
bounds allow -- so that any child fixes within their target bounds compose
into a predicate within the node's bound (Lemma 5.4).  Sibling repair sites
under the same AND/OR parent are merged into one combined site, fixed via
``MinFix``, and the resulting clauses are distributed back to the original
sites by syntactic similarity.
"""

from __future__ import annotations

from repro.core.bounds import create_bounds
from repro.core.minfix import min_fix, min_fix_pos
from repro.logic.formulas import And, FALSE, Not, Or, TRUE, conj, disj, neg
from repro.logic.paths import node_at, paths_under


def derive_fixes(predicate, sites, target, solver, context=()):
    """Compute fixes for ``sites`` making ``predicate`` equivalent to target.

    ``sites`` are paths into ``predicate``.  Returns {path: fix_formula}.
    Precondition (checked by the caller via ``CreateBounds``): the target
    lies within the repair bounds of the sites.
    """
    return _derive(predicate, list(sites), target, target, solver, context)


def _derive(node, sites, lower, upper, solver, context):
    if () in sites:
        return {(): min_fix(lower, upper, solver, context)}
    if node.is_atomic() or not node.children():
        return {}
    if isinstance(node, Not):
        child_fixes = _derive(
            node.child,
            paths_under(sites, (0,)),
            neg(upper),
            neg(lower),
            solver,
            context,
        )
        return {(0,) + path: fix for path, fix in child_fixes.items()}
    if not isinstance(node, (And, Or)):
        raise TypeError(f"unexpected formula node {node!r}")

    is_and = isinstance(node, And)
    children = node.children()
    child_sites = [paths_under(sites, (i,)) for i in range(len(children))]
    child_bounds = [
        create_bounds(child, child_sites[i]) for i, child in enumerate(children)
    ]

    # Children that are themselves repair sites get merged into one combined
    # site ``r`` with repair bound [FALSE, TRUE].
    repaired = [i for i in range(len(children)) if (i,) in sites]
    other = [i for i in range(len(children)) if (i,) not in sites]

    members = list(other)
    if repaired:
        members.append("r")

    fixes = {}
    for member in members:
        rest_lowers, rest_uppers = [], []
        for peer in members:
            if peer == member:
                continue
            if peer == "r":
                rest_lowers.append(FALSE)
                rest_uppers.append(TRUE)
            else:
                rest_lowers.append(child_bounds[peer][0])
                rest_uppers.append(child_bounds[peer][1])
        combine = conj if is_and else disj
        rest_lower = combine(*rest_lowers) if rest_lowers else (TRUE if is_and else FALSE)
        rest_upper = combine(*rest_uppers) if rest_uppers else (TRUE if is_and else FALSE)

        if member == "r":
            own_lower, own_upper = FALSE, TRUE
        else:
            own_lower, own_upper = child_bounds[member]

        if is_and:
            target_lower = lower
            target_upper = conj(own_upper, disj(upper, neg(rest_upper)))
        else:
            target_lower = disj(own_lower, conj(lower, neg(rest_lower)))
            target_upper = upper

        if member == "r":
            if is_and:
                combined_fix = min_fix_pos(target_lower, target_upper, solver, context)
            else:
                combined_fix = min_fix(target_lower, target_upper, solver, context)
            originals = {i: children[i] for i in repaired}
            distributed = distribute_fixes(combined_fix, originals, is_and)
            for i, fix in distributed.items():
                fixes[(i,)] = fix
        else:
            if not child_sites[member]:
                continue  # nothing to repair below this child
            child_fixes = _derive(
                children[member],
                child_sites[member],
                target_lower,
                target_upper,
                solver,
                context,
            )
            for path, fix in child_fixes.items():
                fixes[(member,) + path] = fix
    return fixes


def distribute_fixes(combined_fix, originals, is_and):
    """``DistributeFixes``: split a combined fix among sibling sites.

    ``originals`` maps child index -> the original subtree at that site.
    The combined fix is decomposed into clauses (CNF conjuncts under an AND
    parent, DNF disjuncts under an OR parent); each clause is assigned to
    the site whose original subtree it is syntactically most similar to.
    Sites receiving no clause get the neutral element (TRUE under AND,
    FALSE under OR).
    """
    indices = sorted(originals)
    if len(indices) == 1:
        return {indices[0]: combined_fix}

    clauses = _split_clauses(combined_fix, is_and)
    assigned = {i: [] for i in indices}
    signatures = {i: _atom_signature(originals[i]) for i in indices}
    cursor = 0
    for clause in clauses:
        clause_sig = _atom_signature(clause)
        best, best_score = None, -1.0
        for i in indices:
            score = _jaccard(clause_sig, signatures[i])
            if score > best_score:
                best, best_score = i, score
        if best_score <= 0.0:
            best = indices[cursor % len(indices)]  # round-robin tie-break
            cursor += 1
        assigned[best].append(clause)

    neutral = TRUE if is_and else FALSE
    combine = conj if is_and else disj
    return {
        i: (combine(*clauses_i) if clauses_i else neutral)
        for i, clauses_i in assigned.items()
    }


def _split_clauses(formula, is_and):
    if is_and and isinstance(formula, And):
        return list(formula.operands)
    if not is_and and isinstance(formula, Or):
        return list(formula.operands)
    return [formula]


def _atom_signature(formula):
    from repro.logic.terms import Const

    out = set()
    for atom in formula.atoms():
        out.add(str(atom))
        out.add(str(atom.negated()))
        out.add(f"op:{atom.op}")
        out.add(f"op:{atom.negated().op}")
        for var in atom.left.variables() | atom.right.variables():
            out.add(var.name)
        for side in (atom.left, atom.right):
            if isinstance(side, Const):
                out.add(f"const:{side}")
    return out


def _jaccard(a, b):
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0
