"""The Qr-Hint orchestrator (Section 3.1).

Walks the logical execution flow FROM -> WHERE -> GROUP BY -> HAVING ->
SELECT.  At each stage it runs the viability check; on failure it computes
a repair, emits hints, and (in autofix mode, used for verification and
experiments) applies its own repair to the working query before moving on.
By Theorem 3.1 the staged fixes compose into a query equivalent to the
target, which callers can confirm via the relational engine's differential
check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.core import hints as hint_templates
from repro.core.cost import DEFAULT_SITE_WEIGHT
from repro.core.from_stage import apply_from_fix, check_from
from repro.core.groupby_stage import apply_grouping_fix, fix_grouping
from repro.core.having_stage import (
    analyze_having,
    having_equivalent,
    repair_having,
    split_having,
)
from repro.core.select_stage import apply_select_fix, fix_select
from repro.core.table_mapping import unify_target
from repro.core.where_repair import repair_where
from repro.errors import RepairError
from repro.logic.substitute import substitute
from repro.obs import JOURNAL, REGISTRY, TRACER
from repro.obs.effort import effort_delta, effort_snapshot, nonzero
from repro.query import ResolvedQuery
from repro.service.deadline import DeadlineExceeded
from repro.solver import Solver
from repro.solver.aggregates import agg_scalar_var
from repro.sqlparser import parse_query

STAGES_SPJ = ("FROM", "WHERE", "SELECT")
STAGES_SPJA = ("FROM", "WHERE", "GROUP BY", "HAVING", "SELECT")

_STAGE_SECONDS = REGISTRY.histogram(
    "repro_stage_seconds",
    "Pipeline stage wall time per run.",
    ("stage",),
)
_DEADLINE_EXPIRED = REGISTRY.counter(
    "repro_deadline_expired_total",
    "Pipeline runs that exhausted their time budget, by stage reached.",
    ("stage",),
)
_DEGRADED = REGISTRY.counter(
    "repro_degraded_total",
    "Best-effort partial (degraded) reports returned.",
)


@dataclass
class StageResult:
    """Outcome of one pipeline stage."""

    stage: str
    passed: bool  # viability held before any fix
    hints: list = field(default_factory=list)
    repair_cost: float | None = None
    elapsed: float = 0.0
    query_after: ResolvedQuery | None = None


@dataclass
class Report:
    """Full pipeline outcome.

    Reports are cache-safe: ``run()`` freezes the stage list and each
    stage's hints into tuples, so a report memoized by the service layer
    (``repro.service``) can be shared across threads and pickled to batch
    workers without aliasing mutable state.
    """

    stages: tuple
    final_query: ResolvedQuery
    target_query: ResolvedQuery
    elapsed: float
    #: True when the run's deadline expired mid-pipeline and the report is
    #: a best-effort partial: stages graded before expiry are exact; the
    #: stage named by ``degraded_stage`` carries one coarse stage-level
    #: hint and later stages are absent.  Degraded reports are never
    #: cached by the service layer.
    degraded: bool = False
    degraded_stage: str | None = None

    @property
    def all_passed(self):
        return all(stage.passed for stage in self.stages)

    @property
    def hints(self):
        out = []
        for stage in self.stages:
            out.extend(stage.hints)
        return out

    def summary(self):
        lines = []
        for stage in self.stages:
            status = "ok" if stage.passed else "repair"
            lines.append(f"{stage.stage:9s} {status}")
            for hint in stage.hints:
                lines.append(f"    {hint.message}")
        return "\n".join(lines)


class QrHint:
    """End-to-end hint generation for a (target, working) query pair."""

    def __init__(
        self,
        catalog,
        target,
        working,
        max_sites=2,
        optimized=True,
        solver=None,
        weight=DEFAULT_SITE_WEIGHT,
        deadline=None,
    ):
        self.catalog = catalog
        self.target = self._coerce(target)
        self.working = self._coerce(working)
        self.max_sites = max_sites
        self.optimized = optimized
        self.solver = solver or Solver()
        self.weight = weight
        #: Optional :class:`repro.service.deadline.Deadline`.  Attached to
        #: the solver for the duration of the run; expiry mid-stage yields
        #: a degraded partial report instead of an exception.
        self.deadline = deadline
        self._current_stage = None

    def _coerce(self, query):
        if isinstance(query, str):
            return parse_query(query, self.catalog)
        return query

    # ------------------------------------------------------------------

    def run(self):
        """Run all stages, auto-applying each repair (Theorem 3.1 walk)."""
        with TRACER.span("pipeline.run") as span:
            report = self._run()
            span.set(all_passed=report.all_passed)
            return report

    # -- per-stage effort attribution ----------------------------------

    def _stage_effort_start(self):
        """Solver counter snapshot, only while a trace is recording."""
        return effort_snapshot(self.solver) if TRACER.enabled else None

    def _stage_effort_finish(self, span, before):
        """Attach the stage's nonzero solver-counter delta to its span."""
        if before is not None:
            span.set(
                effort=nonzero(
                    effort_delta(before, effort_snapshot(self.solver))
                )
            )

    def _stage_begin(self, name):
        """Per-stage deadline poll; names the stage for degradation."""
        self._current_stage = name
        if self.deadline is not None:
            self.deadline.check(name)

    def _run(self):
        start = time.perf_counter()
        deadline = self.deadline
        if deadline is not None:
            # A budget spent before any work is a caller problem (HTTP maps
            # it to 408); degradation only covers expiry *during* the run.
            deadline.check("pipeline.start")
        stages = []
        state = {"working": self.working, "target": self.target}
        degraded_stage = None
        if deadline is not None:
            self.solver.deadline = deadline
        try:
            self._run_stages(stages, state)
        except DeadlineExceeded:
            degraded_stage = self._current_stage or "FROM"
            stages.append(self._degraded_stage_result(degraded_stage))
            _DEADLINE_EXPIRED.inc(stage=degraded_stage)
            _DEGRADED.inc()
            JOURNAL.record(
                "deadline.expired",
                stage=degraded_stage,
                stages_done=len(stages) - 1,
            )
        finally:
            if deadline is not None:
                self.solver.deadline = None
        for result in stages:
            result.hints = tuple(result.hints)
            _STAGE_SECONDS.observe(result.elapsed, stage=result.stage)
        return Report(
            stages=tuple(stages),
            final_query=state["working"],
            target_query=state["target"],
            elapsed=time.perf_counter() - start,
            degraded=degraded_stage is not None,
            degraded_stage=degraded_stage,
        )

    def _degraded_stage_result(self, stage):
        """The coarse stage-level hint standing in for an unfinished stage."""
        hint = hint_templates.Hint(
            stage=stage,
            kind="degraded",
            message=(
                f"time budget exhausted while grading the {stage} stage; "
                "earlier stages are exact -- retry with a larger timeout "
                "for a precise hint"
            ),
        )
        return StageResult(stage, passed=False, hints=[hint])

    def _run_stages(self, stages, state):
        """The staged Theorem 3.1 walk; appends each finished stage.

        ``stages``/``state`` are caller-owned so that a
        :class:`DeadlineExceeded` escaping mid-stage leaves every
        *completed* stage (and the latest working/target queries) visible
        to ``_run``'s degradation handler.
        """
        working = state["working"]

        # ---- FROM ----
        self._stage_begin("FROM")
        stage_start = time.perf_counter()
        with TRACER.span("stage.FROM") as span:
            effort_before = self._stage_effort_start()
            delta = check_from(self.target, working)
            result = StageResult("FROM", passed=delta.viable)
            if not delta.viable:
                result.hints = hint_templates.from_stage_hints(delta)
                working = apply_from_fix(working, self.target, delta)
            span.set(passed=result.passed)
            self._stage_effort_finish(span, effort_before)
        result.elapsed = time.perf_counter() - stage_start
        result.query_after = working
        stages.append(result)
        state["working"] = working

        # ---- unify alias namespaces (table mapping) ----
        target, _mapping = unify_target(self.target, working, self.catalog)

        spja = target.is_spja or working.is_spja
        if spja:
            new_where_t, new_having_t = split_having(
                target.where, target.group_by, target.having
            )
            target = replace(target, where=new_where_t, having=new_having_t)
            new_where_w, new_having_w = split_having(
                working.where, working.group_by, working.having
            )
            working = replace(working, where=new_where_w, having=new_having_w)
        state["target"] = target
        state["working"] = working

        # ---- WHERE ----
        self._stage_begin("WHERE")
        stage_start = time.perf_counter()
        with TRACER.span("stage.WHERE") as span:
            effort_before = self._stage_effort_start()
            result = StageResult("WHERE", passed=True)
            if not self.solver.is_equiv(working.where, target.where):
                result.passed = False
                repair_result = repair_where(
                    working.where,
                    target.where,
                    max_sites=self.max_sites,
                    optimized=self.optimized,
                    solver=self.solver,
                    weight=self.weight,
                )
                if not repair_result.found:
                    raise RepairError("WHERE stage found no viable repair")
                result.hints = hint_templates.predicate_repair_hints(
                    "WHERE", repair_result.repair, working.where
                )
                result.repair_cost = repair_result.cost
                working = replace(
                    working, where=repair_result.repair.apply(working.where)
                )
            span.set(passed=result.passed)
            self._stage_effort_finish(span, effort_before)
        result.elapsed = time.perf_counter() - stage_start
        result.query_after = working
        stages.append(result)
        state["working"] = working

        if spja:
            # ---- GROUP BY ----
            self._stage_begin("GROUP BY")
            stage_start = time.perf_counter()
            with TRACER.span("stage.GROUP BY") as span:
                effort_before = self._stage_effort_start()
                delta = fix_grouping(
                    target.where, working.group_by, target.group_by,
                    self.solver
                )
                result = StageResult("GROUP BY", passed=delta.viable)
                if not delta.viable:
                    result.hints = hint_templates.grouping_hints(
                        delta, working.group_by
                    )
                    working = replace(
                        working,
                        group_by=apply_grouping_fix(
                            working.group_by, target.group_by, delta
                        ),
                    )
                span.set(passed=result.passed)
                self._stage_effort_finish(span, effort_before)
            result.elapsed = time.perf_counter() - stage_start
            result.query_after = working
            stages.append(result)
            state["working"] = working

            # ---- HAVING ----
            self._stage_begin("HAVING")
            stage_start = time.perf_counter()
            with TRACER.span("stage.HAVING") as span:
                effort_before = self._stage_effort_start()
                analysis = analyze_having(
                    target.where,
                    working.group_by,
                    target.group_by,
                    working.having,
                    target.having,
                )
                passed = having_equivalent(analysis, self.solver)
                result = StageResult("HAVING", passed=passed)
                if not passed:
                    repair_result = repair_having(
                        analysis,
                        max_sites=self.max_sites,
                        optimized=self.optimized,
                        solver=self.solver,
                    )
                    if not repair_result.found:
                        raise RepairError(
                            "HAVING stage found no viable repair"
                        )
                    result.hints = hint_templates.predicate_repair_hints(
                        "HAVING", repair_result.repair,
                        analysis.working_scalar
                    )
                    result.repair_cost = repair_result.cost
                    fixed_scalar = repair_result.repair.apply(
                        analysis.working_scalar
                    )
                    working = replace(
                        working, having=analysis.descalarize(fixed_scalar)
                    )
                span.set(passed=result.passed)
                self._stage_effort_finish(span, effort_before)
            result.elapsed = time.perf_counter() - stage_start
            result.query_after = working
            stages.append(result)
            state["working"] = working

        # ---- SELECT ----
        self._stage_begin("SELECT")
        stage_start = time.perf_counter()
        with TRACER.span("stage.SELECT") as span:
            effort_before = self._stage_effort_start()
            if spja:
                analysis = analyze_having(
                    target.where,
                    working.group_by,
                    target.group_by,
                    working.having,
                    target.having,
                )
                context = analysis.context + (analysis.target_scalar,)
            else:
                context = (target.where,)
            delta = fix_select(
                working.select, target.select, context, self.solver
            )
            passed = delta.viable and working.distinct == target.distinct
            result = StageResult("SELECT", passed=passed)
            if not delta.viable:
                result.hints.extend(
                    hint_templates.select_hints(
                        delta, working.select, len(target.select)
                    )
                )
                working = replace(
                    working,
                    select=apply_select_fix(
                        working.select, target.select, delta
                    ),
                    select_aliases=(),
                )
            if working.distinct != target.distinct:
                result.hints.append(
                    hint_templates.distinct_hint(working.distinct)
                )
                working = replace(working, distinct=target.distinct)
            span.set(passed=result.passed)
            self._stage_effort_finish(span, effort_before)
        result.elapsed = time.perf_counter() - stage_start
        result.query_after = working
        stages.append(result)
        state["working"] = working


def grade(catalog, target, working, **options):
    """Side-effect-free one-call entry point: grade one submission.

    ``target`` and ``working`` may be SQL text or resolved queries;
    ``options`` are forwarded to :class:`QrHint` (``max_sites``,
    ``optimized``, ``solver``, ``weight``).  Returns the frozen
    :class:`Report`.  Long-lived callers should prefer
    :class:`repro.service.AssignmentSession`, which reuses the target
    parse, the solver, and memoized reports across submissions.
    """
    return QrHint(catalog, target, working, **options).run()

