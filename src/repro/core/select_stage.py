"""SELECT stage: ``FixSelect`` (Algorithm 9, Section 8).

Checks positional equivalence of the SELECT lists under the stage context
(WHERE for SPJ queries; the HAVING base context for SPJA queries) and
computes per-position removal/addition sets, which are strongly minimal for
SPJ queries (Lemma F.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver import default_solver
from repro.solver.aggregates import scalarize_term


@dataclass
class SelectDelta:
    """The SELECT-stage diff: positions to replace/trim/extend."""

    remove: list = field(default_factory=list)  # 0-based positions in working
    add: list = field(default_factory=list)  # 0-based positions in target

    @property
    def viable(self):
        return not self.remove and not self.add


def fix_select(working_terms, target_terms, context=(), solver=None):
    """``FixSelect(P, o, o*)``: per-index inequivalent positions."""
    solver = solver or default_solver()
    delta = SelectDelta()
    overlap = min(len(working_terms), len(target_terms))
    for index in range(overlap):
        working_scalar, _ = scalarize_term(working_terms[index])
        target_scalar, _ = scalarize_term(target_terms[index])
        if not solver.terms_equal(working_scalar, target_scalar, context):
            delta.remove.append(index)
            delta.add.append(index)
    delta.remove.extend(range(overlap, len(working_terms)))
    delta.add.extend(range(overlap, len(target_terms)))
    return delta


def select_equivalent(working_terms, target_terms, context=(), solver=None):
    """Viability check V5."""
    return fix_select(working_terms, target_terms, context, solver).viable


def apply_select_fix(working_terms, target_terms, delta):
    """Apply the fix: substitute/extend positions from the target list."""
    out = list(working_terms)
    for index in sorted(set(delta.remove) & set(delta.add)):
        out[index] = target_terms[index]
    for index in sorted(set(delta.remove) - set(delta.add), reverse=True):
        del out[index]
    for index in sorted(set(delta.add) - set(delta.remove)):
        out.append(target_terms[index])
    return tuple(out)
