"""HAVING stage (Section 7): aggregate-aware condition repair.

HAVING conditions are *scalarized*: aggregate calls are normalized (Appendix
E linearity rules) and replaced by scalar variables; the WHERE condition and
witness-row facts become the background context.  Equivalence and repair
then reuse the WHERE-stage machinery verbatim -- exactly the paper's design
("we invoke the exact same procedures as for WHERE to find a repair").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.where_repair import repair_where
from repro.logic.formulas import TRUE, conj
from repro.logic.terms import AggCall
from repro.solver import default_solver
from repro.solver.aggregates import HavingContext, scalarize_formula


@dataclass
class HavingAnalysis:
    """Scalarized HAVING formulas plus their shared context."""

    working_scalar: object
    target_scalar: object
    context: tuple
    aggregates: frozenset = frozenset()  # canonical AggCall terms

    def descalarize(self, formula):
        """Map scalar aggregate variables back to aggregate calls."""
        from repro.logic.substitute import substitute
        from repro.solver.aggregates import agg_scalar_var

        mapping = {agg_scalar_var(agg): agg for agg in self.aggregates}
        return substitute(formula, mapping)


def split_having(where, group_terms, having):
    """Move aggregate-free top-level HAVING conjuncts into WHERE.

    This is the WHERE-stage "look-ahead" of Section 3.1: a condition over
    grouped columns is constant within each group, so filtering groups by it
    (HAVING) equals filtering rows by it (WHERE).  Returns
    ``(new_where, new_having)``.
    """
    if having == TRUE:
        return where, having
    from repro.logic.formulas import And

    conjuncts = having.operands if isinstance(having, And) else (having,)
    movable, kept = [], []
    for conjunct in conjuncts:
        if conjunct.has_aggregate():
            kept.append(conjunct)
        else:
            movable.append(conjunct)
    return conj(where, *movable), conj(*kept)


def analyze_having(where, working_group, target_group, working_having,
                   target_having):
    """Scalarize both HAVING conditions and build the shared context."""
    working_scalar, aggs_w = scalarize_formula(working_having)
    target_scalar, aggs_t = scalarize_formula(target_having)
    group_terms = list(working_group) + [
        t for t in target_group if t not in working_group
    ]
    aggregates = frozenset(aggs_w | aggs_t)
    context = HavingContext(where, group_terms).build(aggregates)
    return HavingAnalysis(working_scalar, target_scalar, context, aggregates)


def having_equivalent(analysis, solver=None):
    """Viability check V4 under the HAVING base context."""
    solver = solver or default_solver()
    return solver.is_equiv(
        analysis.working_scalar, analysis.target_scalar, analysis.context
    )


def repair_having(analysis, max_sites=2, optimized=True, solver=None):
    """Repair the (scalarized) working HAVING toward the target's."""
    solver = solver or default_solver()
    return repair_where(
        analysis.working_scalar,
        analysis.target_scalar,
        max_sites=max_sites,
        optimized=optimized,
        solver=solver,
        context=analysis.context,
    )
