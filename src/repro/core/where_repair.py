"""``RepairWhere`` (Algorithm 1): minimum-cost predicate repair search.

Enumerates candidate repair-site sets in ascending size, tests viability
exactly via ``CreateBounds`` (Section 5.1), derives fixes via
``DeriveFixes`` (default) or ``MinFixMult``/DeriveFixesOPT (optimized), and
keeps the cheapest correct repair found.  Early-stops once the per-site
cost penalty alone exceeds the best cost so far.

A trace of every viable repair found (timestamp, cost, sites) is recorded,
reproducing Figure 4 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.bounds import bounds_admit, create_bounds
from repro.core.cost import (
    DEFAULT_SITE_WEIGHT,
    Repair,
    repair_cost,
    site_count_cost,
    sites_cost_lower_bound,
)
from repro.core.derive_fixes import derive_fixes
from repro.core.derive_opt import min_fix_mult
from repro.errors import RepairError, SolverLimitError
from repro.logic.paths import disjoint_path_sets, repairable_paths
from repro.solver import default_solver


@dataclass
class TraceEntry:
    """One viable repair discovered during the search (Figure 4)."""

    elapsed: float
    cost: float
    sites: tuple
    repair: Repair


@dataclass
class RepairResult:
    """Outcome of ``RepairWhere``."""

    repair: Repair | None
    cost: float
    trace: list = field(default_factory=list)
    elapsed: float = 0.0
    first_viable_elapsed: float | None = None
    sites_considered: int = 0

    @property
    def found(self):
        return self.repair is not None


def repair_where(
    predicate,
    target,
    max_sites=2,
    optimized=False,
    solver=None,
    context=(),
    weight=DEFAULT_SITE_WEIGHT,
):
    """Find a minimum-cost repair making ``predicate`` equivalent to target.

    ``max_sites`` caps the number of repair sites explored (the paper's
    experiments use 2).  ``optimized=True`` selects DeriveFixesOPT
    (``MinFixMult``) for multi-site fixes.
    """
    solver = solver or default_solver()
    start = time.perf_counter()
    result = RepairResult(repair=None, cost=float("inf"))

    candidate_paths = repairable_paths(predicate)
    best_repair = None
    best_cost = float("inf")

    for size in range(1, max_sites + 1):
        if site_count_cost(size, weight) >= best_cost:
            break
        for sites in disjoint_path_sets(candidate_paths, size):
            result.sites_considered += 1
            if sites_cost_lower_bound(sites, predicate, target, weight) >= best_cost:
                continue
            lower, upper = create_bounds(predicate, sites)
            if not bounds_admit(solver, lower, target, upper, context):
                continue
            try:
                fixes = _derive(
                    predicate, sites, target, solver, context, optimized
                )
            except (SolverLimitError, RepairError):
                continue
            repair = Repair.of(fixes)
            cost = repair_cost(repair, predicate, target, weight)
            elapsed = time.perf_counter() - start
            result.trace.append(TraceEntry(elapsed, cost, sites, repair))
            if result.first_viable_elapsed is None:
                result.first_viable_elapsed = elapsed
            if cost < best_cost:
                best_repair, best_cost = repair, cost

    result.repair = best_repair
    result.cost = best_cost
    result.elapsed = time.perf_counter() - start
    return result


def _derive(predicate, sites, target, solver, context, optimized):
    if optimized and len(sites) > 1:
        return min_fix_mult(predicate, sites, target, target, solver, context)
    return derive_fixes(predicate, sites, target, solver, context)


def verify_repair(predicate, target, repair, solver=None, context=()):
    """Check that applying the repair yields a formula equivalent to target."""
    solver = solver or default_solver()
    repaired = repair.apply(predicate)
    return solver.is_equiv(repaired, target, context)
