"""GROUP BY stage: ``FixGrouping`` (Algorithm 4, Section 6).

Grouping equivalence is checked holistically: two GROUP BY lists are
equivalent iff, for any two tuples satisfying WHERE, agreeing on one list
implies agreeing on the other.  ``FixGrouping`` computes a strongly-minimal
set of expressions to remove from the working query's list and a
weakly-minimal set to add from the target's list (Lemma 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.logic.formulas import Comparison, conj
from repro.logic.substitute import instantiate
from repro.solver import default_solver


@dataclass
class GroupingDelta:
    """The GROUP BY-stage diff."""

    remove: list = field(default_factory=list)  # indices into working list
    add: list = field(default_factory=list)  # indices into target list

    @property
    def viable(self):
        return not self.remove and not self.add


def _pair_equal(term, suffix_a="#1", suffix_b="#2"):
    return Comparison("=", instantiate(term, suffix_a), instantiate(term, suffix_b))


def _pair_unequal(term, suffix_a="#1", suffix_b="#2"):
    return Comparison("<>", instantiate(term, suffix_a), instantiate(term, suffix_b))


def fix_grouping(where, working_terms, target_terms, solver=None):
    """``FixGrouping(P, o, o*)``: compute (remove, add) index sets.

    ``where`` is the (unified) WHERE condition; ``working_terms`` and
    ``target_terms`` are the GROUP BY expression lists of Q and Q*.
    """
    solver = solver or default_solver()
    premise = conj(instantiate(where, "#1"), instantiate(where, "#2"))
    target_agreement = conj(*(_pair_equal(t) for t in target_terms))

    delta = GroupingDelta()
    for index, term in enumerate(working_terms):
        query = conj(premise, target_agreement, _pair_unequal(term))
        if solver.is_satisfiable(query):
            delta.remove.append(index)

    kept_agreement = conj(
        *(
            _pair_equal(term)
            for i, term in enumerate(working_terms)
            if i not in delta.remove
        )
    )
    for index, term in enumerate(target_terms):
        query = conj(premise, kept_agreement, _pair_unequal(term))
        if solver.is_satisfiable(query):
            delta.add.append(index)
            kept_agreement = conj(kept_agreement, _pair_equal(term))
    return delta


def grouping_equivalent(where, working_terms, target_terms, solver=None):
    """Viability check V3: do the two lists induce the same partitioning?"""
    delta = fix_grouping(where, working_terms, target_terms, solver)
    if not delta.viable:
        return False
    # fix_grouping establishes o refines o* after removals; with nothing
    # removed/added the two partitions coincide (Lemma 6.2).
    return True


def apply_grouping_fix(working_terms, target_terms, delta):
    """Apply (remove, add): drop flagged expressions, append target's."""
    kept = [t for i, t in enumerate(working_terms) if i not in delta.remove]
    kept.extend(target_terms[i] for i in delta.add)
    return tuple(kept)
