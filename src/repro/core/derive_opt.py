"""``MinFixMult`` / DeriveFixesOPT (Appendix C.2, Algorithms 7 and 8).

The independent target-bound derivation of ``DeriveFixes`` can leave
semantic overlap between sibling fixes.  ``MinFixMult`` instead fixes all
repair sites *holistically*: sibling sites sharing an AND/OR parent are
first merged into a single combined site (as in ``DeriveFixes``); every
combined site is replaced by a fresh Boolean variable; a feasibility map
describes -- per truth assignment of the unaffected atoms -- which site
truth-value combinations keep the predicate consistent with the target;
sites are then fixed greedily (most-constrained first), each minimized
with the accumulated flexibility as don't-cares, and combined-site fixes
are distributed back to their member sites by syntactic similarity.
"""

from __future__ import annotations

from repro.boolmin import DONT_CARE, TruthTable, min_bool_exp
from repro.core.derive_fixes import distribute_fixes
from repro.core.minfix import build_truth_table, map_atom_preds
from repro.errors import RepairError, SolverLimitError
from repro.logic.formulas import And, BoolConst, Comparison, Not, Or
from repro.logic.paths import node_at

MAX_TOTAL_VARS = 18

IRRELEVANT = "*"


class _Site:
    """A holistic repair unit: one path, or sibling paths under one parent."""

    def __init__(self, paths, parent_op=None):
        self.paths = sorted(paths)
        self.parent_op = parent_op  # "and" | "or" | None for single sites

    @property
    def is_group(self):
        return len(self.paths) > 1


def _merge_sibling_sites(predicate, paths):
    """Group sites sharing an AND/OR parent into combined sites."""
    by_parent = {}
    for path in paths:
        parent = path[:-1] if path else None
        by_parent.setdefault(parent, []).append(path)
    sites = []
    for parent, members in sorted(by_parent.items(), key=lambda kv: kv[1][0]):
        if parent is None or len(members) == 1:
            sites.extend(_Site([m]) for m in members)
            continue
        parent_node = node_at(predicate, parent)
        if isinstance(parent_node, And):
            sites.append(_Site(members, "and"))
        elif isinstance(parent_node, Or):
            sites.append(_Site(members, "or"))
        else:
            sites.extend(_Site([m]) for m in members)
    return sites


def min_fix_mult(predicate, paths, lower, upper, solver, context=()):
    """Compute fixes for all site ``paths`` holistically (Algorithm 7).

    Returns {path: fix_formula}.  Precondition: the sites are viable for
    the bound (checked via ``CreateBounds`` by the caller).
    """
    sites = _merge_sibling_sites(predicate, list(paths))
    outside_atoms = _atoms_outside(predicate, [p for s in sites for p in s.paths])
    mapping = map_atom_preds([*outside_atoms, lower, upper], solver, context)
    num_a = mapping.num_vars
    num_s = len(sites)
    if num_a + num_s > MAX_TOTAL_VARS:
        raise SolverLimitError(
            f"MinFixMult over {num_a}+{num_s} variables exceeds the budget"
        )

    target_table = build_truth_table(mapping, lower, upper, solver, context)
    feasibility = _init_feasibility(predicate, sites, mapping, target_table, num_s)

    site_fixes = {}
    remaining = list(range(num_s))
    while remaining:
        index, site_table = _pick_site(feasibility, remaining, num_a)
        fix = min_bool_exp(site_table, mapping.atoms)
        site_fixes[index] = fix
        feasibility = _update_feasibility(feasibility, index, fix, mapping)
        remaining.remove(index)

    fixes = {}
    for index, site in enumerate(sites):
        fix = site_fixes[index]
        if not site.is_group:
            fixes[site.paths[0]] = fix
            continue
        originals = {path: node_at(predicate, path) for path in site.paths}
        distributed = distribute_fixes(
            fix,
            {path: originals[path] for path in site.paths},
            is_and=(site.parent_op == "and"),
        )
        fixes.update(distributed)
    return fixes


def _atoms_outside(predicate, paths):
    """Atomic formulas of ``predicate`` not under any repair site."""
    out = []

    def walk(node, path):
        if path in paths:
            return
        if isinstance(node, Comparison):
            out.append(node)
            return
        for i, child in enumerate(node.children()):
            walk(child, path + (i,))

    walk(predicate, ())
    return out


def _eval_with_sites(node, path, sites, mapping, a_assign, s_assign):
    """Evaluate the predicate with (possibly merged) sites as variables."""
    for index, site in enumerate(sites):
        if path in site.paths and not site.is_group:
            return bool(s_assign & (1 << index))
    if isinstance(node, BoolConst):
        return node.value
    if isinstance(node, Comparison):
        return mapping.evaluate(node, a_assign)
    if isinstance(node, Not):
        return not _eval_with_sites(
            node.child, path + (0,), sites, mapping, a_assign, s_assign
        )
    if isinstance(node, (And, Or)):
        is_and = isinstance(node, And)
        values = []
        group_done = set()
        for i, child in enumerate(node.children()):
            child_path = path + (i,)
            member_of = None
            for index, site in enumerate(sites):
                if site.is_group and child_path in site.paths:
                    member_of = index
                    break
            if member_of is not None:
                if member_of not in group_done:
                    group_done.add(member_of)
                    values.append(bool(s_assign & (1 << member_of)))
                continue
            values.append(
                _eval_with_sites(child, child_path, sites, mapping, a_assign, s_assign)
            )
        return all(values) if is_and else any(values)
    raise TypeError(f"unexpected node {node!r}")


def _init_feasibility(predicate, sites, mapping, target_table, num_s):
    """Algorithm 8, ``InitFeasibility``."""
    feasibility = {}
    for a_assign in range(2**mapping.num_vars):
        target = target_table.output(a_assign)
        if target == DONT_CARE:
            feasibility[a_assign] = IRRELEVANT
            continue
        options = set()
        for s_assign in range(2**num_s):
            value = _eval_with_sites(
                predicate, (), sites, mapping, a_assign, s_assign
            )
            if int(value) == target:
                options.add(s_assign)
        if not options:
            raise RepairError(
                "no feasible site assignment for a required truth row; "
                "the candidate repair sites are not viable"
            )
        feasibility[a_assign] = options
    return feasibility


def _pick_site(feasibility, remaining, num_a):
    """Algorithm 8, ``PickSite``: most-constrained site first."""
    scores = {i: 0.0 for i in remaining}
    for a_assign in range(2**num_a):
        options = feasibility[a_assign]
        if options == IRRELEVANT:
            continue
        total = len(options)
        for i in remaining:
            ones = sum(1 for u in options if u & (1 << i))
            scores[i] += abs(ones / total - 0.5)
    chosen = max(remaining, key=lambda i: scores[i])

    table = TruthTable(num_a)
    for a_assign in range(2**num_a):
        options = feasibility[a_assign]
        if options == IRRELEVANT:
            table.set(a_assign, DONT_CARE)
            continue
        values = {1 if u & (1 << chosen) else 0 for u in options}
        if len(values) == 1:
            table.set(a_assign, values.pop())
        else:
            table.set(a_assign, DONT_CARE)
    return chosen, table


def _update_feasibility(feasibility, index, fix_formula, mapping):
    """Algorithm 8, ``UpdateFeasibility``: wire site ``index`` to its fix."""
    updated = {}
    for a_assign, options in feasibility.items():
        if options == IRRELEVANT:
            updated[a_assign] = IRRELEVANT
            continue
        value = mapping.evaluate(fix_formula, a_assign)
        narrowed = {u for u in options if bool(u & (1 << index)) == value}
        if not narrowed:
            raise RepairError("feasibility collapsed while wiring a site fix")
        updated[a_assign] = narrowed
    return updated
