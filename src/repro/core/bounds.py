"""``CreateBounds`` (Algorithm 2): repair bounds for a set of sites.

Given a predicate ``P`` and disjoint repair sites ``S``, compute formulas
``P_lo => P' => P_hi`` bounding every predicate ``P'`` obtainable by fixing
exactly the sites in ``S`` (Lemma 5.3).  Together with the solver this gives
an exact viability test for candidate site sets: sites are viable iff the
target lies within the bounds (Lemmas 5.3 + 5.4).
"""

from __future__ import annotations

from repro.logic.formulas import And, FALSE, Not, Or, TRUE, conj, disj, neg
from repro.logic.paths import paths_under


def create_bounds(formula, sites):
    """Return ``(lower, upper)`` per Algorithm 2.

    ``sites`` is an iterable of paths (relative to ``formula``).
    """
    sites = list(sites)
    if () in sites:
        return (FALSE, TRUE)
    if formula.is_atomic() or not formula.children():
        return (formula, formula)
    if isinstance(formula, Not):
        child_lower, child_upper = create_bounds(
            formula.child, paths_under(sites, (0,))
        )
        return (neg(child_upper), neg(child_lower))
    if isinstance(formula, (And, Or)):
        lowers, uppers = [], []
        for i, child in enumerate(formula.children()):
            child_lower, child_upper = create_bounds(child, paths_under(sites, (i,)))
            lowers.append(child_lower)
            uppers.append(child_upper)
        combine = conj if isinstance(formula, And) else disj
        return (combine(*lowers), combine(*uppers))
    raise TypeError(f"unexpected formula node {formula!r}")


def bounds_admit(solver, lower, target, upper, context=()):
    """True iff ``target`` lies within ``[lower, upper]`` (site viability)."""
    return solver.in_bound(lower, target, upper, context)
