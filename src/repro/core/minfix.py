"""``MinFix`` and helpers (Algorithms 5 and 6).

Given a target bound ``[l*, u*]`` for a repair site, find a smallest formula
inside the bound:

1. ``MapAtomPreds`` collects the semantically unique atomic predicates of
   the bound formulas (merging atoms that are equivalent, or equivalent up
   to negation, under the ambient context) and maps them to Boolean
   variables;
2. ``BuildTruthTable`` enumerates truth assignments, marking theory-
   infeasible rows and bound-gap rows as don't-cares;
3. ``MinBoolExp`` (Quine-McCluskey/Petrick) minimizes the resulting partial
   function, and the chosen implicants are rendered back over the atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.boolmin import DONT_CARE, TruthTable, min_bool_exp, minimize_table
from repro.boolmin.minimize import implicants_to_formula
from repro.errors import SolverLimitError
from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
    conj,
    neg,
)

MAX_UNIQUE_ATOMS = 14


@dataclass
class AtomMapping:
    """Result of ``MapAtomPreds``: unique atoms + formula->Boolean mapping."""

    atoms: list  # representative Comparison per Boolean variable
    polarity: dict  # original atom -> (var_index, positive)

    @property
    def num_vars(self):
        return len(self.atoms)

    def literal_formula(self, index, positive):
        atom = self.atoms[index]
        return atom if positive else neg(atom)

    def assignment_formula(self, assignment):
        """Conjunction of literals for a truth assignment (int bitmask)."""
        literals = []
        for i, atom in enumerate(self.atoms):
            literals.append(atom if assignment & (1 << i) else neg(atom))
        return conj(*literals)

    def evaluate(self, formula, assignment):
        """Evaluate ``formula`` propositionally under the assignment."""
        if isinstance(formula, BoolConst):
            return formula.value
        if isinstance(formula, Comparison):
            entry = self.polarity.get(formula)
            if entry is None:
                # Minimized formulas render negative literals as negated
                # atoms; map them back through the complement.
                complement = self.polarity.get(formula.negated())
                if complement is None:
                    raise KeyError(f"atom not in mapping: {formula}")
                index, positive = complement[0], not complement[1]
            else:
                index, positive = entry
            bit = bool(assignment & (1 << index))
            return bit if positive else not bit
        if isinstance(formula, Not):
            return not self.evaluate(formula.child, assignment)
        if isinstance(formula, And):
            return all(self.evaluate(c, assignment) for c in formula.operands)
        if isinstance(formula, Or):
            return any(self.evaluate(c, assignment) for c in formula.operands)
        raise TypeError(f"unexpected formula {formula!r}")


def map_atom_preds(formulas, solver, context=()):
    """``MapAtomPreds`` (Algorithm 5) over a collection of formulas.

    Before paying for SMT equivalence checks, each atom is canonicalized
    (:mod:`repro.solver.atoms`); syntactically distinct atoms with the same
    canonical form merge into one variable without a solver call.  Only
    canonical-form misses fall back to the pairwise ``is_equiv`` scan,
    which can still discover context-dependent equivalences.
    """
    from repro.solver.atoms import CanonicalLiteral, canonicalize

    atoms = []
    polarity = {}
    # canonical Atom -> (var_index, polarity of the canonical literal that
    # is equivalent to atoms[var_index])
    canon_index = {}
    for formula in formulas:
        for atom in formula.atoms():
            if atom in polarity:
                continue
            literal = canonicalize(atom)
            if not isinstance(literal, CanonicalLiteral):
                literal = None
            mapped = None
            if literal is not None:
                hit = canon_index.get(literal.atom)
                if hit is not None:
                    index, rep_positive = hit
                    mapped = (index, literal.positive == rep_positive)
            if mapped is None:
                for i, representative in enumerate(atoms):
                    if solver.is_equiv(atom, representative, context):
                        mapped = (i, True)
                        break
                    if solver.is_equiv(atom, neg(representative), context):
                        mapped = (i, False)
                        break
            if mapped is None:
                atoms.append(atom)
                mapped = (len(atoms) - 1, True)
            if literal is not None:
                index, positive = mapped
                canon_index.setdefault(
                    literal.atom,
                    (index, literal.positive if positive else not literal.positive),
                )
            polarity[atom] = mapped
    return AtomMapping(atoms, polarity)


def build_truth_table(mapping, lower, upper, solver, context=()):
    """``BuildTruthTable`` (Algorithm 6 subroutine).

    Output per assignment: don't-care if the literal conjunction is theory-
    infeasible or if the bound leaves slack (l=0, u=1); otherwise the shared
    truth value of ``lower`` and ``upper``.

    Enumeration is a DFS over atom polarities with partial-assignment
    feasibility pruning: once a literal prefix is theory-inconsistent,
    every completion is a don't-care and the subtree is skipped.  When the
    context consists of atomic conjuncts only, feasibility goes straight to
    the theory layer (no SAT search); otherwise the SMT facade is used.

    Pruning is core-guided: every infeasible answer comes with an unsat
    core (failed SAT assumptions from the incremental
    ``FeasibilitySession``, or a shrunk theory core on the theory-direct
    path), recorded as a ``(mask, bits)`` pair over atom indices.  A DFS
    node whose assigned prefix already matches a known core is refuted
    without any solver work at all -- the subtree is don't-cared outright
    (counter: ``core_pruned_subtrees``) even though this particular prefix
    was never queried.
    """
    table = TruthTable(mapping.num_vars)
    checker = _FeasibilityChecker(mapping, solver, context)
    cores = checker.cores
    stats = getattr(solver, "stats", None)
    # The theory-direct fast path never enters the solver's DPLL(T) loop
    # (and so never hits its deadline checkpoint); poll the attached
    # deadline here every 64 DFS nodes instead.
    deadline = getattr(solver, "deadline", None)
    poll_stride = 64
    polls = 0

    def record(assignment):
        low = mapping.evaluate(lower, assignment)
        high = mapping.evaluate(upper, assignment)
        if low == high:
            table.set(assignment, 1 if low else 0)
        else:
            table.set(assignment, DONT_CARE)

    def dfs(index, assignment):
        nonlocal polls
        if deadline is not None:
            polls += 1
            if polls >= poll_stride:
                polls = 0
                deadline.check("minfix")
        bound = 1 << index
        for cmask, cbits in cores:
            # A core confined to the assigned bits (< bound) that the
            # prefix matches refutes the whole subtree -- no query needed.
            if cmask < bound and assignment & cmask == cbits:
                table.fill_stride(assignment, bound, DONT_CARE)
                if stats is not None:
                    stats["core_pruned_subtrees"] = (
                        stats.get("core_pruned_subtrees", 0) + 1
                    )
                return
        if not checker.feasible_prefix(assignment, index):
            # Every completion of the infeasible prefix shares the low bits:
            # the subtree is exactly range(assignment, 2**n, 2**index).
            table.fill_stride(assignment, bound, DONT_CARE)
            return
        if index == mapping.num_vars:
            record(assignment)
            return
        dfs(index + 1, assignment)
        dfs(index + 1, assignment | (1 << index))

    dfs(0, 0)
    return table


class _FeasibilityChecker:
    """Feasibility of literal prefixes, with a theory-direct fast path.

    When every atom and context conjunct canonicalizes, prefix queries go
    straight to the theory layer (no SAT search at all).  Otherwise a
    single incremental :class:`~repro.solver.smt.FeasibilitySession` is
    shared by the whole truth-table DFS: the context is encoded once, the
    SAT trail persists between prefixes (consecutive DFS nodes share long
    assumption prefixes), and theory lemmas learned under one prefix prune
    every later one -- instead of a fresh feasibility solve per node.
    """

    def __init__(self, mapping, solver, context):
        self.mapping = mapping
        self.solver = solver
        self.context = tuple(context)
        self._literals = self._try_canonicalize()
        self._context_prefix = None
        self._atom_pairs = None
        self._session = None
        #: Discovered infeasibility cores as ``(mask, bits)`` pairs over
        #: atom indices: any assignment with ``assignment & mask == bits``
        #: is theory-infeasible.  The truth-table DFS scans this list to
        #: refute whole subtrees without a query.
        self.cores = []
        self._core_keys = set()
        if self._literals is not None:
            atom_literals, context_literals = self._literals
            # Canonical-order the context once; per-prefix queries then just
            # append atom literals in index order (the theory cache keys on
            # a frozenset, so any fixed order is canonical).
            self._context_prefix = tuple(sorted(context_literals, key=str))
            self._atom_pairs = [
                ((lit.atom, lit.positive), (lit.atom, not lit.positive))
                for lit in atom_literals
            ]
            self._context_set = frozenset(self._context_prefix)
            # (atom, polarity) theory literal -> (atom index, wanted bit);
            # first writer wins on aliased atoms (either explanation is
            # sound).
            self._lit_to_bit = {}
            for i, (when_set, when_clear) in enumerate(self._atom_pairs):
                self._lit_to_bit.setdefault(when_set, (i, True))
                self._lit_to_bit.setdefault(when_clear, (i, False))

    def _try_canonicalize(self):
        from repro.logic.formulas import And as _And, BoolConst as _BoolConst
        from repro.solver.atoms import CanonicalLiteral, canonicalize

        atom_literals = []
        for atom in self.mapping.atoms:
            lit = canonicalize(atom)
            if not isinstance(lit, CanonicalLiteral):
                return None
            atom_literals.append(lit)
        context_literals = []
        pending = list(self.context)
        while pending:
            formula = pending.pop()
            if isinstance(formula, _BoolConst):
                if not formula.value:
                    return None  # context unsatisfiable; slow path decides
                continue
            if isinstance(formula, _And):
                pending.extend(formula.operands)
                continue
            if formula.is_atomic():
                lit = canonicalize(formula)
                if isinstance(lit, bool):
                    if not lit:
                        return None  # context unsatisfiable; slow path decides
                    continue
                context_literals.append((lit.atom, lit.positive))
                continue
            return None  # non-literal context: use the SMT facade
        return atom_literals, tuple(context_literals or ())

    def feasible_prefix(self, assignment, length):
        if self._literals is None:
            return self._feasible_slow(assignment, length)
        pairs = self._atom_pairs
        literals = list(self._context_prefix)
        for i in range(length):
            when_set, when_clear = pairs[i]
            literals.append(when_set if assignment & (1 << i) else when_clear)
        if not literals:
            return True
        if self.solver._theory_ok(tuple(literals)):
            return True
        # Shrink the inconsistent set (memoized in the owning solver) and
        # record it as a (mask, bits) core over atom indices.  Context
        # literals hold for every prefix, so they contribute no bits.
        mask = bits = 0
        for literal in self.solver._shrink_core(tuple(literals)):
            if literal in self._context_set:
                continue
            hit = self._lit_to_bit.get(literal)
            if hit is None:
                return False  # unmapped literal: skip recording
            index, want = hit
            mask |= 1 << index
            if want:
                bits |= 1 << index
        self._add_core(mask, bits)
        return False

    def _feasible_slow(self, assignment, length):
        if self._session is None:
            self._session = self.solver.feasibility_session(
                self.mapping.atoms, self.context
            )
        if self._session.feasible_prefix(assignment, length):
            return True
        pairs = self._session.last_core
        if pairs is not None:
            mask = bits = 0
            for index, want in pairs:
                mask |= 1 << index
                if want:
                    bits |= 1 << index
            self._add_core(mask, bits)
        return False

    def _add_core(self, mask, bits):
        key = (mask, bits)
        if key not in self._core_keys:
            self._core_keys.add(key)
            self.cores.append(key)


def min_fix(lower, upper, solver, context=()):
    """``MinFix`` (Algorithm 6): a smallest formula within ``[l*, u*]``."""
    # Degenerate bounds first: they admit a constant.
    if solver.is_valid(lower, context):
        return TRUE
    if solver.is_unsatisfiable(upper, context):
        return FALSE
    mapping = map_atom_preds([lower, upper], solver, context)
    if mapping.num_vars > MAX_UNIQUE_ATOMS:
        raise SolverLimitError(
            f"MinFix over {mapping.num_vars} unique atoms exceeds the "
            f"{MAX_UNIQUE_ATOMS}-atom truth-table budget"
        )
    table = build_truth_table(mapping, lower, upper, solver, context)
    return min_bool_exp(table, mapping.atoms)


def min_fix_pos(lower, upper, solver, context=()):
    """``MinFix`` variant returning a product-of-sums (CNF-style) formula.

    Used by ``DistributeFixes`` when the repaired children share an AND
    parent (Section 5.2): minimize the complement as SOP and negate.
    """
    if solver.is_valid(lower, context):
        return TRUE
    if solver.is_unsatisfiable(upper, context):
        return FALSE
    mapping = map_atom_preds([lower, upper], solver, context)
    if mapping.num_vars > MAX_UNIQUE_ATOMS:
        raise SolverLimitError("MinFix (POS) atom budget exceeded")
    table = build_truth_table(mapping, lower, upper, solver, context)
    flipped = TruthTable(table.num_vars)
    for assignment in range(2**table.num_vars):
        value = table.output(assignment)
        if value == DONT_CARE:
            flipped.set(assignment, DONT_CARE)
        else:
            flipped.set(assignment, 1 - value)
    implicants = minimize_table(flipped)
    if not implicants:
        return TRUE
    sop_of_negation = implicants_to_formula(implicants, mapping.atoms)
    return _negate_sop(sop_of_negation)


def _negate_sop(formula):
    """De Morgan a sum-of-products into a product-of-sums."""
    from repro.logic.formulas import disj

    if formula in (TRUE, FALSE):
        return neg(formula)
    clauses = formula.operands if isinstance(formula, Or) else (formula,)
    out = []
    for clause in clauses:
        literals = clause.operands if isinstance(clause, And) else (clause,)
        out.append(disj(*(neg(lit) for lit in literals)))
    return conj(*out)
