"""FROM stage (Section 4): table multiset viability and fixes.

Viability ``V1``: ``Tables(Q)`` equals ``Tables(Q*)`` as multisets.  By
Lemma 4.2 this is *necessary* for equivalence of SPJ queries under bag
semantics (absent constraints and modulo the always-empty corner case), so
FROM-stage hints are optimal for SPJ queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.logic.formulas import TRUE, conj
from repro.logic.terms import Const
from repro.query import FromEntry


@dataclass
class FromDelta:
    """The FROM-stage diff: per-table count discrepancies."""

    missing: dict = field(default_factory=dict)  # table -> how many more needed
    extra: dict = field(default_factory=dict)  # table -> how many to remove

    @property
    def viable(self):
        return not self.missing and not self.extra


def check_from(target, working):
    """Viability check V1 plus the per-table discrepancy report."""
    target_counts = target.tables_multiset()
    working_counts = working.tables_multiset()
    delta = FromDelta()
    for table in set(target_counts) | set(working_counts):
        need = target_counts.get(table, 0)
        have = working_counts.get(table, 0)
        if need > have:
            delta.missing[table] = need - have
        elif have > need:
            delta.extra[table] = have - need
    return delta


def apply_from_fix(working, target, delta):
    """Produce a fixed working query whose FROM matches the target's.

    Missing tables are added under fresh aliases.  Extra aliases are
    removed, least-referenced first; atoms referencing a removed alias are
    replaced by TRUE and SELECT/GROUP BY terms referencing it are replaced
    or dropped (later stages repair the semantics, per footnote 4 of the
    paper -- only syntactic well-formedness must be preserved here).
    """
    entries = list(working.from_entries)
    used = {e.alias for e in entries}

    canonical_names = {e.table.lower(): e.table for e in target.from_entries}
    for table, count in delta.missing.items():
        for _ in range(count):
            alias = _fresh_alias(table, used)
            used.add(alias)
            entries.append(FromEntry(canonical_names.get(table, table), alias))

    query = replace(working, from_entries=tuple(entries))
    for table, count in delta.extra.items():
        for _ in range(count):
            query = _remove_one_alias(query, table)
    return query


def _fresh_alias(table, used):
    base = table.lower()
    if base not in used:
        return base
    index = 2
    while f"{base}_{index}" in used:
        index += 1
    return f"{base}_{index}"


def _reference_count(query, alias):
    prefix = alias + "."
    count = 0
    for obj in [query.where, query.having, *query.group_by, *query.select]:
        count += sum(1 for v in obj.variables() if v.name.startswith(prefix))
    return count


def _remove_one_alias(query, table):
    candidates = query.aliases_of(table)
    alias = min(candidates, key=lambda a: _reference_count(query, a))
    prefix = alias + "."

    def scrub_formula(formula):
        from repro.logic.formulas import And, BoolConst, Comparison, Not, Or, disj, neg

        if isinstance(formula, BoolConst):
            return formula
        if isinstance(formula, Comparison):
            refs = any(
                v.name.startswith(prefix)
                for v in formula.left.variables() | formula.right.variables()
            )
            return TRUE if refs else formula
        if isinstance(formula, Not):
            return neg(scrub_formula(formula.child))
        if isinstance(formula, And):
            return conj(*(scrub_formula(c) for c in formula.operands))
        if isinstance(formula, Or):
            return disj(*(scrub_formula(c) for c in formula.operands))
        raise TypeError(f"unexpected formula {formula!r}")

    def term_refs(term):
        return any(v.name.startswith(prefix) for v in term.variables())

    new_select = tuple(
        Const.of(0) if term_refs(t) else t for t in query.select
    )
    return replace(
        query,
        from_entries=tuple(e for e in query.from_entries if e.alias != alias),
        where=scrub_formula(query.where),
        group_by=tuple(t for t in query.group_by if not term_refs(t)),
        having=scrub_formula(query.having),
        select=new_select,
    )
