"""Table mapping between target and working query (Section 4, Appendix B).

When queries self-join a table, the roles of its aliases must be matched
across the two queries before WHERE/GROUP BY/... can be compared.  Each
alias gets a *signature* describing how its columns are used (per-operator
interaction sets from WHERE/HAVING, GROUP BY membership, SELECT positions),
expanded through equality equivalence classes; aliases of the same table
are then matched by maximum-similarity bipartite assignment.
"""

from __future__ import annotations

import itertools

from repro.logic.formulas import Comparison, FLIPPED_OP
from repro.logic.terms import Const, Var
from repro.solver.strings import UnionFind

SIGNATURE_OPS = ("=", "<", ">", "<=", ">=", "LIKE")


def _equality_classes(query):
    """Union-find over vars/constants joined by equality atoms."""
    uf = UnionFind()
    for formula in (query.where, query.having):
        for atom in formula.atoms():
            if atom.op == "=" and isinstance(atom.left, (Var, Const)) and isinstance(
                atom.right, (Var, Const)
            ):
                uf.union(atom.left, atom.right)
    classes = {}
    for item in list(uf._parent):
        classes.setdefault(uf.find(item), set()).add(item)
    membership = {}
    for members in classes.values():
        for item in members:
            membership[item] = members
    return membership


def _class_of(membership, item):
    return membership.get(item, {item})


def _display(item, alias_tables):
    """Replace alias-qualified vars by their table names (heuristic)."""
    if isinstance(item, Var):
        alias, _, column = item.name.partition(".")
        table = alias_tables.get(alias)
        return f"{table}.{column}" if table else item.name
    return str(item)


class AliasSignature:
    """Signature of one alias (Appendix B.1)."""

    def __init__(self, where_having, group_by, select):
        self.where_having = where_having  # {(attr, op): frozenset(names)}
        self.group_by = group_by  # frozenset of attr names
        self.select = select  # {attr: frozenset(position ints)}

    def similarity(self, other, attributes):
        """Normalized similarity (sum of three Jaccard components)."""
        total_wh = 0.0
        for attr in attributes:
            for op in SIGNATURE_OPS:
                total_wh += _jaccard(
                    self.where_having.get((attr, op), frozenset()),
                    other.where_having.get((attr, op), frozenset()),
                )
        wh = total_wh / (len(attributes) * len(SIGNATURE_OPS))
        gb = _jaccard(self.group_by, other.group_by)
        sel = sum(
            _jaccard(
                self.select.get(attr, frozenset()),
                other.select.get(attr, frozenset()),
            )
            for attr in attributes
        ) / len(attributes)
        return wh + gb + sel


def _jaccard(a, b):
    if not a and not b:
        return 1.0
    union = a | b
    return len(a & b) / len(union)


def build_signature(query, alias, catalog):
    """Build the :class:`AliasSignature` of ``alias`` in ``query``."""
    table = catalog.table(query.table_of(alias))
    attributes = [c.name.lower() for c in table.columns]
    membership = _equality_classes(query)
    alias_tables = {e.alias: e.table for e in query.from_entries}

    where_having = {}
    for formula in (query.where, query.having):
        for atom in formula.atoms():
            _record_atom(atom, alias, membership, alias_tables, where_having)

    group_by = set()
    for term in query.group_by:
        for var in term.variables():
            for member in _class_of(membership, var):
                if isinstance(member, Var) and member.name.startswith(alias + "."):
                    group_by.add(member.name.split(".", 1)[1])

    select = {}
    for position, term in enumerate(query.select, start=1):
        for var in term.variables():
            for member in _class_of(membership, var):
                if isinstance(member, Var) and member.name.startswith(alias + "."):
                    attr = member.name.split(".", 1)[1]
                    select.setdefault(attr, set()).add(position)

    return AliasSignature(
        {k: frozenset(v) for k, v in where_having.items()},
        frozenset(group_by),
        {k: frozenset(v) for k, v in select.items()},
    ), attributes


def _record_atom(atom, alias, membership, alias_tables, out):
    op = atom.op
    if op in ("<>", "NOT LIKE"):
        return
    if op not in SIGNATURE_OPS:
        return
    sides = [(atom.left, op), (atom.right, FLIPPED_OP.get(op, op))]
    for (side, side_op), (other, _) in (
        (sides[0], sides[1]),
        (sides[1], sides[0]),
    ):
        if not isinstance(side, Var) or not side.name.startswith(alias + "."):
            continue
        attr = side.name.split(".", 1)[1]
        names = out.setdefault((attr, side_op), set())
        if op == "=":
            # Whole equivalence class of the column, minus itself.
            for member in _class_of(membership, side):
                if member != side:
                    names.add(_display(member, alias_tables))
        else:
            for member in _class_of(membership, other):
                names.add(_display(member, alias_tables))


def find_table_mapping(target, working, catalog):
    """Choose a table mapping m: Aliases(Q*) -> Aliases(Q) (Definition 1).

    Requires ``Tables(Q*) == Tables(Q)`` as multisets.  Aliases of tables
    referenced once map directly; self-joined tables are matched by
    maximum-total-similarity assignment over signature similarity.
    """
    if target.tables_multiset() != working_tables_guard(working):
        raise ValueError("table multisets differ; run the FROM stage first")

    mapping = {}
    for table in sorted({e.table for e in target.from_entries}):
        target_aliases = target.aliases_of(table)
        working_aliases = working.aliases_of(table)
        if len(target_aliases) == 1:
            mapping[target_aliases[0]] = working_aliases[0]
            continue
        sims = {}
        attributes = None
        target_sigs = {}
        working_sigs = {}
        for alias in target_aliases:
            target_sigs[alias], attributes = build_signature(target, alias, catalog)
        for alias in working_aliases:
            working_sigs[alias], _ = build_signature(working, alias, catalog)
        for t_alias, w_alias in itertools.product(target_aliases, working_aliases):
            sims[(t_alias, w_alias)] = target_sigs[t_alias].similarity(
                working_sigs[w_alias], attributes
            )
        best_perm, best_total = None, -1.0
        for perm in itertools.permutations(working_aliases):
            total = sum(
                sims[(t, w)] for t, w in zip(target_aliases, perm)
            )
            if total > best_total:
                best_perm, best_total = perm, total
        for t_alias, w_alias in zip(target_aliases, best_perm):
            mapping[t_alias] = w_alias
    return mapping


def working_tables_guard(working):
    return working.tables_multiset()


def unify_target(target, working, catalog):
    """Rename the target's aliases onto the working query's aliases.

    Returns (unified_target, mapping).  After this, both queries use the
    same alias namespace and their formulas are directly comparable.
    """
    mapping = find_table_mapping(target, working, catalog)
    # Collision-free simultaneous rename via a temporary namespace.
    temp = {alias: f"τ{i}${alias}" for i, alias in enumerate(mapping)}
    final = {temp[alias]: mapping[alias] for alias in mapping}
    return target.rename_aliases(temp).rename_aliases(final), mapping
