"""Qr-Hint core: staged hint generation and predicate repair."""

from repro.core.bounds import create_bounds
from repro.core.cost import Repair, repair_cost
from repro.core.derive_fixes import derive_fixes, distribute_fixes
from repro.core.derive_opt import min_fix_mult
from repro.core.from_stage import apply_from_fix, check_from
from repro.core.groupby_stage import apply_grouping_fix, fix_grouping
from repro.core.having_stage import analyze_having, repair_having, split_having
from repro.core.hints import Hint
from repro.core.minfix import min_fix
from repro.core.pipeline import QrHint, Report, StageResult
from repro.core.select_stage import apply_select_fix, fix_select
from repro.core.table_mapping import find_table_mapping, unify_target
from repro.core.where_repair import RepairResult, repair_where, verify_repair

__all__ = [
    "Hint",
    "QrHint",
    "Repair",
    "RepairResult",
    "Report",
    "StageResult",
    "analyze_having",
    "apply_from_fix",
    "apply_grouping_fix",
    "apply_select_fix",
    "check_from",
    "create_bounds",
    "derive_fixes",
    "distribute_fixes",
    "find_table_mapping",
    "fix_grouping",
    "fix_select",
    "min_fix",
    "min_fix_mult",
    "repair_cost",
    "repair_having",
    "repair_where",
    "split_having",
    "unify_target",
    "verify_repair",
]
