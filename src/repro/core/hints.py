"""Hint objects and natural-language templating.

Qr-Hint proper produces *repairs* (sites + fixes); the teaching staff turn
them into natural-language hints (paper, Example 2).  This module carries
both: the structured repair payload and a templated message in the style
"In [SQL clause], [hint]" used by the paper's user study.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Hint:
    """One actionable hint for the user."""

    stage: str  # FROM | WHERE | GROUP BY | HAVING | SELECT
    kind: str  # e.g. "missing-table", "repair-site", "remove-expr"
    message: str  # natural-language rendering
    site: str | None = None  # textual form of the repair site, if any
    fix: str | None = None  # textual form of the fix (normally hidden)

    def public_message(self):
        """The hint as shown to students (fixes withheld, as in the study)."""
        return self.message

    def __str__(self):
        return f"[{self.stage}] {self.message}"


def from_stage_hints(delta):
    hints = []
    for table, count in sorted(delta.missing.items()):
        times = "once more" if count == 1 else f"{count} more times"
        hints.append(
            Hint(
                "FROM",
                "missing-table",
                f"In FROM, it looks like you are missing a table -- consider "
                f"using {table} {times}; read the problem carefully and see "
                f"what other piece of information you need.",
                site=table,
            )
        )
    for table, count in sorted(delta.extra.items()):
        times = "one of its occurrences" if count == 1 else f"{count} of its occurrences"
        hints.append(
            Hint(
                "FROM",
                "extra-table",
                f"In FROM, {table} appears more often than needed -- "
                f"consider removing {times}.",
                site=table,
            )
        )
    return hints


def predicate_repair_hints(stage, repair, predicate):
    from repro.logic.paths import node_at

    hints = []
    for path, fix in repair.fixes:
        site = node_at(predicate, path)
        hints.append(
            Hint(
                stage,
                "repair-site",
                f"In {stage}, there is a problem with `{site}`. Think through "
                f"some concrete examples and see how you may fix it.",
                site=str(site),
                fix=str(fix),
            )
        )
    return hints


def grouping_hints(delta, working_terms):
    hints = []
    for index in delta.remove:
        term = working_terms[index]
        hints.append(
            Hint(
                "GROUP BY",
                "remove-expr",
                f"In GROUP BY, `{term}` is incorrect -- it splits rows that "
                f"should stay in the same group.",
                site=str(term),
            )
        )
    if delta.add:
        hints.append(
            Hint(
                "GROUP BY",
                "missing-expr",
                "In GROUP BY, your query is missing some grouping "
                "expression(s) -- the current grouping is too coarse.",
            )
        )
    return hints


def select_hints(delta, working_terms, target_len):
    hints = []
    both = sorted(set(delta.remove) & set(delta.add))
    for index in both:
        term = working_terms[index]
        hints.append(
            Hint(
                "SELECT",
                "wrong-expr",
                f"In SELECT, the expression at position {index + 1} "
                f"(`{term}`) does not produce the right values.",
                site=str(term),
            )
        )
    extra = sorted(set(delta.remove) - set(delta.add))
    for index in extra:
        hints.append(
            Hint(
                "SELECT",
                "extra-expr",
                f"In SELECT, the expression at position {index + 1} "
                f"(`{working_terms[index]}`) is not needed.",
                site=str(working_terms[index]),
            )
        )
    missing = sorted(set(delta.add) - set(delta.remove))
    if missing:
        hints.append(
            Hint(
                "SELECT",
                "missing-expr",
                f"In SELECT, your query outputs {target_len - len(missing)} "
                f"column(s) but {target_len} are expected -- something is "
                f"missing.",
            )
        )
    return hints


def distinct_hint(working_distinct):
    if working_distinct:
        message = (
            "In SELECT, DISTINCT removes duplicates that should be kept -- "
            "consider dropping it."
        )
    else:
        message = (
            "In SELECT, your query may return duplicate rows -- consider "
            "whether DISTINCT is needed."
        )
    return Hint("SELECT", "distinct", message)
