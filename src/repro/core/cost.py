"""Repair representation and cost model (Definitions 2 and 3).

A repair of a predicate ``P`` is a set of disjoint *repair sites* (subtrees,
addressed by paths) together with a *fix* formula per site.  Its cost is

    Cost(S, F) = w * |S| + sum_s (|s| + |F(s)|) / (|P| + |P*|)

with ``w`` defaulting to 1/6 as in the paper's experiments (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.logic.paths import node_at, replace_at

DEFAULT_SITE_WEIGHT = Fraction(1, 6)


@dataclass(frozen=True)
class Repair:
    """A repair: mapping from site paths to fix formulas."""

    fixes: tuple  # tuple of (path, Formula) pairs, sorted by path

    @staticmethod
    def of(fix_map):
        return Repair(tuple(sorted(fix_map.items())))

    @property
    def sites(self):
        return [path for path, _ in self.fixes]

    def fix_map(self):
        return dict(self.fixes)

    def apply(self, predicate):
        """Apply the repair to ``predicate`` (Definition 2)."""
        return replace_at(predicate, self.fix_map())

    def __len__(self):
        return len(self.fixes)

    def describe(self, predicate):
        lines = []
        for path, fix in self.fixes:
            original = node_at(predicate, path)
            lines.append(f"{original}  ->  {fix}")
        return "\n".join(lines)


def repair_cost(repair, predicate, target, weight=DEFAULT_SITE_WEIGHT):
    """``Cost(S, F)`` per Definition 3."""
    denominator = predicate.size() + target.size()
    dist = sum(
        node_at(predicate, path).size() + fix.size() for path, fix in repair.fixes
    )
    return float(weight * len(repair.fixes) + Fraction(dist, denominator))


def sites_cost_lower_bound(site_paths, predicate, target, weight=DEFAULT_SITE_WEIGHT):
    """A lower bound on the cost of any repair with the given sites.

    Used by ``RepairWhere`` for early stopping (Algorithm 1, line 4): every
    site contributes its own size plus at least one node of fix.
    """
    denominator = predicate.size() + target.size()
    dist = sum(node_at(predicate, path).size() + 1 for path in site_paths)
    return float(weight * len(site_paths) + Fraction(dist, denominator))


def site_count_cost(num_sites, weight=DEFAULT_SITE_WEIGHT):
    """Cost attributable to the number of sites alone."""
    return float(weight * num_sites)
