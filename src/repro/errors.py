"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParseError(ReproError):
    """Raised when SQL text cannot be tokenized or parsed."""

    def __init__(self, message, position=None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ResolutionError(ReproError):
    """Raised when names in a query cannot be resolved against a catalog."""


class UnsupportedSQLError(ReproError):
    """Raised for SQL features outside the supported SPJ/SPJA fragment."""


class TypeError_(ReproError):
    """Raised on SQL type mismatches (e.g. comparing INT with STRING)."""


class SolverError(ReproError):
    """Raised when the SMT layer is given input it cannot handle."""


class SolverLimitError(SolverError):
    """Raised when a solver resource limit (atoms, steps) is exceeded."""


class RepairError(ReproError):
    """Raised when a repair cannot be constructed for a stage."""
