"""repro: a from-scratch reproduction of Qr-Hint (SIGMOD 2024).

Qr-Hint takes a correct *target* SQL query and a wrong *working* query and
produces staged, actionable repairs (FROM -> WHERE -> GROUP BY -> HAVING ->
SELECT) that provably lead the user to a query equivalent to the target.

Quickstart::

    from repro import Catalog, QrHint

    catalog = Catalog.from_spec({
        "Likes": [("drinker", "STRING"), ("beer", "STRING")],
        ...
    })
    report = QrHint(catalog, target_sql, working_sql).run()
    for hint in report.hints:
        print(hint)
"""

from repro.catalog import Catalog, Column, SqlType, Table
from repro.core.pipeline import QrHint, Report, StageResult, grade
from repro.core.where_repair import repair_where
from repro.engine import Database, appear_equivalent, execute
from repro.query import ResolvedQuery
from repro.solver import Solver
from repro.sqlparser import parse_query
from repro.witness import Witness, generate_witness

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "QrHint",
    "Report",
    "ResolvedQuery",
    "Solver",
    "SqlType",
    "StageResult",
    "Table",
    "Witness",
    "appear_equivalent",
    "execute",
    "generate_witness",
    "grade",
    "parse_query",
    "repair_where",
]
