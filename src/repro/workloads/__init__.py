"""Benchmark and evaluation workloads (Students+, TPC-H, DBLP study)."""

from repro.workloads import beers, brass, dblp, inject, tpch, userstudy

__all__ = ["beers", "brass", "dblp", "inject", "tpch", "userstudy"]
