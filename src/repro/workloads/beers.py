"""The beers/bars classroom workload (paper Example 1 and Table 4).

The paper's ``Students`` dataset (341 real queries, IRB-gated) publishes its
per-question error statistics in Table 4; this module regenerates a
synthetic dataset with the same questions, the same error taxonomy, and the
same per-category counts (306 supported wrong queries), so coverage numbers
measure the same population of mistakes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.catalog import Catalog


def catalog():
    """Schema of the drinkers/bars database (keys per Example 1)."""
    return Catalog.from_spec(
        {
            "Drinker": [("name", "STRING"), ("address", "STRING")],
            "Bar": [("name", "STRING"), ("address", "STRING")],
            "Likes": [("drinker", "STRING"), ("beer", "STRING")],
            "Frequents": [
                ("drinker", "STRING"),
                ("bar", "STRING"),
                ("times_a_week", "INT"),
            ],
            "Serves": [("bar", "STRING"), ("beer", "STRING"), ("price", "FLOAT")],
        }
    )


QUESTION_A = "Find the names of all beers served at James Joyce Pub."
SOLUTION_A = "SELECT beer FROM Serves WHERE bar = 'James Joyce Pub'"

QUESTION_B = (
    "Find names and addresses of bars that serve Budweiser at a price "
    "higher than 2.20."
)
SOLUTION_B = (
    "SELECT name, address FROM Bar, Serves "
    "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price > 2.20"
)

QUESTION_C = (
    "Find the names of drinkers who like Corona and frequent James Joyce "
    "Pub at least twice a week."
)
SOLUTION_C = (
    "SELECT likes.drinker FROM Likes, Frequents "
    "WHERE likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
    "AND frequents.bar = 'James Joyce Pub' AND frequents.times_a_week >= 2"
)

QUESTION_D = "Find the name of each drinker who likes at least two beers."
SOLUTION_D1 = (
    "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) >= 2"
)
SOLUTION_D2 = (
    "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 "
    "WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer"
)


@dataclass(frozen=True)
class StudentQuery:
    """One synthesized wrong query with its ground-truth metadata."""

    question: str  # "a" | "b" | "c" | "d1" | "d2"
    target_sql: str
    wrong_sql: str
    clause: str  # FROM | WHERE | GROUP BY | HAVING | SELECT
    category: str  # short error-category label from Table 4


# --- per-question mutation pools, mirroring Table 4 ----------------------

_BAR_TYPOS = [
    "James Joyce", "james joyce pub", "James Joice Pub", "Joyce Pub",
    "The James Joyce Pub", "JamesJoycePub", "James  Joyce Pub",
]
_BEER_TYPOS = ["Budweisser", "budweiser", "Bud", "Budweiser Light"]


def _variants_a():
    wrong = []
    # FROM errors (8): wrong table / extra cross-joined table.
    for extra in ["Bar", "Likes", "Frequents", "Drinker"]:
        wrong.append(
            (
                f"SELECT Serves.beer FROM Serves, {extra} "
                "WHERE Serves.bar = 'James Joyce Pub'",
                "FROM",
                "extra table (cross join)",
            )
        )
    for _ in range(2):
        wrong.append(
            (
                "SELECT beer FROM Likes, Frequents WHERE bar = 'James Joyce Pub'",
                "FROM",
                "wrong table",
            )
        )
    wrong.append(
        (
            "SELECT beer FROM Likes WHERE drinker = 'James Joyce Pub'",
            "FROM",
            "wrong table",
        )
    )
    wrong.append(
        (
            "SELECT Serves.beer FROM Serves, Serves s2 "
            "WHERE Serves.bar = 'James Joyce Pub'",
            "FROM",
            "extra table (cross join)",
        )
    )
    # WHERE errors (9): wrong bar name or typo.
    for typo in _BAR_TYPOS[:7]:
        wrong.append(
            (
                f"SELECT beer FROM Serves WHERE bar = '{typo}'",
                "WHERE",
                "wrong constant",
            )
        )
    wrong.append(
        (
            "SELECT beer FROM Serves WHERE bar LIKE 'James%'",
            "WHERE",
            "wrong constant",
        )
    )
    wrong.append(
        (
            "SELECT beer FROM Serves WHERE bar <> 'James Joyce Pub'",
            "WHERE",
            "wrong operator",
        )
    )
    # SELECT errors (5): wrong column instead of beer.
    for col in ["bar", "price"]:
        wrong.append(
            (
                f"SELECT {col} FROM Serves WHERE bar = 'James Joyce Pub'",
                "SELECT",
                "wrong column",
            )
        )
    wrong.append(
        (
            "SELECT bar, beer FROM Serves WHERE bar = 'James Joyce Pub'",
            "SELECT",
            "extra column",
        )
    )
    wrong.append(
        (
            "SELECT beer, price FROM Serves WHERE bar = 'James Joyce Pub'",
            "SELECT",
            "extra column",
        )
    )
    wrong.append(
        (
            "SELECT bar FROM Serves WHERE bar = 'James Joyce Pub'",
            "SELECT",
            "wrong column",
        )
    )
    return [("a", SOLUTION_A, sql, clause, cat) for sql, clause, cat in wrong]


def _variants_b():
    wrong = []
    # FROM errors (10): missing Bar or Serves.
    for _ in range(5):
        wrong.append(
            (
                "SELECT bar, bar FROM Serves WHERE beer = 'Budweiser' AND price > 2.20",
                "FROM",
                "missing table",
            )
        )
    for _ in range(5):
        wrong.append(
            (
                "SELECT name, address FROM Bar WHERE name = 'Budweiser'",
                "FROM",
                "missing table",
            )
        )
    # WHERE errors (96): missing join condition / >= instead of >.
    for _ in range(48):
        wrong.append(
            (
                "SELECT name, address FROM Bar, Serves "
                "WHERE beer = 'Budweiser' AND price > 2.20",
                "WHERE",
                "missing join condition",
            )
        )
    for _ in range(30):
        wrong.append(
            (
                "SELECT name, address FROM Bar, Serves "
                "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price >= 2.20",
                "WHERE",
                "wrong operator",
            )
        )
    for typo in _BEER_TYPOS * 3:
        wrong.append(
            (
                "SELECT name, address FROM Bar, Serves "
                f"WHERE Bar.name = Serves.bar AND beer = '{typo}' AND price > 2.20",
                "WHERE",
                "wrong constant",
            )
        )
    for _ in range(6):
        wrong.append(
            (
                "SELECT name, address FROM Bar, Serves "
                "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price < 2.20",
                "WHERE",
                "wrong operator",
            )
        )
    # SELECT errors (17): missing columns / wrong order.
    for _ in range(9):
        wrong.append(
            (
                "SELECT name FROM Bar, Serves "
                "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price > 2.20",
                "SELECT",
                "missing column",
            )
        )
    for _ in range(8):
        wrong.append(
            (
                "SELECT address, name FROM Bar, Serves "
                "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price > 2.20",
                "SELECT",
                "wrong column order",
            )
        )
    return [("b", SOLUTION_B, sql, clause, cat) for sql, clause, cat in wrong]


def _variants_c():
    wrong = []
    base_where = (
        "likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
        "AND frequents.bar = 'James Joyce Pub' AND frequents.times_a_week >= 2"
    )
    # FROM errors (11): wrong table (Serves) / unnecessary Drinker table.
    for _ in range(6):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Serves "
                "WHERE likes.beer = 'Corona' AND serves.bar = 'James Joyce Pub'",
                "FROM",
                "wrong table",
            )
        )
    for _ in range(5):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Frequents, Drinker "
                f"WHERE {base_where}",
                "FROM",
                "extra table (cross join)",
            )
        )
    # WHERE errors (105): missing join / > instead of >= / missing condition.
    for _ in range(45):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Frequents "
                "WHERE likes.beer = 'Corona' AND frequents.bar = 'James Joyce Pub' "
                "AND frequents.times_a_week >= 2",
                "WHERE",
                "missing join condition",
            )
        )
    for _ in range(30):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Frequents "
                "WHERE likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
                "AND frequents.bar = 'James Joyce Pub' AND frequents.times_a_week > 2",
                "WHERE",
                "wrong operator",
            )
        )
    for _ in range(20):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Frequents "
                "WHERE likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
                "AND frequents.times_a_week >= 2",
                "WHERE",
                "missing condition",
            )
        )
    for _ in range(10):
        wrong.append(
            (
                "SELECT likes.drinker FROM Likes, Frequents "
                "WHERE likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
                "AND frequents.bar = 'James Joyce Pub' AND frequents.times_a_week = 2",
                "WHERE",
                "wrong operator",
            )
        )
    # SELECT errors (6): wrong column.
    for _ in range(6):
        wrong.append(
            (
                f"SELECT likes.beer FROM Likes, Frequents WHERE {base_where}",
                "SELECT",
                "wrong column",
            )
        )
    # GROUP BY error (1).
    wrong.append(
        (
            "SELECT likes.drinker FROM Likes, Frequents "
            f"WHERE {base_where} GROUP BY likes.drinker, likes.beer",
            "GROUP BY",
            "grouping by wrong columns",
        )
    )
    return [("c", SOLUTION_C, sql, clause, cat) for sql, clause, cat in wrong]


def _variants_d():
    wrong = []
    # Solution 1 style (aggregate).  FROM (1), GROUP BY (1), HAVING (18),
    # SELECT (4).
    wrong.append(
        (
            "d1",
            "SELECT drinker FROM Frequents GROUP BY drinker HAVING COUNT(*) >= 2",
            "FROM",
            "wrong table",
        )
    )
    wrong.append(
        (
            "d1",
            "SELECT drinker FROM Likes GROUP BY drinker, beer HAVING COUNT(*) >= 2",
            "GROUP BY",
            "grouping by wrong columns",
        )
    )
    for _ in range(12):
        wrong.append(
            (
                "d1",
                "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) > 2",
                "HAVING",
                "wrong operator",
            )
        )
    for _ in range(6):
        wrong.append(
            (
                "d1",
                "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) >= 1",
                "HAVING",
                "wrong constant",
            )
        )
    for _ in range(4):
        wrong.append(
            (
                "d1",
                "SELECT drinker, COUNT(*) FROM Likes GROUP BY drinker "
                "HAVING COUNT(*) >= 2",
                "SELECT",
                "extra column",
            )
        )
    # Solution 2 style (self join).  FROM (5), WHERE (2), SELECT (7).
    for _ in range(3):
        wrong.append(
            (
                "d2",
                "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2, Frequents "
                "WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer",
                "FROM",
                "extra table (cross join)",
            )
        )
    for _ in range(2):
        wrong.append(
            (
                "d2",
                "SELECT DISTINCT l1.drinker FROM Likes l1 "
                "WHERE l1.drinker = l1.drinker",
                "FROM",
                "missing table",
            )
        )
    wrong.append(
        (
            "d2",
            "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 "
            "WHERE l1.drinker = l2.drinker AND l1.beer = l2.beer",
            "WHERE",
            "wrong operator",
        )
    )
    wrong.append(
        (
            "d2",
            "SELECT DISTINCT l1.drinker FROM Likes l1, Likes l2 "
            "WHERE l1.drinker <> l2.drinker AND l1.beer <> l2.beer",
            "WHERE",
            "wrong operator",
        )
    )
    for _ in range(7):
        wrong.append(
            (
                "d2",
                "SELECT l1.drinker FROM Likes l1, Likes l2 "
                "WHERE l1.drinker = l2.drinker AND l1.beer <> l2.beer",
                "SELECT",
                "missing DISTINCT",
            )
        )
    solutions = {"d1": SOLUTION_D1, "d2": SOLUTION_D2}
    return [(q, solutions[q], sql, clause, cat) for q, sql, clause, cat in wrong]


def students_dataset(seed=0):
    """The synthesized ``Students`` dataset: 306 supported wrong queries.

    The per-question / per-clause counts match Table 4 of the paper
    (restricted to the queries Qr-Hint supports).  Deterministic given the
    seed (which only shuffles presentation order).
    """
    entries = []
    for question, target, wrong, clause, category in (
        _variants_a() + _variants_b() + _variants_c() + _variants_d()
    ):
        entries.append(StudentQuery(question, target, wrong, clause, category))
    rng = random.Random(seed)
    rng.shuffle(entries)
    return entries


QUESTIONS = {
    "a": (QUESTION_A, SOLUTION_A),
    "b": (QUESTION_B, SOLUTION_B),
    "c": (QUESTION_C, SOLUTION_C),
    "d1": (QUESTION_D, SOLUTION_D1),
    "d2": (QUESTION_D, SOLUTION_D2),
}
