"""The DBLP user-study workload (Section 10, Appendix G).

Four questions over a DBLP-style schema, each with the paper's exact
correct query, wrong query, and hint sets (TA-written hints plus Qr-Hint
repair-site hints), reproduced from Tables 2 and 3 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog import Catalog


def catalog():
    return Catalog.from_spec(
        {
            "conference_paper": [
                ("pubkey", "STRING"),
                ("title", "STRING"),
                ("conference_name", "STRING"),
                ("year", "INT"),
                ("area", "STRING"),
            ],
            "journal_paper": [
                ("pubkey", "STRING"),
                ("title", "STRING"),
                ("journal_name", "STRING"),
                ("year", "INT"),
            ],
            "authorship": [("pubkey", "STRING"), ("author", "STRING")],
        }
    )


@dataclass(frozen=True)
class StudyHint:
    """One hint shown in the study, with its source and its ground truth."""

    text: str
    source: str  # "TA" | "Qr-Hint"
    # Calibrated vote distribution from Figures 6a/6b: probabilities of
    # (obvious, helpful, unhelpful) a participant assigns to this hint.
    vote_profile: tuple = (0.2, 0.6, 0.2)


@dataclass(frozen=True)
class StudyQuestion:
    qid: str
    statement: str
    correct_sql: str
    wrong_sql: str
    num_errors: int
    error_clauses: tuple
    hints: tuple = ()


Q1 = StudyQuestion(
    "Q1",
    "Find names of the authors, such that among the years when he/she "
    "published both conference paper and journal paper, 2 of the published "
    "papers are at least 20 years apart.",
    correct_sql="""
        SELECT i1.author
        FROM conference_paper c1, conference_paper c2, journal_paper j1,
             journal_paper j2, authorship i1, authorship i2,
             authorship i3, authorship i4
        WHERE c1.pubkey = i1.pubkey AND c2.pubkey = i2.pubkey
          AND j1.pubkey = i3.pubkey AND j2.pubkey = i4.pubkey
          AND i1.author = i2.author AND i2.author = i3.author
          AND i3.author = i4.author AND c1.year + 20 >= c2.year
          AND c1.year = j1.year AND c2.year = j2.year
        GROUP BY i1.author
    """,
    wrong_sql="""
        SELECT e.author
        FROM conference_paper a, authorship e, conference_paper b,
             authorship f, journal_paper c, authorship g,
             journal_paper d, authorship h
        WHERE a.pubkey = e.pubkey AND b.pubkey = g.pubkey
          AND c.pubkey = f.pubkey AND e.author = h.author
          AND d.pubkey = h.pubkey AND e.author = g.author
          AND f.author = h.author AND a.year + 20 > d.year
        GROUP BY e.author
    """,
    num_errors=2,
    error_clauses=("WHERE", "WHERE"),
    hints=(
        StudyHint(
            'In WHERE: You should change "a.year + 20 > d.year" to some '
            "other conditions.",
            "Qr-Hint",
            (0.15, 0.7, 0.15),
        ),
    ),
)

Q2 = StudyQuestion(
    "Q2",
    "For each author who has published conference papers in the database "
    "area, find the number of their conference paper collaborators in the "
    "database area by years before 2018.",
    correct_sql="""
        SELECT t2.author, t1.year, COUNT(DISTINCT t3.author)
        FROM conference_paper t1, authorship t2, authorship t3
        WHERE t1.pubkey = t2.pubkey AND t3.pubkey = t1.pubkey
          AND t3.author <> t2.author AND t1.year < 2018
          AND t1.area = 'Database'
        GROUP BY t2.author, t1.year
    """,
    wrong_sql="""
        SELECT a.author, year, COUNT(*)
        FROM conference_paper, authorship, authorship a
        WHERE conference_paper.pubkey = a.pubkey
          AND authorship.pubkey = a.pubkey
          AND a.author <> authorship.author AND year < 2018
        GROUP BY a.author, area, year, authorship.author
        HAVING area = 'Database' AND conference_paper.year < 2018
    """,
    num_errors=2,
    error_clauses=("GROUP BY", "SELECT"),
    hints=(
        StudyHint(
            "In GROUP BY: authorship.author is incorrect.",
            "Qr-Hint",
            (0.2, 0.65, 0.15),
        ),
        StudyHint(
            "In SELECT: COUNT(*) is incorrect.",
            "Qr-Hint",
            (0.2, 0.65, 0.15),
        ),
    ),
)

Q3 = StudyQuestion(
    "Q3",
    "Excluding publications in the year of 2015, find authors who publish "
    "conference papers in at least 2 areas.",
    correct_sql="""
        SELECT t1.author
        FROM authorship t1, conference_paper t2, authorship t3,
             conference_paper t4
        WHERE t2.pubkey = t1.pubkey AND t1.author = t3.author
          AND t4.pubkey = t3.pubkey AND t2.year = t4.year
          AND t2.area <> t4.area AND t2.year <> 2015
          AND t2.area <> 'UNKNOWN' AND t4.area <> 'UNKNOWN'
        GROUP BY t1.author
    """,
    wrong_sql="""
        SELECT b.author
        FROM conference_paper, authorship b, conference_paper a, authorship
        WHERE conference_paper.pubkey = authorship.pubkey AND a.year < 2015
           OR a.year > 2015 AND b.author = authorship.author
          AND a.pubkey = b.pubkey AND conference_paper.year = a.year
          AND a.area <> conference_paper.area AND a.area <> 'UNKNOWN'
          AND conference_paper.area <> 'UNKNOWN'
        GROUP BY b.author
    """,
    num_errors=1,
    error_clauses=("WHERE",),
    hints=(
        StudyHint(
            "In WHERE, try to fix the whole condition by adding a pair of "
            "parentheses - in SQL AND takes higher precedence than OR (this "
            "fix alone should make the query correct)",
            "TA",
            (0.55, 0.3, 0.15),
        ),
        StudyHint(
            "In WHERE, you are missing a pair of parentheses around "
            "a.year < 2015 OR a.year > 2015.",
            "TA",
            (0.6, 0.25, 0.15),
        ),
        StudyHint(
            "GROUP BY is incorrect.",
            "TA",
            (0.1, 0.3, 0.6),
        ),
        StudyHint(
            "GROUP BY is incorrect without an aggregate function.",
            "TA",
            (0.1, 0.25, 0.65),
        ),
        StudyHint(
            "In WHERE, there is a problem spanning `a.year < 2015 OR ...` -- "
            "check how your conditions combine.",
            "Qr-Hint",
            (0.15, 0.7, 0.15),
        ),
    ),
)

Q4 = StudyQuestion(
    "Q4",
    "Among the authors who publish in the Systems-area conferences, find "
    "the ones that have no co-authors on such publications.",
    correct_sql="""
        SELECT t2.author
        FROM conference_paper t1, authorship t2, authorship t3
        WHERE t1.pubkey = t2.pubkey AND t2.pubkey = t3.pubkey
          AND t1.area = 'Systems'
        GROUP BY t2.author
        HAVING COUNT(DISTINCT t3.author) <= 1
    """,
    wrong_sql="""
        SELECT a.author
        FROM authorship, conference_paper, authorship a
        WHERE conference_paper.pubkey = a.pubkey
          AND a.pubkey = authorship.pubkey
        GROUP BY a.author, conference_paper.area
        HAVING conference_paper.area = 'System'
           AND COUNT(DISTINCT a.author) <= 1
    """,
    num_errors=2,
    error_clauses=("WHERE", "HAVING"),
    hints=(
        StudyHint(
            "GROUP BY should not include t1.area.",
            "TA",
            (0.15, 0.35, 0.5),
        ),
        StudyHint(
            "In HAVING, conference_paper.area = 'System' should not appear.",
            "TA",
            (0.3, 0.45, 0.25),
        ),
        StudyHint(
            "In HAVING, try to fix conference_paper.area = 'System' (this "
            "plus another fix in HAVING will make the query right).",
            "Qr-Hint",
            (0.2, 0.65, 0.15),
        ),
        StudyHint(
            "In HAVING, conference_paper.area = 'System' should be = "
            "'Systems'.",
            "TA",
            (0.7, 0.2, 0.1),
        ),
        StudyHint(
            "In HAVING, try to fix COUNT(DISTINCT a.author) <= 1 (this plus "
            "another fix in HAVING will make the query right).",
            "Qr-Hint",
            (0.2, 0.65, 0.15),
        ),
        StudyHint(
            "In HAVING, COUNT(DISTINCT a.author) <= 1 is referring to the "
            "same author attribute as the GROUP BY.",
            "TA",
            (0.1, 0.3, 0.6),
        ),
    ),
)

QUESTIONS = [Q1, Q2, Q3, Q4]
