"""The Brass & Goldberg semantic-error catalog (Table 5 of the paper).

Brass et al. (2006) list 43 SQL issues indicative of semantic errors.  The
paper classifies them into: 25 supported by Qr-Hint -- 11 genuine logical
errors (correctly hinted), 3 stylistic issues on semantically correct
queries (correctly not flagged), 11 stylistic issues where Qr-Hint fails to
detect equivalence and suggests (correct but unnecessary) fixes -- plus 18
issues involving unsupported SQL features.

This module encodes that classification together with runnable example
pairs on the beers schema for the ``Students+`` extension (the paper
handcrafts two queries per not-already-covered issue).
"""

from __future__ import annotations

from dataclasses import dataclass

# Expected Qr-Hint handling classes (Section 9.1):
LOGICAL = "logical-error"  # real error; Qr-Hint hints a fix
STYLE_OK = "style-correct"  # stylistic; Qr-Hint correctly stays silent
STYLE_FLAG = "style-flagged"  # stylistic; Qr-Hint flags an unnecessary fix
UNSUPPORTED = "unsupported"  # outside the supported SQL fragment


@dataclass(frozen=True)
class BrassIssue:
    """One catalogued issue with an optional runnable example pair."""

    number: int
    description: str
    handling: str  # LOGICAL | STYLE_OK | STYLE_FLAG | UNSUPPORTED
    in_students: bool = False  # already represented in the Students data
    frequency: float | None = None  # share reported by Brass et al.
    # Example pair (working, reference); None when inexpressible here.
    working_sql: str | None = None
    reference_sql: str | None = None

    @property
    def supported(self):
        return self.handling != UNSUPPORTED


_REF_C = (
    "SELECT likes.drinker FROM Likes, Frequents "
    "WHERE likes.beer = 'Corona' AND likes.drinker = frequents.drinker "
    "AND frequents.bar = 'James Joyce Pub' AND frequents.times_a_week >= 2"
)

ISSUES = [
    BrassIssue(
        1, "Inconsistent condition", LOGICAL, True, 0.114,
        "SELECT beer FROM Serves WHERE price > 3 AND price < 2",
        "SELECT beer FROM Serves WHERE price > 3",
    ),
    BrassIssue(
        2, "Unnecessary DISTINCT", STYLE_FLAG, True, 0.037,
        "SELECT DISTINCT drinker, beer FROM Likes",
        "SELECT drinker, beer FROM Likes",
    ),
    BrassIssue(
        3, "Constant output columns", LOGICAL, True, 0.032,
        "SELECT drinker, 'Corona' FROM Likes",
        "SELECT drinker, beer FROM Likes",
    ),
    BrassIssue(
        4, "Duplicate output columns", LOGICAL, True, None,
        "SELECT drinker, drinker FROM Likes",
        "SELECT drinker, beer FROM Likes",
    ),
    BrassIssue(
        5, "Unused tuple variables", LOGICAL, True, 0.056,
        "SELECT beer FROM Serves, Bar WHERE Serves.bar = 'James Joyce Pub'",
        "SELECT beer FROM Serves WHERE Serves.bar = 'James Joyce Pub'",
    ),
    BrassIssue(
        6, "Unnecessary join", STYLE_FLAG, True, 0.084,
        "SELECT Serves.beer FROM Serves, Bar "
        "WHERE Serves.bar = Bar.name AND Serves.price > 3",
        "SELECT beer FROM Serves WHERE price > 3",
    ),
    BrassIssue(
        7, "Tuple variables are always identical", STYLE_FLAG, False, 0.032,
        "SELECT l1.drinker FROM Likes l1, Likes l2 "
        "WHERE l1.drinker = l2.drinker AND l1.beer = l2.beer",
        "SELECT drinker FROM Likes",
    ),
    BrassIssue(
        8, "Implied, tautological, or inconsistent subcondition", STYLE_OK,
        True, 0.054,
        "SELECT beer FROM Serves WHERE price >= 2 OR price < 2",
        "SELECT beer FROM Serves",
    ),
    BrassIssue(9, "Comparison with NULL", UNSUPPORTED),
    BrassIssue(10, "NULL value in IN/ANY/ALL subquery", UNSUPPORTED),
    BrassIssue(11, "Unnecessarily general comparison operator", UNSUPPORTED),
    BrassIssue(
        12, "LIKE without wildcard", LOGICAL, False, None,
        "SELECT beer FROM Serves WHERE bar LIKE 'James Joyce'",
        "SELECT beer FROM Serves WHERE bar = 'James Joyce Pub'",
    ),
    BrassIssue(13, "Unnecessarily complicated SELECT in EXISTS-subquery",
               UNSUPPORTED),
    BrassIssue(14, "IN/EXISTS condition can be replaced by comparison",
               UNSUPPORTED),
    BrassIssue(
        15, "Unnecessary aggregation function", STYLE_FLAG, False, None,
        "SELECT drinker, MAX(beer) FROM Likes GROUP BY drinker, beer",
        "SELECT drinker, beer FROM Likes",
    ),
    BrassIssue(
        16, "Unnecessary DISTINCT in aggregation function", STYLE_FLAG, True,
        None,
        "SELECT drinker, COUNT(DISTINCT beer) FROM Likes GROUP BY drinker",
        "SELECT drinker, COUNT(beer) FROM Likes GROUP BY drinker",
    ),
    BrassIssue(
        17, "Unnecessary argument of COUNT", STYLE_OK, True, None,
        # Paper: flagged; our COUNT(expr) -> COUNT(*) normalization proves
        # the equivalence, so no fix is suggested (strictly better).
        "SELECT drinker, COUNT(beer) FROM Likes GROUP BY drinker",
        "SELECT drinker, COUNT(*) FROM Likes GROUP BY drinker",
    ),
    BrassIssue(18, "Unnecessary GROUP BY in EXISTS subquery", UNSUPPORTED),
    BrassIssue(
        19, "GROUP BY with singleton group", STYLE_FLAG, False, 0.044,
        "SELECT drinker, beer FROM Likes GROUP BY drinker, beer",
        "SELECT drinker, beer FROM Likes",
    ),
    BrassIssue(
        20, "GROUP BY with only a single group", STYLE_OK, False, None,
        # Paper: flagged; grouping by a WHERE-pinned constant provably forms
        # a single group, which FixGrouping detects (strictly better).
        "SELECT COUNT(*) FROM Serves WHERE bar = 'James Joyce Pub' "
        "GROUP BY bar",
        "SELECT COUNT(*) FROM Serves WHERE bar = 'James Joyce Pub'",
    ),
    BrassIssue(
        21, "Unnecessary GROUP BY attribute", STYLE_OK, True, None,
        "SELECT l1.drinker FROM Likes l1 GROUP BY l1.drinker, l1.drinker "
        "HAVING COUNT(*) >= 2",
        "SELECT drinker FROM Likes GROUP BY drinker HAVING COUNT(*) >= 2",
    ),
    BrassIssue(
        22, "GROUP BY can be replaced by DISTINCT", STYLE_FLAG, True, None,
        "SELECT drinker FROM Likes GROUP BY drinker",
        "SELECT DISTINCT drinker FROM Likes",
    ),
    BrassIssue(23, "UNION can be replaced by OR", UNSUPPORTED),
    BrassIssue(
        24, "Unnecessary ORDER BY term", STYLE_FLAG, False, 0.108,
        None, None,  # ORDER BY is outside our fragment (as it affects no
        # semantics Qr-Hint checks, the paper treats it as stylistic)
    ),
    BrassIssue(
        25, "Inefficient HAVING", STYLE_OK, True, None,
        "SELECT bar, COUNT(*) FROM Serves GROUP BY bar "
        "HAVING bar = 'James Joyce Pub'",
        "SELECT bar, COUNT(*) FROM Serves WHERE bar = 'James Joyce Pub' "
        "GROUP BY bar",
    ),
    BrassIssue(26, "Inefficient UNION", UNSUPPORTED),
    BrassIssue(
        27, "Missing join conditions", LOGICAL, True, 0.213,
        "SELECT name, address FROM Bar, Serves "
        "WHERE beer = 'Budweiser' AND price > 2.20",
        "SELECT name, address FROM Bar, Serves "
        "WHERE Bar.name = Serves.bar AND beer = 'Budweiser' AND price > 2.20",
    ),
    BrassIssue(28, "Uncorrelated EXISTS subquery", UNSUPPORTED),
    BrassIssue(29, "IN-subquery with only one possible result value",
               UNSUPPORTED),
    BrassIssue(30, "Condition in the subquery that can be moved up",
               UNSUPPORTED),
    BrassIssue(
        31, "Comparison between different domains", LOGICAL, True, None,
        "SELECT drinker FROM Frequents WHERE times_a_week >= 2 "
        "AND bar = 'James Joyce Pub' AND drinker = bar",
        "SELECT drinker FROM Frequents WHERE times_a_week >= 2 "
        "AND bar = 'James Joyce Pub'",
    ),
    # Paper: flagged; the COUNT(*) >= 1 context fact proves the HAVING
    # condition tautological (strictly better).
    BrassIssue(32, "Strange HAVING", STYLE_OK, False, None,
               "SELECT bar FROM Serves GROUP BY bar HAVING COUNT(*) >= 0",
               "SELECT bar FROM Serves GROUP BY bar"),
    BrassIssue(
        33, "DISTINCT in SUM and AVG", LOGICAL, False, None,
        "SELECT bar, SUM(DISTINCT price) FROM Serves GROUP BY bar",
        "SELECT bar, SUM(price) FROM Serves GROUP BY bar",
    ),
    BrassIssue(
        34, "Wildcards without LIKE", LOGICAL, True, None,
        "SELECT beer FROM Serves WHERE bar = 'James%'",
        "SELECT beer FROM Serves WHERE bar LIKE 'James%'",
    ),
    BrassIssue(35, "Condition on left table in left outer join", UNSUPPORTED),
    BrassIssue(36, "Outer join can be replaced by inner join", UNSUPPORTED),
    BrassIssue(
        37, "Many duplicates", LOGICAL, True, 0.108,
        "SELECT likes.drinker FROM Likes, Frequents "
        "WHERE likes.drinker = frequents.drinker AND likes.beer = 'Corona'",
        "SELECT DISTINCT likes.drinker FROM Likes, Frequents "
        "WHERE likes.drinker = frequents.drinker AND likes.beer = 'Corona'",
    ),
    BrassIssue(
        38, "DISTINCT that might remove important duplicates", LOGICAL, True,
        None,
        "SELECT DISTINCT bar, beer, price FROM Serves WHERE price < 3",
        "SELECT bar, beer, price FROM Serves WHERE price < 3",
    ),
    BrassIssue(39, "Subquery term that might return more than one tuple",
               UNSUPPORTED),
    BrassIssue(40, "SELECT INTO that might return more than one tuple",
               UNSUPPORTED),
    BrassIssue(41, "No indicator variable for nullable argument", UNSUPPORTED),
    BrassIssue(42, "Difficult type conversion", UNSUPPORTED),
    BrassIssue(43, "Runtime error in datatype function (e.g. divide by 0)",
               UNSUPPORTED),
]


def supported_issues():
    return [issue for issue in ISSUES if issue.supported]


def unsupported_issues():
    return [issue for issue in ISSUES if not issue.supported]


def issues_by_handling(handling):
    return [issue for issue in ISSUES if issue.handling == handling]


def handcrafted_pairs():
    """The Students+ extension: two queries per not-in-Students issue.

    Returns (issue, working_sql, reference_sql) triples; issues without an
    expressible example in this fragment are skipped (documented in
    EXPERIMENTS.md).
    """
    out = []
    for issue in supported_issues():
        if issue.in_students or issue.working_sql is None:
            continue
        out.append((issue, issue.working_sql, issue.reference_sql))
        out.append((issue, issue.working_sql, issue.reference_sql))
    return out
