"""Synthetic error injection into WHERE predicates (Section 9, TPCH setup).

The paper injects errors by "changing atomic predicates or logical
operators"; ground-truth repair sites/fixes are known by construction, so
the optimality of Qr-Hint's repairs can be measured exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction

from repro.catalog import SqlType
from repro.core.cost import Repair, repair_cost
from repro.logic.formulas import And, Comparison, Or, TRUE
from repro.logic.paths import all_paths, node_at, replace_at
from repro.logic.terms import Arith, Const, Var

_FLIP = {"=": "<>", "<>": "=", "<": ">", ">": "<", "<=": ">", ">=": "<"}
_WEAKEN = {"<": "<=", ">": ">=", "<=": "<", ">=": ">"}


@dataclass(frozen=True)
class Injection:
    """One injected error: where it happened and what it replaced."""

    path: tuple
    original: object  # the correct subformula at the path
    mutated: object  # what the wrong query contains instead
    kind: str  # "operator-flip" | "operator-weaken" | "constant" | "column"


@dataclass
class InjectedPredicate:
    """A wrong predicate plus its ground truth."""

    correct: object
    wrong: object
    injections: list

    def ground_truth_repair(self):
        """The by-construction repair: put the original subtrees back."""
        return Repair.of(
            {inj.path: inj.original for inj in self.injections}
        )

    def ground_truth_cost(self, weight=Fraction(1, 6)):
        return repair_cost(
            self.ground_truth_repair(), self.wrong, self.correct, weight
        )


def _string_typos(value, rng):
    """Deterministic (per rng) typo variants of a string constant."""
    variants = []
    if value:
        variants.append(value[0].swapcase() + value[1:])
        variants.append(value + "s")
    if len(value) > 1:
        variants.append(value[:-1])
        variants.append(value.lower())
    variants = [v for v in variants if v != value]
    return rng.choice(variants) if variants else None


def _mutate_atom(atom, rng, all_vars, kinds=None):
    """Mutate one atomic predicate; returns (mutated, kind) or None.

    ``kinds`` optionally restricts the mutation families considered
    (labels as recorded on :class:`Injection`: ``operator-flip``,
    ``operator-weaken``, ``constant``, ``column``).
    """
    choices = []
    if atom.op in _FLIP:
        choices.append(("flip", "operator-flip"))
    if atom.op in _WEAKEN:
        choices.append(("weaken", "operator-weaken"))
    if isinstance(atom.right, Const) and atom.right.type.is_numeric:
        choices.append(("constant", "constant"))
    if (
        isinstance(atom.right, Const)
        and atom.right.type == SqlType.STRING
        and _string_typos(atom.right.value, random.Random(0)) is not None
    ):
        choices.append(("string", "constant"))
    swap_candidates = [
        v
        for v in all_vars
        if v.vtype == atom.left.type and v != atom.left
    ]
    if isinstance(atom.left, Var) and swap_candidates:
        choices.append(("column", "column"))
    if kinds is not None:
        choices = [c for c in choices if c[1] in kinds]
    if not choices:
        return None
    choice, kind = rng.choice(choices)
    if choice == "flip":
        return Comparison(_FLIP[atom.op], atom.left, atom.right), kind
    if choice == "weaken":
        return Comparison(_WEAKEN[atom.op], atom.left, atom.right), kind
    if choice == "constant":
        delta = rng.choice([-10, -1, 1, 5, 100])
        new_value = atom.right.value + delta
        return (
            Comparison(atom.op, atom.left, Const(new_value, atom.right.type)),
            kind,
        )
    if choice == "string":
        typo = _string_typos(atom.right.value, rng)
        return (
            Comparison(atom.op, atom.left, Const(typo, SqlType.STRING)),
            kind,
        )
    new_var = rng.choice(swap_candidates)
    return Comparison(atom.op, new_var, atom.right), kind


def _mutate_operator(node, rng):
    """Swap an AND node for OR or vice versa (children preserved)."""
    if isinstance(node, And):
        return Or(node.operands)
    if isinstance(node, Or):
        return And(node.operands)
    return None


def inject_errors(predicate, num_errors, seed=0, allow_operator_swap=False,
                  kinds=None):
    """Inject ``num_errors`` independent errors into ``predicate``.

    Mutation sites are disjoint atoms (plus, optionally, internal AND/OR
    nodes).  Deterministic for a given seed.  ``kinds`` restricts the atom
    mutation families (see :func:`_mutate_atom`); ``and-or-swap`` sites are
    governed by ``allow_operator_swap`` independently.  Returns
    :class:`InjectedPredicate` (`wrong` carries the mutations; `correct` is
    the input).
    """
    rng = random.Random(seed)
    all_vars = sorted(predicate.variables(), key=str)
    atom_sites = [
        (path, node)
        for path, node in all_paths(predicate)
        if isinstance(node, Comparison)
    ]
    op_sites = []
    if allow_operator_swap:
        op_sites = [
            (path, node)
            for path, node in all_paths(predicate)
            if isinstance(node, (And, Or)) and path != ()
        ]
    rng.shuffle(atom_sites)
    rng.shuffle(op_sites)

    injections = []
    pool = atom_sites + op_sites
    for path, node in pool:
        if len(injections) >= num_errors:
            break
        if any(_overlaps(path, inj.path) for inj in injections):
            continue
        if isinstance(node, Comparison):
            mutated = _mutate_atom(node, rng, all_vars, kinds=kinds)
            if mutated is None:
                continue
            new_node, kind = mutated
        else:
            new_node = _mutate_operator(node, rng)
            if new_node is None:
                continue
            kind = "and-or-swap"
        injections.append(Injection(path, node, new_node, kind))

    if len(injections) < num_errors:
        raise ValueError(
            f"could only inject {len(injections)} of {num_errors} errors"
        )
    wrong = replace_at(predicate, {inj.path: inj.mutated for inj in injections})
    return InjectedPredicate(predicate, wrong, injections)


def _overlaps(path_a, path_b):
    shorter, longer = sorted((path_a, path_b), key=len)
    return longer[: len(shorter)] == shorter
