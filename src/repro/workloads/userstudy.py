"""Simulated user study (Section 10).

The paper's study (15 students, 4 TAs) cannot be rerun offline, so this
module substitutes a calibrated participant simulation over the *same
stimuli* (the DBLP questions, wrong queries, and hint texts of Appendix G):

* **error identification** (Figures 5a/5b): each simulated participant
  identifies each error with a Bernoulli probability that depends on
  whether Qr-Hint hints were shown; the probabilities are calibrated to
  the rates the paper reports (Q1: 14.3% -> 100% at-least-one, Q2:
  71.4% -> 87.5%).
* **hint categorization** (Figures 6a/6b): each participant votes
  "Obvious" / "Helpful" / "Unhelpful" for every hint by sampling the
  hint's calibrated vote profile.

The *shape* conclusions the paper draws -- hints help, and Qr-Hint's hints
are consistently rated helpful while TA hints vary -- are then regenerated
from the simulation.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.workloads.dblp import QUESTIONS

VOTE_CATEGORIES = ("Obvious", "Helpful", "Unhelpful")

# Keywords eligible for case jitter in simulated submissions.  String
# literals and identifiers are left untouched (identifiers because alias
# spelling is exercised separately via alpha-renaming).
_JITTER_KEYWORDS = frozenset(
    "SELECT FROM WHERE GROUP BY HAVING AND OR NOT DISTINCT AS ON".split()
)

# Per-error identification probabilities (no-hint vs with-hint), calibrated
# to the reported at-least-one-error rates of Figures 5a/5b.
IDENTIFY_PROBS = {
    "Q1": {"none": 0.075, "qrhint": 0.93},
    "Q2": {"none": 0.47, "qrhint": 0.65},
}


@dataclass
class IdentificationOutcome:
    """Aggregate of one treatment arm for one question."""

    question: str
    treatment: str  # "none" | "qrhint"
    participants: int
    at_least_one: int
    both: int

    @property
    def at_least_one_rate(self):
        return self.at_least_one / self.participants

    @property
    def both_rate(self):
        return self.both / self.participants


def simulate_identification(question, treatment, participants, seed=0):
    """Simulate error-identification for one treatment arm."""
    rng = random.Random(f"{question.qid}|{treatment}|{seed}")
    prob = IDENTIFY_PROBS[question.qid][treatment]
    at_least_one = 0
    both = 0
    for _ in range(participants):
        found = [rng.random() < prob for _ in range(question.num_errors)]
        if any(found):
            at_least_one += 1
        if all(found):
            both += 1
    return IdentificationOutcome(
        question.qid, treatment, participants, at_least_one, both
    )


@dataclass
class VoteTally:
    """Vote counts per category for one hint source."""

    source: str
    votes: dict = field(default_factory=lambda: {c: 0 for c in VOTE_CATEGORIES})

    def add(self, category):
        self.votes[category] += 1

    @property
    def total(self):
        return sum(self.votes.values())

    def share(self, category):
        return self.votes[category] / self.total if self.total else 0.0


def simulate_votes(question, participants, seed=0):
    """Simulate hint categorization votes (Figures 6a/6b).

    Returns {source: VoteTally} plus per-hint tallies, aggregating each
    participant's multinomial vote over every hint shown for the question.
    """
    rng = random.Random(f"{question.qid}|votes|{seed}")
    by_source = {}
    per_hint = []
    for hint in question.hints:
        tally = VoteTally(hint.source)
        p_obvious, p_helpful, _ = hint.vote_profile
        for _ in range(participants):
            roll = rng.random()
            if roll < p_obvious:
                category = "Obvious"
            elif roll < p_obvious + p_helpful:
                category = "Helpful"
            else:
                category = "Unhelpful"
            tally.add(category)
            source_tally = by_source.setdefault(
                hint.source, VoteTally(hint.source)
            )
            source_tally.add(category)
        per_hint.append((hint, tally))
    return by_source, per_hint


# One "word": a quoted string literal (kept byte-for-byte, including any
# internal whitespace) or a run of non-space, non-quote characters.
_POOL_TOKEN = re.compile(r"'[^']*'|[^\s']+")


def _format_variant(sql, rng):
    """Reformat a query the way a different student would type it.

    Whitespace and keyword case are randomized; string literals are kept
    verbatim, so the resolved query is unchanged -- exactly the duplicate
    class the service layer's artifact cache is built for.
    """
    out = []
    for token in _POOL_TOKEN.findall(sql):
        if token.upper() in _JITTER_KEYWORDS and rng.random() < 0.6:
            token = token.lower() if rng.random() < 0.5 else token.upper()
        out.append(token)
    text = []
    for i, token in enumerate(out):
        if i:
            roll = rng.random()
            if roll < 0.08:
                text.append("\n  ")
            elif roll < 0.2:
                text.append("  ")
            else:
                text.append(" ")
        text.append(token)
    return "".join(text)


def _alias_variants(sql, prefixes=("w", "z")):
    """Alpha-equivalent rewrites: same query under renamed FROM aliases."""
    from repro.workloads import dblp
    from repro.sqlparser.rewrite import parse_query_extended

    parsed = parse_query_extended(sql, dblp.catalog())
    variants = []
    for prefix in prefixes:
        mapping = {
            entry.alias: f"{prefix}{i}"
            for i, entry in enumerate(parsed.from_entries)
        }
        variants.append(parsed.rename_aliases(mapping).to_sql())
    return variants


def submission_pool(question, count=200, seed=0, correct_rate=0.1,
                    alias_rate=0.25):
    """Simulate a duplicate-heavy classroom pile for one study question.

    Returns ``count`` SQL strings, all answering ``question`` (a
    :class:`~repro.workloads.dblp.StudyQuestion` or its qid): mostly the
    paper's wrong query under formatting/case/alias perturbations, plus a
    ``correct_rate`` share of correct submissions.  This is the demo
    workload for the batch grading path (``repro grade-batch --workload
    userstudy``): the pool collapses to very few canonical forms, so the
    artifact cache serves almost every submission.
    """
    if isinstance(question, str):
        match = next((q for q in QUESTIONS if q.qid == question), None)
        if match is None:
            known = ", ".join(q.qid for q in QUESTIONS)
            raise ValueError(f"unknown question {question!r} (have: {known})")
        question = match
    rng = random.Random(f"{question.qid}|pool|{seed}")
    alias_forms = _alias_variants(question.wrong_sql)
    pool = []
    for _ in range(count):
        roll = rng.random()
        if roll < correct_rate:
            base = question.correct_sql
        elif roll < correct_rate + alias_rate:
            base = rng.choice(alias_forms)
        else:
            base = question.wrong_sql
        pool.append(_format_variant(base, rng))
    return pool


def run_full_study(participants_per_arm=8, seed=0):
    """Run the entire simulated study; returns a structured result dict."""
    q1, q2, q3, q4 = QUESTIONS
    identification = {}
    for question in (q1, q2):
        identification[question.qid] = {
            "none": simulate_identification(
                question, "none", participants_per_arm, seed
            ),
            "qrhint": simulate_identification(
                question, "qrhint", participants_per_arm, seed
            ),
        }
    votes = {}
    for question in (q3, q4):
        by_source, per_hint = simulate_votes(question, participants_per_arm, seed)
        votes[question.qid] = {"by_source": by_source, "per_hint": per_hint}
    return {"identification": identification, "votes": votes}
