"""TPC-H workload for the WHERE-repair stress tests (Section 9, TPCH).

The paper stress-tests ``RepairWhere`` on the WHERE predicates of TPC-H
queries 4, 3, 10, 9, 5, 8, 21 (conjunctions of 4, 5, 6, 7, 9, 10, 11 atomic
predicates), a synthetic 8-conjunct query obtained by dropping one
predicate from Q5, and the nested-AND/OR predicate of Q7.  Only the
predicates matter (no data is scanned), so this module provides the schema
and each query's FROM + WHERE.

Substitution note: DATE columns are encoded as INT (days since 1992-01-01),
which preserves all comparison reasoning; subquery-based conditions are
flattened into join predicates so atom counts match the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog import Catalog
from repro.sqlparser import parse_query


def catalog():
    """A TPC-H schema restricted to the columns the predicates touch."""
    return Catalog.from_spec(
        {
            "customer": [
                ("custkey", "INT"),
                ("name", "STRING"),
                ("nationkey", "INT"),
                ("mktsegment", "STRING"),
                ("acctbal", "FLOAT"),
            ],
            "orders": [
                ("orderkey", "INT"),
                ("custkey", "INT"),
                ("orderstatus", "STRING"),
                ("totalprice", "FLOAT"),
                ("orderdate", "INT"),
                ("orderpriority", "STRING"),
            ],
            "lineitem": [
                ("orderkey", "INT"),
                ("partkey", "INT"),
                ("suppkey", "INT"),
                ("linenumber", "INT"),
                ("quantity", "FLOAT"),
                ("extendedprice", "FLOAT"),
                ("discount", "FLOAT"),
                ("returnflag", "STRING"),
                ("shipdate", "INT"),
                ("commitdate", "INT"),
                ("receiptdate", "INT"),
            ],
            "supplier": [
                ("suppkey", "INT"),
                ("name", "STRING"),
                ("nationkey", "INT"),
            ],
            "nation": [
                ("nationkey", "INT"),
                ("name", "STRING"),
                ("regionkey", "INT"),
            ],
            "region": [("regionkey", "INT"), ("name", "STRING")],
            "part": [
                ("partkey", "INT"),
                ("name", "STRING"),
                ("type", "STRING"),
                ("size", "INT"),
            ],
            "partsupp": [
                ("partkey", "INT"),
                ("suppkey", "INT"),
                ("supplycost", "FLOAT"),
            ],
        }
    )


@dataclass(frozen=True)
class TpchQuery:
    """One benchmark query: name, atom count, and SQL text."""

    name: str
    num_atoms: int
    sql: str
    nested: bool = False

    def resolve(self, cat=None):
        return parse_query(self.sql, cat or catalog())


# Conjunctive WHERE queries, ordered by atom count (Figure 2's x-axis).
Q4 = TpchQuery(
    "Q4", 4,
    "SELECT o.orderpriority, COUNT(*) FROM orders o, lineitem l "
    "WHERE l.orderkey = o.orderkey AND o.orderdate >= 9314 "
    "AND o.orderdate < 9406 AND l.commitdate < l.receiptdate "
    "GROUP BY o.orderpriority",
)

Q3 = TpchQuery(
    "Q3", 5,
    "SELECT l.orderkey, SUM(l.extendedprice), o.orderdate "
    "FROM customer c, orders o, lineitem l "
    "WHERE c.mktsegment = 'BUILDING' AND c.custkey = o.custkey "
    "AND l.orderkey = o.orderkey AND o.orderdate < 1167 "
    "AND l.shipdate > 1167 "
    "GROUP BY l.orderkey, o.orderdate",
)

Q10 = TpchQuery(
    "Q10", 6,
    "SELECT c.custkey, c.name, SUM(l.extendedprice), n.name "
    "FROM customer c, orders o, lineitem l, nation n "
    "WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey "
    "AND o.orderdate >= 731 AND o.orderdate < 821 "
    "AND l.returnflag = 'R' AND c.nationkey = n.nationkey "
    "GROUP BY c.custkey, c.name, n.name",
)

Q9 = TpchQuery(
    "Q9", 7,
    "SELECT n.name, o.orderdate, SUM(l.extendedprice) "
    "FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n "
    "WHERE s.suppkey = l.suppkey AND ps.suppkey = l.suppkey "
    "AND ps.partkey = l.partkey AND p.partkey = l.partkey "
    "AND o.orderkey = l.orderkey AND s.nationkey = n.nationkey "
    "AND p.name LIKE '%green%' "
    "GROUP BY n.name, o.orderdate",
)

Q5_SYNTH = TpchQuery(
    "Q5-8", 8,
    "SELECT n.name, SUM(l.extendedprice) "
    "FROM customer c, orders o, lineitem l, supplier s, nation n, region r "
    "WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey "
    "AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey "
    "AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey "
    "AND r.name = 'ASIA' AND o.orderdate >= 731 "
    "GROUP BY n.name",
)

Q5 = TpchQuery(
    "Q5", 9,
    "SELECT n.name, SUM(l.extendedprice) "
    "FROM customer c, orders o, lineitem l, supplier s, nation n, region r "
    "WHERE c.custkey = o.custkey AND l.orderkey = o.orderkey "
    "AND l.suppkey = s.suppkey AND c.nationkey = s.nationkey "
    "AND s.nationkey = n.nationkey AND n.regionkey = r.regionkey "
    "AND r.name = 'ASIA' AND o.orderdate >= 731 AND o.orderdate < 1096 "
    "GROUP BY n.name",
)

Q8 = TpchQuery(
    "Q8", 10,
    "SELECT o.orderdate, SUM(l.extendedprice) "
    "FROM part p, supplier s, lineitem l, orders o, customer c, "
    "nation n1, nation n2, region r "
    "WHERE p.partkey = l.partkey AND s.suppkey = l.suppkey "
    "AND l.orderkey = o.orderkey AND o.custkey = c.custkey "
    "AND c.nationkey = n1.nationkey AND n1.regionkey = r.regionkey "
    "AND r.name = 'AMERICA' AND s.nationkey = n2.nationkey "
    "AND o.orderdate >= 1096 AND o.orderdate <= 1826 "
    "GROUP BY o.orderdate",
)

Q21 = TpchQuery(
    "Q21", 11,
    "SELECT s.name, COUNT(*) "
    "FROM supplier s, lineitem l1, lineitem l2, orders o, nation n "
    "WHERE s.suppkey = l1.suppkey AND o.orderkey = l1.orderkey "
    "AND o.orderstatus = 'F' AND l1.receiptdate > l1.commitdate "
    "AND l2.orderkey = l1.orderkey AND l2.suppkey <> l1.suppkey "
    "AND s.nationkey = n.nationkey AND n.name = 'SAUDI ARABIA' "
    "AND l1.quantity > 0 AND l2.quantity > 0 AND l1.linenumber >= 1 "
    "GROUP BY s.name",
)

# Q7's WHERE nests AND under OR (Figure 3's workload); 10 unique atoms.
Q7_NESTED = TpchQuery(
    "Q7", 10,
    "SELECT n1.name, n2.name, SUM(l.extendedprice) "
    "FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2 "
    "WHERE s.suppkey = l.suppkey AND o.orderkey = l.orderkey "
    "AND c.custkey = o.custkey AND s.nationkey = n1.nationkey "
    "AND c.nationkey = n2.nationkey "
    "AND ((n1.name = 'FRANCE' AND n2.name = 'GERMANY') "
    "OR (n1.name = 'GERMANY' AND n2.name = 'FRANCE')) "
    "AND l.shipdate >= 1096 "
    "GROUP BY n1.name, n2.name",
    nested=True,
)

CONJUNCTIVE_QUERIES = [Q4, Q3, Q10, Q9, Q5_SYNTH, Q5, Q8, Q21]
ALL_QUERIES = CONJUNCTIVE_QUERIES + [Q7_NESTED]
