"""Differential equivalence testing of queries over random instances.

This is the empirical counterpart of the solver-based checks: two queries
that Qr-Hint declares equivalent must return identical bags over every
randomly generated instance.  A counterexample instance is returned when
the queries differ, in the spirit of RATest/Cosette-style differencing.
"""

from __future__ import annotations

from repro.engine.datagen import DataGenerator
from repro.engine.executor import bag_equal, execute


def differential_check(query_a, query_b, catalog, trials=40, seed=0, max_rows=4):
    """Run both queries over random instances; return a counterexample or None.

    Returns ``None`` when no differentiating instance was found (evidence of
    equivalence), otherwise the first :class:`Database` on which the result
    bags differ.
    """
    generator = DataGenerator(catalog, seed=seed, max_rows=max_rows)
    for database in generator.instances(trials):
        if not bag_equal(execute(query_a, database), execute(query_b, database)):
            return database
    return None


def appear_equivalent(query_a, query_b, catalog, trials=40, seed=0):
    """Boolean convenience wrapper around :func:`differential_check`."""
    return differential_check(query_a, query_b, catalog, trials, seed) is None
