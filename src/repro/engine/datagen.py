"""Random database instance generation for differential testing.

Values are drawn from small shared pools (keyed by column name) so that
join conditions are frequently satisfied and random instances actually
differentiate inequivalent queries.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.catalog import SqlType
from repro.engine.database import Database

_DEFAULT_STRINGS = ["Amy", "Bob", "Cal", "Dan", "Eve"]


class DataGenerator:
    """Deterministic (seeded) random instance generator for a catalog."""

    def __init__(self, catalog, seed=0, max_rows=4, numeric_range=(0, 6),
                 string_pool=None):
        self.catalog = catalog
        self.random = random.Random(seed)
        self.max_rows = max_rows
        self.numeric_range = numeric_range
        self.string_pool = list(string_pool or _DEFAULT_STRINGS)

    def random_value(self, column):
        if column.type == SqlType.STRING:
            return self.random.choice(self.string_pool)
        if column.type == SqlType.BOOL:
            return self.random.random() < 0.5
        low, high = self.numeric_range
        value = self.random.randint(low, high)
        if column.type == SqlType.FLOAT and self.random.random() < 0.3:
            return Fraction(value * 2 + 1, 2)  # occasionally non-integral
        return Fraction(value)

    def random_instance(self):
        """Generate one random database instance."""
        tables = {}
        for table in self.catalog:
            num_rows = self.random.randint(0, self.max_rows)
            rows = [
                tuple(self.random_value(col) for col in table.columns)
                for _ in range(num_rows)
            ]
            tables[table.name] = rows
        return Database(self.catalog, tables)

    def instances(self, count):
        """Yield ``count`` random instances."""
        for _ in range(count):
            yield self.random_instance()
