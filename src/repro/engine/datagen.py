"""Random database instance generation for differential testing.

Values are drawn from small shared pools (keyed by column name) so that
join conditions are frequently satisfied and random instances actually
differentiate inequivalent queries.

Randomness is fully seed-driven end to end: the generator owns a
``random.Random(seed)`` (or a caller-supplied ``rng``), and both
:meth:`DataGenerator.random_value` and :meth:`DataGenerator.random_instance`
accept explicit overrides, so a specific instance or column fill can be
reproduced in isolation -- the witness subsystem relies on this to make
fallback fills deterministic across runs.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.catalog import SqlType
from repro.engine.database import Database

_DEFAULT_STRINGS = ["Amy", "Bob", "Cal", "Dan", "Eve"]


class DataGenerator:
    """Deterministic (seeded) random instance generator for a catalog."""

    def __init__(self, catalog, seed=0, max_rows=4, numeric_range=(0, 6),
                 string_pool=None, rng=None):
        self.catalog = catalog
        self.seed = seed
        self.random = rng if rng is not None else random.Random(seed)
        self.max_rows = max_rows
        self.numeric_range = numeric_range
        self.string_pool = list(string_pool or _DEFAULT_STRINGS)

    def random_value(self, column, rng=None):
        """A random value for ``column``, from ``rng`` or the shared stream."""
        rng = rng if rng is not None else self.random
        if column.type == SqlType.STRING:
            return rng.choice(self.string_pool)
        if column.type == SqlType.BOOL:
            return rng.random() < 0.5
        low, high = self.numeric_range
        value = rng.randint(low, high)
        if column.type == SqlType.FLOAT and rng.random() < 0.3:
            return Fraction(value * 2 + 1, 2)  # occasionally non-integral
        return Fraction(value)

    def random_instance(self, seed=None):
        """Generate one random database instance.

        With an explicit ``seed`` the instance is a pure function of
        ``(catalog, pools, seed)``, independent of how much of the shared
        stream was consumed before the call.
        """
        rng = self.random if seed is None else random.Random(seed)
        tables = {}
        for table in self.catalog:
            num_rows = rng.randint(0, self.max_rows)
            rows = [
                tuple(self.random_value(col, rng) for col in table.columns)
                for _ in range(num_rows)
            ]
            tables[table.name] = rows
        return Database(self.catalog, tables)

    def instances(self, count, seed=None):
        """Yield ``count`` random instances.

        With an explicit ``seed``, instance ``i`` is generated from the
        derived seed ``f"{seed}:{i}"``, so any single trial of a run can
        be regenerated without replaying the stream up to it.
        """
        for index in range(count):
            if seed is None:
                yield self.random_instance()
            else:
                yield self.random_instance(seed=f"{seed}:{index}")
