"""In-memory bag-semantics relational engine substrate."""

from repro.engine.database import Database
from repro.engine.datagen import DataGenerator
from repro.engine.diff import appear_equivalent, differential_check
from repro.engine.executor import (
    bag_equal,
    cross_product,
    execute,
    filtered_rows,
    grouped_rows,
    having_groups,
)

__all__ = [
    "Database",
    "DataGenerator",
    "appear_equivalent",
    "bag_equal",
    "cross_product",
    "differential_check",
    "execute",
    "filtered_rows",
    "grouped_rows",
    "having_groups",
]
