"""In-memory database instances for the relational engine.

Rows are dictionaries from lower-cased column names to Python values
(:class:`~fractions.Fraction` for numerics, ``str`` for strings).  Tables
are *bags*: duplicate rows are meaningful throughout (the paper's FROM
stage, Lemma 4.2, depends on bag semantics).
"""

from __future__ import annotations

from fractions import Fraction

from repro.catalog import SqlType


class Database:
    """A named collection of row bags conforming to a catalog."""

    def __init__(self, catalog, tables=None):
        self.catalog = catalog
        self.tables = {}
        for name, rows in (tables or {}).items():
            self.set_table(name, rows)

    def set_table(self, name, rows):
        table = self.catalog.table(name)
        if table is None:
            raise KeyError(f"table {name!r} not in catalog")
        normalized = []
        for row in rows:
            if isinstance(row, dict):
                values = [row[c.name] if c.name in row else row[c.name.lower()]
                          for c in table.columns]
            else:
                values = list(row)
            if len(values) != len(table.columns):
                raise ValueError(
                    f"row arity {len(values)} != {len(table.columns)} for {name}"
                )
            normalized.append(
                {
                    c.name.lower(): _coerce(v, c.type)
                    for c, v in zip(table.columns, values)
                }
            )
        self.tables[table.name.lower()] = normalized

    def rows(self, name):
        return self.tables.get(name.lower(), [])

    def __repr__(self):
        sizes = {name: len(rows) for name, rows in self.tables.items()}
        return f"Database({sizes})"


def _coerce(value, sql_type):
    if sql_type == SqlType.STRING:
        return str(value)
    if sql_type == SqlType.BOOL:
        return bool(value)
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("bool value for numeric column")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(value).limit_denominator(10**9)
    raise TypeError(f"cannot coerce {value!r} to {sql_type}")
