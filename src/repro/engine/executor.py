"""Bag-semantics execution of resolved queries.

Implements the logical execution flow of the paper (Section 3):
``F -> FW -> FWG -> FWGH -> SELECT``.  Intermediate results are exposed so
tests can check stage-level equivalences (``F(Q) == F(Q*)``,
``FW(Q) == FW(Q*)``, grouping partitions, ...), not just final outputs.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from repro.logic.evaluate import eval_formula, eval_term
from repro.logic.formulas import TRUE
from repro.logic.terms import AggCall


def cross_product(query, database):
    """``F(Q)``: the bag of joined environments over the FROM tables.

    Each environment maps ``alias.column`` to a value.  Environments are
    *streamed* (this is a generator): the cross product over k tables is
    |T1| x ... x |Tk| environments, and materializing it dominates memory
    on the TPC-H stress runs.  Only the per-table row lists are held.
    """
    per_alias = []
    for entry in query.from_entries:
        rows = database.rows(entry.table)
        alias_rows = [
            {f"{entry.alias}.{col}": value for col, value in row.items()}
            for row in rows
        ]
        per_alias.append(alias_rows)
    for combo in itertools.product(*per_alias):
        env = {}
        for part in combo:
            env.update(part)
        yield env


def filtered_rows(query, database):
    """``FW(Q)``: cross product filtered by the WHERE condition (streamed)."""
    return (
        env
        for env in cross_product(query, database)
        if eval_formula(query.where, env)
    )


def grouped_rows(query, database):
    """``FWG(Q)``: partition of FW(Q) by the GROUP BY expressions.

    Returns a list of (key, [envs]) pairs.  Queries with aggregation but no
    GROUP BY form a single group (key ``()``); non-aggregating queries put
    every row in its own group.
    """
    rows = filtered_rows(query, database)
    if not query.group_by:
        if _has_agg(query):
            rows = list(rows)
            return [((), rows)] if rows else []
        return [((i,), [env]) for i, env in enumerate(rows)]
    groups = {}
    for env in rows:
        key = tuple(eval_term(term, env) for term in query.group_by)
        groups.setdefault(key, []).append(env)
    return sorted(groups.items(), key=lambda kv: _sort_key(kv[0]))


def _has_agg(query):
    if query.having.has_aggregate():
        return True
    return any(term.has_aggregate() for term in query.select)


def _sort_key(values):
    return tuple(
        (0, float(v)) if isinstance(v, Fraction) else (1, str(v)) for v in values
    )


def _aggregate_value(agg, envs):
    if agg.func == "COUNT" and agg.arg is None:
        return Fraction(len(envs))
    values = [eval_term(agg.arg, env) for env in envs]
    if agg.distinct:
        seen = []
        for v in values:
            if v not in seen:
                seen.append(v)
        values = seen
    if agg.func == "COUNT":
        return Fraction(len(values))
    if not values:
        raise ValueError("aggregate over empty group")  # cannot happen: groups nonempty
    if agg.func == "SUM":
        return sum(values, Fraction(0))
    if agg.func == "AVG":
        return Fraction(sum(values, Fraction(0))) / len(values)
    if agg.func == "MIN":
        return min(values)
    if agg.func == "MAX":
        return max(values)
    raise ValueError(f"unknown aggregate {agg.func}")


def _group_env(query, envs):
    """Environment for HAVING/SELECT evaluation over one group."""
    env = dict(envs[0])  # group-by columns are constant within the group
    aggs = set(query.having.aggregates())
    for term in query.select:
        aggs |= term.aggregates()
    for agg in aggs:
        env[str(agg)] = _aggregate_value(agg, envs)
    return env


def having_groups(query, database):
    """``FWGH(Q)``: groups surviving the HAVING filter."""
    out = []
    for key, envs in grouped_rows(query, database):
        if query.is_spja and (query.group_by or _has_agg(query)):
            env = _group_env(query, envs)
            if query.having != TRUE and not eval_formula(query.having, env):
                continue
            out.append((key, envs, env))
        else:
            out.append((key, envs, envs[0]))
    return out


def execute(query, database):
    """Run the query; returns the result as a list (bag) of value tuples."""
    results = []
    if query.is_spja and (query.group_by or _has_agg(query)):
        for _, _, env in having_groups(query, database):
            results.append(tuple(eval_term(term, env) for term in query.select))
    else:
        for env in filtered_rows(query, database):
            results.append(tuple(eval_term(term, env) for term in query.select))
    if query.distinct:
        deduped = []
        for row in results:
            if row not in deduped:
                deduped.append(row)
        results = deduped
    return results


def bag_equal(rows_a, rows_b):
    """Multiset equality of result bags (ignoring row order)."""
    if len(rows_a) != len(rows_b):
        return False
    return sorted(map(_row_key, rows_a)) == sorted(map(_row_key, rows_b))


def _row_key(row):
    return tuple(
        (0, float(v)) if isinstance(v, Fraction) else (1, str(v)) for v in row
    )
