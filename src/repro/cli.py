"""Command-line interface: hint, witness, batch-grade, or serve.

Subcommands::

    repro hint --schema schema.json --target target.sql --working wrong.sql
    repro witness --schema schema.json --target target.sql --working wrong.sql
    repro grade-batch --schema schema.json --target target.sql \
                      --submissions subs.json --processes 4
    repro grade-batch --workload userstudy --question Q4 --count 200
    repro serve --port 8100 [--schema schema.json --target target.sql]
    repro journal [--url http://host:port] [-n 50]
    repro perfdiff --all --gate 0.5x

``hint`` is the default: invocations that start with a flag (the historic
one-shot interface, ``python -m repro --schema ... --working ...``) are
routed to it unchanged.  ``witness`` produces a tiny executor-verified
database instance on which the wrong and reference queries visibly
disagree.

Exit codes: ``0`` success, ``1`` differential verification failed (or no
witness found), ``2`` parse/resolution (or other pipeline) error.

The schema file maps table names to [name, type] column pairs::

    {"Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]}
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.catalog import Catalog
from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.errors import ReproError
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended

EXIT_OK = 0
EXIT_VERIFY_FAILED = 1
EXIT_ERROR = 2

COMMANDS = (
    "hint", "witness", "grade-batch", "corpus", "serve", "journal",
    "perfdiff",
)


def load_catalog(path):
    with open(path) as handle:
        spec = json.load(handle)
    try:
        return Catalog.from_spec(spec)
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"invalid schema {path}: {error}")


def _read_sql(args, file_attr, inline_attr, label):
    inline = getattr(args, inline_attr)
    if inline:
        return inline
    path = getattr(args, file_attr)
    if not path:
        raise ValueError(f"either --{label} or --{label}-sql is required")
    with open(path) as handle:
        return handle.read()


def _add_schema_target_args(parser, schema_required=True):
    parser.add_argument(
        "--schema", required=schema_required, help="schema JSON file"
    )
    parser.add_argument("--target", help="file with the reference query")
    parser.add_argument("--target-sql", help="reference query inline")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qr-Hint: actionable hints for fixing a wrong SQL query.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hint = sub.add_parser(
        "hint", help="hint one wrong query against a reference query (default)"
    )
    _add_schema_target_args(hint)
    hint.add_argument("--working", help="file with the wrong query")
    hint.add_argument("--working-sql", help="wrong query inline")
    hint.add_argument(
        "--show-fixes",
        action="store_true",
        help="also print the internal fixes (normally withheld from students)",
    )
    hint.add_argument(
        "--max-sites", type=int, default=2, help="repair-site cap (default 2)"
    )
    hint.add_argument(
        "--no-optimized",
        action="store_true",
        help="use plain DeriveFixes instead of DeriveFixesOPT",
    )
    hint.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify the repaired query against the target",
    )
    hint.add_argument(
        "--witness-text",
        action="store_true",
        help="when the queries differ, also generate a counterexample "
        "database and anchor the hints to it (\"on this database your "
        "query returns X; the reference returns Y\")",
    )
    hint.add_argument(
        "--trace",
        action="store_true",
        help="record spans for the whole run and print the indented span "
        "tree (pipeline stages, solver solves, theory rounds, witness "
        "generation) after the hints",
    )
    hint.add_argument(
        "--timeout-ms", type=float, default=None, metavar="N",
        help="time budget for the whole grading pipeline; on expiry the "
        "finished stages are reported exactly and the unfinished stage "
        "gets a coarse degraded hint instead of hanging",
    )
    hint.add_argument(
        "--solver-stats",
        action="store_true",
        help="print SAT/SMT solver counters (calls, cache hit-rate, learned "
        "clauses, propagations, restarts, clauses deleted, literals "
        "minimized, theory-cache hits, failed-assumption cores and their "
        "total size) after the run",
    )
    hint.set_defaults(func=cmd_hint)

    witness = sub.add_parser(
        "witness",
        help="produce a tiny counterexample database showing the two "
        "queries disagree",
    )
    _add_schema_target_args(witness)
    witness.add_argument("--working", help="file with the wrong query")
    witness.add_argument("--working-sql", help="wrong query inline")
    witness.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for unconstrained column fills and the fallback "
        "search (default 0; witnesses are deterministic per seed)",
    )
    witness.add_argument(
        "--trials", type=int, default=600,
        help="fallback differential-search budget (default 600)",
    )
    witness.add_argument(
        "--max-rows", type=int, default=3,
        help="per-table row cap on the emitted witness (default 3)",
    )
    witness.add_argument("--json", dest="json_out", help="write witness JSON here")
    witness.set_defaults(func=cmd_witness)

    batch = sub.add_parser(
        "grade-batch",
        help="grade a pile of submissions against one shared target",
    )
    _add_schema_target_args(batch, schema_required=False)
    batch.add_argument(
        "--submissions",
        help="submissions file: JSON list of SQL strings, or JSONL with "
        "one SQL string (or {\"sql\": ...} object) per line",
    )
    batch.add_argument(
        "--workload",
        choices=("userstudy",),
        help="generate submissions from a built-in workload instead of a file",
    )
    batch.add_argument(
        "--question", default="Q4",
        help="userstudy question id for --workload (default Q4)",
    )
    batch.add_argument(
        "--count", type=int, default=200,
        help="number of generated submissions for --workload (default 200)",
    )
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument(
        "--processes", type=int, default=None,
        help="worker processes (default: cpu count; 1 = serial)",
    )
    batch.add_argument(
        "--max-sites", type=int, default=2, help="repair-site cap (default 2)"
    )
    batch.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="treat a worker pool that makes no progress for SECONDS as "
        "hung and re-grade the unfinished forms on fresh workers "
        "(default: no hang detection; crash detection is always on)",
    )
    batch.add_argument(
        "--max-retries", type=int, default=2,
        help="isolated re-grade attempts per form after a worker crash "
        "or hang before recording a per-submission error (default 2)",
    )
    batch.add_argument(
        "--witness", action="store_true",
        help="attach an executor-verified counterexample to every wrong "
        "result (witness construction is sharded over the worker pool)",
    )
    batch.add_argument(
        "--show-hints", action="store_true",
        help="print the hint block for every submission",
    )
    batch.add_argument("--json", dest="json_out", help="write results JSON here")
    batch.set_defaults(func=cmd_grade_batch)

    corpus = sub.add_parser(
        "corpus",
        help="generate a ground-truth-labeled corpus of wrong queries and "
        "run it through the batch grader",
    )
    corpus.add_argument(
        "--schemas", default="all",
        help="comma-separated schema sources, or 'all' (default); see "
        "--list-schemas",
    )
    corpus.add_argument(
        "--per-query", type=int, default=10,
        help="mutation seeds per reference query (default 10)",
    )
    corpus.add_argument("--seed", type=int, default=0)
    corpus.add_argument(
        "--max-errors", type=int, default=2,
        help="maximum injected errors per entry (default 2)",
    )
    corpus.add_argument(
        "--processes", type=int, default=None,
        help="batch-grader worker processes (default: cpu count; 1 = serial)",
    )
    corpus.add_argument(
        "--max-sites", type=int, default=2, help="repair-site cap (default 2)"
    )
    corpus.add_argument(
        "--witness", action="store_true",
        help="also measure witness coverage on a subsample of flagged entries",
    )
    corpus.add_argument(
        "--witness-limit", type=int, default=40,
        help="witness-coverage subsample size (default 40)",
    )
    corpus.add_argument(
        "--generate-only", action="store_true",
        help="generate (and optionally --dump) without grading",
    )
    corpus.add_argument(
        "--dump", help="write the generated corpus as JSONL here"
    )
    corpus.add_argument(
        "--json", dest="json_out", help="write evaluation metrics JSON here"
    )
    corpus.add_argument(
        "--trace-jsonl", metavar="PATH",
        help="export one span tree per unique graded form as JSON lines "
        "(captured in the batch workers and re-parented)",
    )
    corpus.add_argument(
        "--list-schemas", action="store_true",
        help="list the bundled schema sources and exit",
    )
    corpus.set_defaults(func=cmd_corpus)

    serve = sub.add_parser("serve", help="run the HTTP hint service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100)
    serve.add_argument(
        "--schema", help="optionally preload an assignment from this schema"
    )
    serve.add_argument("--target", help="file with the preloaded target query")
    serve.add_argument("--target-sql", help="preloaded target query inline")
    serve.add_argument(
        "--assignment-id", default="default",
        help="id for the preloaded assignment (default: 'default')",
    )
    serve.add_argument(
        "--cache-file",
        help="JSON spill file for the preloaded assignment's artifact "
        "cache: loaded at startup (if present) and saved on shutdown, so "
        "canonical-form reports and witnesses survive restarts "
        "(requires --schema)",
    )
    serve.add_argument(
        "--cache-spill-interval", type=float, default=0.0, metavar="SECONDS",
        help="also spill the cache to --cache-file every SECONDS seconds "
        "in the background (atomic temp-file + rename writes), so a crash "
        "loses at most one interval of artifacts (0 disables; requires "
        "--cache-file)",
    )
    serve.add_argument(
        "--slow-ms", type=float, default=None, metavar="N",
        help="trace every request and log those slower than N ms to "
        "stderr together with their span tree",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="admit at most N concurrent work requests; excess load is "
        "shed with 503 + Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="let up to N shed-candidates wait briefly for a free slot "
        "before 503 (default 0; needs --max-inflight)",
    )
    serve.add_argument(
        "--queue-timeout", type=float, default=1.0, metavar="SECONDS",
        help="longest a queued request waits for a slot (default 1.0)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=None, metavar="SECONDS",
        help="socket timeout for reading a request; stalled clients get "
        "408 and their handler thread back (default: none)",
    )
    serve.add_argument(
        "--max-timeout-ms", type=float, default=None, metavar="N",
        help="cap (and default) for per-request timeout_ms grading "
        "budgets (default: uncapped, no default budget)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on shutdown, wait up to SECONDS for in-flight requests to "
        "finish before closing (default 10)",
    )
    serve.add_argument("--quiet", action="store_true", help="suppress access log")
    serve.set_defaults(func=cmd_serve)

    journal = sub.add_parser(
        "journal",
        help="dump the flight recorder (this process's, or a running "
        "server's via --url)",
    )
    journal.add_argument(
        "--url", metavar="BASE",
        help="fetch GET BASE/debug/journal from a running hint service "
        "instead of dumping this process's (empty) recorder",
    )
    journal.add_argument(
        "-n", type=int, default=None,
        help="only the most recent N events (default: all buffered)",
    )
    journal.add_argument(
        "--json", dest="json_out", action="store_true",
        help="print raw JSON events instead of the rendered lines",
    )
    journal.set_defaults(func=cmd_journal)

    perfdiff = sub.add_parser(
        "perfdiff",
        help="compare fresh benchmark runs against the committed "
        "BENCH_*.json files (the unified perf-regression sentinel)",
    )
    perfdiff.add_argument(
        "--all", action="store_true",
        help="check every registered benchmark",
    )
    perfdiff.add_argument(
        "--bench", action="append", default=[], metavar="NAME",
        help="benchmark to check (repeatable); see --list",
    )
    perfdiff.add_argument(
        "--gate", default="0.5x", metavar="RATIO",
        help="hard floor for gated higher-is-better metrics, e.g. 0.5x "
        "(default 0.5x)",
    )
    perfdiff.add_argument(
        "--ingest", action="append", default=[], metavar="BENCH_X.json",
        help="use this already-produced run file instead of re-running "
        "its benchmark (repeatable; the benchmark is inferred from the "
        "file name)",
    )
    perfdiff.add_argument(
        "--no-run", action="store_true",
        help="never re-run benchmarks; compare only the --ingest files",
    )
    perfdiff.add_argument(
        "--out-dir", metavar="DIR",
        help="keep the fresh benchmark JSONs here (default: a temp dir "
        "discarded after the comparison); CI uploads these as artifacts",
    )
    perfdiff.add_argument(
        "--json", dest="json_out", metavar="PATH",
        help="also write the full comparison report as JSON here",
    )
    perfdiff.add_argument(
        "--list", action="store_true",
        help="list the registered benchmarks and their metrics, then exit",
    )
    perfdiff.set_defaults(func=cmd_perfdiff)

    return parser


# ----------------------------------------------------------------------
# hint (the historic one-shot path)
# ----------------------------------------------------------------------


def _print_solver_stats(solver):
    snapshot = solver.stats_snapshot()
    print()
    print("Solver stats:")
    for key in sorted(snapshot):
        value = snapshot[key]
        if isinstance(value, float):
            print(f"  {key}: {value:.3f}")
        else:
            print(f"  {key}: {value}")


def cmd_hint(args):
    from contextlib import nullcontext

    from repro.obs import TRACER

    solver = Solver()
    trace_cm = TRACER.trace("hint") if args.trace else nullcontext()
    try:
        catalog = load_catalog(args.schema)
        target = parse_query_extended(
            _read_sql(args, "target", "target_sql", "target"), catalog
        )
        working = parse_query_extended(
            _read_sql(args, "working", "working_sql", "working"), catalog
        )
        deadline = None
        if args.timeout_ms is not None:
            if args.timeout_ms <= 0:
                print("error: --timeout-ms must be positive", file=sys.stderr)
                return EXIT_ERROR
            from repro.service.deadline import Deadline

            deadline = Deadline.after_ms(args.timeout_ms)
        with trace_cm as trace_handle:
            report = QrHint(
                catalog,
                target,
                working,
                max_sites=args.max_sites,
                optimized=not args.no_optimized,
                solver=solver,
                deadline=deadline,
            ).run()
            witness = None
            if args.witness_text and not report.all_passed:
                from repro.witness import generate_witness

                witness = generate_witness(
                    catalog, target, working, solver=solver, seed=0
                )
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    from repro.service.session import format_report

    code = EXIT_OK
    print(
        format_report(
            report,
            show_fixes=args.show_fixes,
            witness=witness,
            witness_text=args.witness_text,
        )
    )
    if report.degraded:
        print(f"(degraded: time budget exhausted in the "
              f"{report.degraded_stage} stage; rerun with a larger "
              f"--timeout-ms for an exact hint)")
    if args.verify and not report.all_passed and not report.degraded:
        ok = appear_equivalent(
            report.final_query, report.target_query, catalog, trials=60
        )
        print(f"Differential verification: {'PASS' if ok else 'FAIL'}")
        if not ok:
            code = EXIT_VERIFY_FAILED
    if args.trace:
        print()
        print(f"Trace ({trace_handle.trace_id}, "
              f"{trace_handle.duration_ms:.1f}ms):")
        for line in trace_handle.render():
            print(f"  {line}")
    # Stats are printed in exactly one place, whatever the exit path.
    if args.solver_stats:
        _print_solver_stats(solver)
    return code


# ----------------------------------------------------------------------
# witness
# ----------------------------------------------------------------------


def cmd_witness(args):
    from repro.witness import format_witness_lines, generate_witness, witness_to_dict

    try:
        catalog = load_catalog(args.schema)
        target = parse_query_extended(
            _read_sql(args, "target", "target_sql", "target"), catalog
        )
        working = parse_query_extended(
            _read_sql(args, "working", "working_sql", "working"), catalog
        )
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    witness = generate_witness(
        catalog,
        target,
        working,
        solver=Solver(),
        seed=args.seed,
        max_rows_per_table=args.max_rows,
        trials=args.trials,
    )
    if witness is None:
        print("No witness found: the queries agreed on every candidate "
              "instance (they may be equivalent).")
        return EXIT_VERIFY_FAILED
    print("\n".join(format_witness_lines(witness)))
    print(f"\nsource: {witness.source} "
          f"({'solver model' if witness.source == 'model' else 'guided differential search'}), "
          f"generated in {witness.elapsed:.3f}s")
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(witness_to_dict(witness), handle, indent=2)
        print(f"wrote {args.json_out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# grade-batch
# ----------------------------------------------------------------------


def _load_submissions(path):
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if stripped.startswith("["):
        items = json.loads(text)
    else:  # JSONL
        items = [json.loads(line) for line in text.splitlines() if line.strip()]
    submissions = []
    for item in items:
        if isinstance(item, str):
            submissions.append(item)
        elif isinstance(item, dict) and isinstance(item.get("sql"), str):
            submissions.append(item["sql"])
        else:
            raise ValueError(f"unsupported submission entry: {item!r}")
    return submissions


def cmd_grade_batch(args):
    from repro.service.batch import GradeError, grade_batch
    from repro.service.session import format_grade_lines

    if args.workload == "userstudy":
        from repro.workloads import dblp, userstudy

        catalog = dblp.catalog()
        question = next(
            (q for q in dblp.QUESTIONS if q.qid == args.question), None
        )
        if question is None:
            print(f"error: unknown userstudy question {args.question!r}",
                  file=sys.stderr)
            return EXIT_ERROR
        target_sql = question.correct_sql
        submissions = userstudy.submission_pool(
            question, count=args.count, seed=args.seed
        )
    else:
        if not args.schema or not args.submissions:
            print("error: grade-batch needs either --workload or "
                  "--schema/--target/--submissions", file=sys.stderr)
            return EXIT_ERROR
        try:
            catalog = load_catalog(args.schema)
            target_sql = _read_sql(args, "target", "target_sql", "target")
            submissions = _load_submissions(args.submissions)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_ERROR

    try:
        batch = grade_batch(
            catalog,
            target_sql,
            submissions,
            processes=args.processes,
            max_sites=args.max_sites,
            witness=args.witness,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
        )
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    stats = batch.stats()
    print(f"Graded {stats['submissions']} submissions "
          f"({stats['unique']} unique, {stats['errors']} errors) "
          f"in {stats['elapsed']:.2f}s "
          f"({stats['throughput']:.1f}/s, "
          f"cache hit-rate {stats['cache_hit_rate']:.0%})")
    recoveries = stats.get("recoveries") or {}
    if any(recoveries.values()):
        print("worker recoveries: "
              + ", ".join(f"{k}={v}" for k, v in recoveries.items() if v))
    if args.show_hints:
        for i, result in enumerate(batch.results):
            print(f"\n--- submission {i} ---")
            if isinstance(result, GradeError):
                print(f"error: {result.error}")
            else:
                print("\n".join(format_grade_lines(result)))
    if args.json_out:
        payload = {
            "stats": stats,
            "results": [
                {"error": r.error, "kind": r.kind}
                if isinstance(r, GradeError)
                else r.to_dict()
                for r in batch.results
            ],
        }
        with open(args.json_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.json_out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# corpus
# ----------------------------------------------------------------------


def cmd_corpus(args):
    from repro.corpus import CorpusGenerator, evaluate_corpus
    from repro.corpus.generator import stage_mix
    from repro.corpus.schemas import bundled_sources

    if args.list_schemas:
        for source in bundled_sources():
            print(f"{source.name}: {len(source.targets)} reference queries")
        return EXIT_OK

    schemas = None
    if args.schemas and args.schemas != "all":
        schemas = tuple(s.strip() for s in args.schemas.split(",") if s.strip())
    try:
        generator = CorpusGenerator(
            schemas=schemas, seed=args.seed, max_errors=args.max_errors
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    pool = generator.generate_pool(per_query=args.per_query)
    stage_counts = stage_mix(pool)
    schema_names = sorted({entry.schema for entry in pool})
    print(
        f"Generated {len(pool)} wrong queries across "
        f"{len(schema_names)} schema(s) "
        f"({generator.duplicates} duplicates dropped, "
        f"{generator.failures} seeds unusable)"
    )
    print("  stages: " + ", ".join(
        f"{stage} {count}" for stage, count in stage_counts.items()
    ))

    if args.dump:
        with open(args.dump, "w") as handle:
            for entry in pool:
                handle.write(json.dumps(entry.to_dict()) + "\n")
        print(f"wrote {args.dump}")
    if args.generate_only:
        return EXIT_OK
    if not pool:
        print("error: empty corpus", file=sys.stderr)
        return EXIT_ERROR

    result = evaluate_corpus(
        pool,
        schemas=schemas,
        processes=args.processes,
        max_sites=args.max_sites,
        witness=args.witness,
        witness_limit=args.witness_limit,
        trace_jsonl=args.trace_jsonl,
    )
    print(
        f"Graded {result.graded}/{result.total} "
        f"({result.errors} errors) in {result.grade_elapsed:.1f}s "
        f"({result.throughput:.2f}/s)"
    )
    print(
        f"  hint coverage {result.hint_coverage:.1%} "
        f"({result.benign} benign mutants) | "
        f"stage recall {result.stage_recall:.3f} | "
        f"exact stage match {result.stage_exact_rate:.1%}"
    )
    if args.witness:
        print(
            f"  witness coverage {result.witness_coverage:.1%} "
            f"({result.witness_found}/{result.witness_attempted} attempted, "
            f"{result.witness_elapsed:.1f}s)"
        )
    if args.trace_jsonl:
        print(f"wrote {args.trace_jsonl}")
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json_out}")
    return EXIT_OK


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------


def cmd_serve(args):
    import os

    from repro.service.server import HintService, serve

    service = HintService()
    session = None
    if args.schema:
        try:
            catalog = load_catalog(args.schema)
            target_sql = _read_sql(args, "target", "target_sql", "target")
            session = service.create_assignment(
                catalog, target_sql, assignment_id=args.assignment_id
            )
        except (ReproError, OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_ERROR
        print(f"preloaded assignment {session.assignment_id!r}")
    if args.cache_file:
        if session is None:
            print("error: --cache-file requires a preloaded assignment "
                  "(--schema/--target)", file=sys.stderr)
            return EXIT_ERROR
        if os.path.exists(args.cache_file):
            try:
                count = session.cache.load(args.cache_file)
            except (OSError, ValueError, KeyError, TypeError) as error:
                print(f"error: cannot load {args.cache_file}: {error}",
                      file=sys.stderr)
                return EXIT_ERROR
            print(f"restored {count} cached artifact(s) from {args.cache_file}")
    spiller = None
    if args.cache_spill_interval:
        if args.cache_spill_interval < 0:
            print("error: --cache-spill-interval must be positive",
                  file=sys.stderr)
            return EXIT_ERROR
        if not args.cache_file:
            print("error: --cache-spill-interval requires --cache-file",
                  file=sys.stderr)
            return EXIT_ERROR
        from repro.service.server import CacheSpiller

        spiller = CacheSpiller(
            session.cache, args.cache_file, args.cache_spill_interval
        )
    admission = None
    if args.max_inflight is not None:
        if args.max_inflight <= 0:
            print("error: --max-inflight must be positive", file=sys.stderr)
            return EXIT_ERROR
        from repro.service.server import AdmissionController

        admission = AdmissionController(
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            queue_timeout=args.queue_timeout,
        )
    code = serve(args.host, args.port, service, quiet=args.quiet,
                 spiller=spiller, slow_ms=args.slow_ms,
                 admission=admission, read_timeout=args.read_timeout,
                 max_timeout_ms=args.max_timeout_ms,
                 drain_timeout=args.drain_timeout)
    if args.cache_file and session is not None:
        count = session.cache.save(args.cache_file)
        print(f"saved {count} cached artifact(s) to {args.cache_file}")
    return code


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------


def cmd_journal(args):
    from repro.obs import JOURNAL

    if args.url:
        from urllib.error import URLError
        from urllib.request import urlopen

        url = args.url.rstrip("/") + "/debug/journal"
        if args.n is not None:
            url += f"?n={args.n}"
        try:
            with urlopen(url, timeout=10) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (URLError, OSError, ValueError) as error:
            print(f"error: cannot fetch {url}: {error}", file=sys.stderr)
            return EXIT_ERROR
        if args.json_out:
            print(json.dumps(payload, indent=2))
            return EXIT_OK
        stats = payload.get("journal", {})
        events = payload.get("events", [])
        print(
            f"journal @ {args.url}: {stats.get('size', len(events))} events "
            f"buffered (capacity {stats.get('capacity', '?')}, "
            f"{stats.get('dropped', 0)} dropped)"
        )
        for line in _render_events(events):
            print(line)
        return EXIT_OK

    if args.json_out:
        print(json.dumps(
            {"journal": JOURNAL.stats(), "events": JOURNAL.tail(args.n)},
            indent=2,
        ))
        return EXIT_OK
    stats = JOURNAL.stats()
    print(
        f"journal: {stats['size']} events buffered "
        f"(capacity {stats['capacity']}, {stats['dropped']} dropped)"
    )
    for line in JOURNAL.render(args.n):
        print(line)
    return EXIT_OK


def _render_events(events):
    """Render remote journal events with the Journal line format."""
    import time as _time

    lines = []
    for event in events:
        ts = _time.strftime(
            "%H:%M:%S", _time.localtime(event.get("ts", 0))
        ) + f".{int(event.get('ts', 0) * 1000) % 1000:03d}"
        fields = " ".join(
            f"{key}={event[key]}"
            for key in sorted(event)
            if key not in ("seq", "ts", "kind")
        )
        line = f"{event.get('seq', 0):>6}  {ts}  {event.get('kind', '?')}"
        if fields:
            line += f"  {fields}"
        lines.append(line)
    return lines


# ----------------------------------------------------------------------
# perfdiff
# ----------------------------------------------------------------------


def cmd_perfdiff(args):
    from repro.obs.baseline import (
        BENCHMARKS,
        infer_bench,
        parse_gate,
        perfdiff,
    )

    if args.list:
        for name, spec in BENCHMARKS.items():
            print(f"{name}: {spec.filename} -- {spec.note}")
            for metric in spec.metrics:
                gate_note = "gated" if metric.gated else "ungated"
                print(f"    {metric.path} ({metric.direction}, {gate_note})")
        return EXIT_OK

    try:
        gate = parse_gate(args.gate)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR

    benches = list(BENCHMARKS) if args.all else list(args.bench)
    fresh_docs = {}
    for path in args.ingest:
        try:
            bench = infer_bench(path)
            with open(path) as handle:
                fresh_docs[bench] = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_ERROR
    if not benches:
        benches = list(fresh_docs)
    if not benches:
        print("error: nothing to check; pass --all, --bench, or --ingest",
              file=sys.stderr)
        return EXIT_ERROR
    unknown = [b for b in benches if b not in BENCHMARKS]
    if unknown:
        print(f"error: unknown benchmark(s): {', '.join(unknown)} "
              f"(see --list)", file=sys.stderr)
        return EXIT_ERROR

    diff = perfdiff(
        benches,
        gate=gate,
        fresh_docs=fresh_docs,
        run=not args.no_run,
        out_dir=args.out_dir,
    )
    for line in diff.render():
        print(line)
    if args.json_out:
        pathlib.Path(args.json_out).parent.mkdir(parents=True, exist_ok=True)
        with open(args.json_out, "w") as handle:
            json.dump(diff.to_dict(), handle, indent=2)
        print(f"wrote {args.json_out}")
    return EXIT_VERIFY_FAILED if diff.failed else EXIT_OK


# ----------------------------------------------------------------------


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: flag-first invocations are the historic
    # one-shot interface and route to the ``hint`` subcommand.
    if argv and argv[0] not in COMMANDS and argv[0] not in ("-h", "--help"):
        argv.insert(0, "hint")
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
