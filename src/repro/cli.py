"""Command-line interface: hint a wrong query against a reference query.

Usage::

    python -m repro --schema schema.json --target target.sql --working wrong.sql
    python -m repro --schema schema.json --target-sql "SELECT ..." \
                    --working-sql "SELECT ..." --show-fixes

The schema file maps table names to [name, type] column pairs::

    {"Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]}
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.catalog import Catalog
from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.errors import ReproError
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended


def load_catalog(path):
    with open(path) as handle:
        spec = json.load(handle)
    return Catalog.from_spec(
        {table: [tuple(col) for col in columns] for table, columns in spec.items()}
    )


def _read_sql(args, file_attr, inline_attr, label):
    inline = getattr(args, inline_attr)
    if inline:
        return inline
    path = getattr(args, file_attr)
    if not path:
        raise SystemExit(f"either --{label} or --{label}-sql is required")
    with open(path) as handle:
        return handle.read()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Qr-Hint: actionable hints for fixing a wrong SQL query.",
    )
    parser.add_argument("--schema", required=True, help="schema JSON file")
    parser.add_argument("--target", help="file with the reference query")
    parser.add_argument("--target-sql", help="reference query inline")
    parser.add_argument("--working", help="file with the wrong query")
    parser.add_argument("--working-sql", help="wrong query inline")
    parser.add_argument(
        "--show-fixes",
        action="store_true",
        help="also print the internal fixes (normally withheld from students)",
    )
    parser.add_argument(
        "--max-sites", type=int, default=2, help="repair-site cap (default 2)"
    )
    parser.add_argument(
        "--no-optimized",
        action="store_true",
        help="use plain DeriveFixes instead of DeriveFixesOPT",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify the repaired query against the target",
    )
    parser.add_argument(
        "--solver-stats",
        action="store_true",
        help="print SAT/SMT solver counters (calls, cache hits, learned "
        "clauses, propagations) after the run",
    )
    return parser


def _print_solver_stats(solver):
    print()
    print("Solver stats:")
    for key in sorted(solver.stats):
        print(f"  {key}: {solver.stats[key]}")


def main(argv=None):
    args = build_parser().parse_args(argv)
    solver = Solver()
    try:
        catalog = load_catalog(args.schema)
        target = parse_query_extended(
            _read_sql(args, "target", "target_sql", "target"), catalog
        )
        working = parse_query_extended(
            _read_sql(args, "working", "working_sql", "working"), catalog
        )
        report = QrHint(
            catalog,
            target,
            working,
            max_sites=args.max_sites,
            optimized=not args.no_optimized,
            solver=solver,
        ).run()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if report.all_passed:
        print("The working query is already equivalent to the target.")
        if args.solver_stats:
            _print_solver_stats(solver)
        return 0

    for stage in report.stages:
        if stage.passed:
            continue
        print(f"[{stage.stage}]")
        for hint in stage.hints:
            print(f"  - {hint.message}")
            if args.show_fixes and hint.fix:
                print(f"    fix: {hint.site}  ->  {hint.fix}")
    print()
    print("Query after applying all repairs:")
    print(f"  {report.final_query.to_sql()}")
    if args.verify:
        ok = appear_equivalent(
            report.final_query, report.target_query, catalog, trials=60
        )
        print(f"Differential verification: {'PASS' if ok else 'FAIL'}")
        if not ok:
            if args.solver_stats:
                _print_solver_stats(solver)
            return 1
    if args.solver_stats:
        _print_solver_stats(solver)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
