"""End-to-end witness generation: model -> instance -> verify -> shrink.

:func:`generate_witness` turns a (target, working) query pair into a tiny
concrete database on which the two queries *visibly* disagree -- the
executable counterpart of a hint.  Two strategies run in order:

1. **solver-model path** -- when the FROM multisets match, the target is
   unified onto the working aliases and the single-row divergence formula
   (:mod:`repro.witness.divergence`) is handed to
   :meth:`~repro.solver.Solver.find_model`; the theory model is
   concretized into one row per alias.  This is what finds witnesses for
   selective predicates (``area = 'Systems'``) that random data
   essentially never satisfies.
2. **guided differential search** -- a seeded, constants-aware
   :class:`~repro.engine.datagen.DataGenerator` samples small instances
   until one differentiates the queries.  This covers multi-row-only
   divergences (``COUNT(*)`` vs ``COUNT(DISTINCT ...)``, grouping splits,
   FROM-multiset mismatches) that have no single-row model.

Every candidate is executor-verified (the result bags must differ) and
then greedily shrunk; a witness is only emitted if it fits the per-table
row cap, so everything the service returns is small enough to read.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from fractions import Fraction

from repro.core.table_mapping import unify_target
from repro.engine.database import Database
from repro.engine.executor import execute
from repro.errors import SolverLimitError
from repro.logic.formulas import conj
from repro.obs import JOURNAL, TRACER
from repro.solver import Solver
from repro.witness.divergence import divergence_formula, emits_single_row
from repro.witness.instance import build_instance, guided_generator
from repro.witness.shrink import shrink_instance
from repro.witness.verify import first_divergent_stage, results_differ

MAX_ROWS_PER_TABLE = 3


@dataclass(frozen=True)
class Witness:
    """A verified counterexample instance (frozen, cache- and pickle-safe).

    ``tables`` holds only the non-empty tables as ``(name, column_names,
    rows)`` with each row a value tuple; ``assignments`` lists the
    model-pinned ``alias.column = value`` cells (canonical alias
    namespace; the service remaps them to the submitter's aliases).
    """

    tables: tuple  # ((table, (col, ...), ((value, ...), ...)), ...)
    wrong_result: tuple  # result bag of the submitted query
    target_result: tuple  # result bag of the reference query
    stage: str  # earliest divergent artifact: FROM/WHERE/GROUP BY/HAVING/SELECT
    source: str  # "model" (solver-driven) | "search" (guided differential)
    assignments: tuple = ()
    elapsed: float = field(default=0.0, compare=False)

    @property
    def max_rows(self):
        return max((len(rows) for _, _, rows in self.tables), default=0)

    @property
    def total_rows(self):
        return sum(len(rows) for _, _, rows in self.tables)


def _json_value(value):
    if isinstance(value, Fraction):
        return int(value) if value.denominator == 1 else float(value)
    if isinstance(value, bool):
        return value
    return str(value)


def witness_to_dict(witness):
    """JSON-safe rendering (used by the HTTP API and ``--json``)."""
    return {
        "tables": [
            {
                "table": name,
                "columns": list(columns),
                "rows": [[_json_value(v) for v in row] for row in rows],
            }
            for name, columns, rows in witness.tables
        ],
        "wrong_result": [[_json_value(v) for v in row] for row in witness.wrong_result],
        "target_result": [[_json_value(v) for v in row] for row in witness.target_result],
        "stage": witness.stage,
        "source": witness.source,
        "assignments": list(witness.assignments),
        "elapsed": witness.elapsed,
    }


def _format_row(row):
    return "(" + ", ".join(
        str(v) if not isinstance(v, Fraction)
        else (str(int(v)) if v.denominator == 1 else str(float(v)))
        for v in row
    ) + ")"


def format_witness_lines(witness):
    """Human-readable rendering shared by the CLI and the hint text."""
    lines = [
        f"Counterexample instance ({witness.total_rows} row(s); "
        f"divergence first visible in {witness.stage}):"
    ]
    for name, columns, rows in witness.tables:
        lines.append(f"  {name}({', '.join(columns)})")
        for row in rows:
            lines.append(f"    {_format_row(row)}")
    wrong = ", ".join(_format_row(r) for r in witness.wrong_result)
    target = ", ".join(_format_row(r) for r in witness.target_result)
    lines.append(f"  your query returns:      {wrong or '(no rows)'}")
    lines.append(f"  reference query returns: {target or '(no rows)'}")
    return lines


def witness_divergence_sentence(witness):
    """One-sentence divergence summary used by witness-guided hint text."""
    wrong = ", ".join(_format_row(r) for r in witness.wrong_result)
    target = ", ".join(_format_row(r) for r in witness.target_result)
    return (
        f"On this database your query returns {wrong or '(no rows)'}; "
        f"the reference returns {target or '(no rows)'}."
    )


def remap_witness(witness, remap_text):
    """Rewrite the witness's alias-qualified strings via ``remap_text``."""
    return replace(
        witness,
        assignments=tuple(remap_text(a) for a in witness.assignments),
    )


def _value_alternatives(generator, column, value):
    """A few deterministic replacement values differing from ``value``."""
    if column.type.value == "STRING":
        return [p for p in generator.string_pool if p != value][:2]
    if column.type.value == "BOOL":
        return [not value]
    return [value + 1, value - 1]


def _augmented_candidates(base, generator):
    """Variants of ``base`` with one extra row.

    The extra row is an exact duplicate of an existing row, or a duplicate
    with a single column changed.  This is the deterministic bridge
    between the single-row model path and blind random search: starting
    from a model where *both* queries emit (joins and selective constants
    already satisfied), one extra near-duplicate row is exactly what
    multiplicity-style divergences need -- ``COUNT(*)`` vs ``COUNT
    (DISTINCT ...)``, grouping splits, duplicate-sensitive DISTINCT.
    """
    catalog = base.catalog
    for table_name in sorted(base.tables):
        rows = base.tables[table_name]
        table = catalog.table(table_name)
        for row in rows:
            extras = [dict(row)]
            for column in table.columns:
                name = column.name.lower()
                for alt in _value_alternatives(generator, column, row[name]):
                    mutated = dict(row)
                    mutated[name] = alt
                    extras.append(mutated)
            for extra in extras:
                candidate = {
                    t: list(r) + ([extra] if t == table_name else [])
                    for t, r in base.tables.items()
                }
                yield Database(catalog, candidate)


def generate_witness(
    catalog,
    target,
    working,
    *,
    solver=None,
    seed=0,
    max_rows_per_table=MAX_ROWS_PER_TABLE,
    trials=600,
):
    """A verified, shrunk :class:`Witness` for the pair, or None.

    Deterministic for a fixed ``(target, working, seed)``: the solver
    model search is order-independent and the fallback generator is
    seeded.  Returns None when the queries appear equivalent (no
    divergence surfaced) or when no witness fits ``max_rows_per_table``.
    """
    with TRACER.span("witness.generate") as span:
        witness = _generate_witness(
            catalog,
            target,
            working,
            solver=solver,
            seed=seed,
            max_rows_per_table=max_rows_per_table,
            trials=trials,
        )
        span.set(
            found=witness is not None,
            source=witness.source if witness is not None else None,
        )
        return witness


def _generate_witness(
    catalog,
    target,
    working,
    *,
    solver,
    seed,
    max_rows_per_table,
    trials,
):
    start = time.perf_counter()
    solver = solver or Solver()

    unified = None
    if target.tables_multiset() == working.tables_multiset():
        try:
            unified, _ = unify_target(target, working, catalog)
        except ValueError:
            unified = None
    exec_target = unified if unified is not None else target

    def diverges(database):
        return results_differ(working, exec_target, database)

    def shrunk_under_cap(candidate):
        """Shrink a diverging candidate; None if it still busts the cap."""
        shrunk = shrink_instance(candidate, diverges)
        if any(
            len(rows) > max_rows_per_table for rows in shrunk.tables.values()
        ):
            return None
        return shrunk

    chosen = None
    source = None
    assignments = ()
    if unified is not None:
        try:
            model = solver.find_model(divergence_formula(working, unified))
        except SolverLimitError:
            model = None
        if model is not None:
            candidate, model_assignments = build_instance(
                catalog, (working, unified), model, seed=seed
            )
            if diverges(candidate):
                shrunk = shrunk_under_cap(candidate)
                if shrunk is not None:
                    chosen, source, assignments = (
                        shrunk, "model", model_assignments
                    )
    if chosen is None and unified is not None:
        # Model-seeded augmentation: concretize a model on which BOTH
        # queries emit, then look for a one-extra-row perturbation that
        # splits them (multiplicity/grouping divergences have no
        # single-row model but are usually one near-duplicate row away).
        try:
            both = solver.find_model(
                conj(emits_single_row(working), emits_single_row(unified))
            )
        except SolverLimitError:
            both = None
        if both is not None:
            base, base_assignments = build_instance(
                catalog, (working, unified), both, seed=seed
            )
            cross_product_size = 1
            for entry in working.from_entries:
                cross_product_size *= max(1, len(base.rows(entry.table)))
            if cross_product_size <= 1024:  # keep per-candidate executions cheap
                generator = guided_generator(
                    catalog, (working, unified), seed=seed,
                    max_rows=max_rows_per_table,
                )
                for candidate in itertools.islice(
                    _augmented_candidates(base, generator), 64
                ):
                    if diverges(candidate):
                        shrunk = shrunk_under_cap(candidate)
                        if shrunk is None:
                            continue
                        chosen, source, assignments = (
                            shrunk, "model", base_assignments
                        )
                        break
    if chosen is None:
        # The search generator draws at most max_rows_per_table rows per
        # table, so its shrunk candidates always fit the cap.
        JOURNAL.record(
            "witness.fallback",
            trials=trials,
            unified=unified is not None,
        )
        generator = guided_generator(
            catalog, (working, exec_target), seed=seed,
            max_rows=max_rows_per_table,
        )
        for candidate in generator.instances(trials, seed=seed):
            if diverges(candidate):
                chosen = shrink_instance(candidate, diverges)
                source = "search"
                break
    if chosen is None:
        return None

    stage = (
        first_divergent_stage(working, unified, chosen)
        if unified is not None
        else "FROM"
    )
    wrong_result = execute(working, chosen)
    target_result = execute(exec_target, chosen)
    tables = []
    for name in sorted(chosen.tables):
        rows = chosen.tables[name]
        if not rows:
            continue
        table = catalog.table(name)
        tables.append(
            (
                table.name,
                tuple(column.name for column in table.columns),
                tuple(
                    tuple(row[column.name.lower()] for column in table.columns)
                    for row in rows
                ),
            )
        )
    return Witness(
        tables=tuple(tables),
        wrong_result=tuple(tuple(row) for row in wrong_result),
        target_result=tuple(tuple(row) for row in target_result),
        stage=stage,
        source=source,
        assignments=assignments,
        elapsed=time.perf_counter() - start,
    )
