"""Executor-based verification of witness instances.

A witness is only emitted after the relational engine confirms it: the
working and target queries are both *run* on the instance and their
result bags must differ.  When the two queries share an alias namespace
the verifier additionally attributes the divergence to the earliest
pipeline artifact that differs, matching the stage ladder of the paper:
row membership for WHERE (``FW``), group partitioning for GROUP BY
(``FWG``), surviving groups for HAVING (``FWGH``), and output tuples for
SELECT.
"""

from __future__ import annotations

from fractions import Fraction

from repro.engine.executor import (
    bag_equal,
    execute,
    filtered_rows,
    grouped_rows,
    having_groups,
)


def _value_key(value):
    if isinstance(value, Fraction):
        return (0, float(value))
    return (1, str(value))


def _env_key(env):
    return tuple(sorted((name, _value_key(value)) for name, value in env.items()))


def results_differ(working, target, database):
    """True iff the two queries' result bags differ on ``database``."""
    return not bag_equal(execute(working, database), execute(target, database))


def _partition_key(query, database):
    """The grouping partition as a comparable multiset of env multisets."""
    return sorted(
        tuple(sorted(_env_key(env) for env in envs))
        for _, envs in grouped_rows(query, database)
    )


def _survivor_key(query, database):
    """The HAVING-surviving partition, same shape as the grouping key."""
    return sorted(
        tuple(sorted(_env_key(env) for env in envs))
        for _, envs, _ in having_groups(query, database)
    )


def first_divergent_stage(working, target, database):
    """Earliest stage artifact on which the queries differ.

    Requires a shared alias namespace (unify the target first).  Returns
    ``"WHERE"``, ``"GROUP BY"``, ``"HAVING"``, or ``"SELECT"``; callers
    label FROM-multiset mismatches themselves (the namespaces cannot be
    unified in that case).
    """
    fw_working = sorted(_env_key(env) for env in filtered_rows(working, database))
    fw_target = sorted(_env_key(env) for env in filtered_rows(target, database))
    if fw_working != fw_target:
        return "WHERE"
    if _partition_key(working, database) != _partition_key(target, database):
        return "GROUP BY"
    if _survivor_key(working, database) != _survivor_key(target, database):
        return "HAVING"
    return "SELECT"
