"""Single-row divergence formulas for witness extraction.

The solver-driven witness path looks for a *single-row* counterexample:
one tuple per FROM alias such that, on the resulting tiny instance, the
working and target queries visibly disagree.  Over a single row every
aggregate collapses to a scalar (``COUNT(*) = 1``, ``SUM(e) = MIN(e) =
MAX(e) = AVG(e) = e``), grouping is irrelevant (there is exactly one
group either way), and ``DISTINCT`` is a no-op -- so the full SPJA
divergence condition becomes a quantifier-free formula over the row
variables that the SMT layer can produce a model for directly:

    emits(Q)  :=  WHERE(Q) AND HAVING(Q)[single-row]
    diverge   :=  (emits(Q) XOR emits(Q*))
                  OR (emits(Q) AND emits(Q*) AND SELECT rows differ)

Divergences that *need* several rows (``COUNT(*)`` vs ``COUNT(DISTINCT
...)``, grouping splits, duplicate multiplicities) have no single-row
model; those fall through to the guided differential search in
:mod:`repro.witness.build`.
"""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    Not,
    Or,
    conj,
    disj,
    neg,
)
from repro.logic.terms import AggCall, Arith, Const, Neg


def single_row_term(term):
    """Specialize a term to the one-row-per-group case.

    ``COUNT`` of anything is 1; ``SUM``/``AVG``/``MIN``/``MAX`` equal
    their argument evaluated at the single row.
    """
    if isinstance(term, AggCall):
        if term.func == "COUNT":
            return Const.of(1)
        return single_row_term(term.arg)
    if isinstance(term, Arith):
        return Arith(term.op, single_row_term(term.left), single_row_term(term.right))
    if isinstance(term, Neg):
        return Neg(single_row_term(term.child))
    return term


def single_row_formula(formula):
    """Apply :func:`single_row_term` to both sides of every atom."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Comparison):
        return Comparison(
            formula.op,
            single_row_term(formula.left),
            single_row_term(formula.right),
        )
    if isinstance(formula, Not):
        return Not(single_row_formula(formula.child))
    if isinstance(formula, (And, Or)):
        return type(formula)(
            tuple(single_row_formula(c) for c in formula.operands)
        )
    raise TypeError(f"not a formula: {formula!r}")


def emits_single_row(query):
    """The condition under which a lone cross-product row reaches SELECT."""
    return conj(query.where, single_row_formula(query.having))


def divergence_formula(working, target):
    """A formula whose models are single-row counterexamples.

    Both queries must share one alias namespace (the caller unifies the
    target onto the working aliases first).  A model assigns values to the
    ``alias.column`` variables of one row per alias; on that row exactly
    one query emits, or both emit visibly different SELECT tuples.
    """
    emits_working = emits_single_row(working)
    emits_target = emits_single_row(target)
    branches = [
        conj(emits_working, neg(emits_target)),
        conj(emits_target, neg(emits_working)),
    ]
    if len(working.select) != len(target.select):
        # Different output arity: any commonly emitted row already differs.
        branches.append(conj(emits_working, emits_target))
        return disj(*branches)
    differences = []
    comparable = True
    for working_term, target_term in zip(working.select, target.select):
        w_term = single_row_term(working_term)
        t_term = single_row_term(target_term)
        if w_term == t_term:
            continue
        if w_term.type.is_numeric != t_term.type.is_numeric:
            comparable = False  # mixed types: common emission always differs
            break
        differences.append(Comparison("<>", w_term, t_term))
    if not comparable:
        branches.append(conj(emits_working, emits_target))
    elif differences:
        branches.append(conj(emits_working, emits_target, disj(*differences)))
    return disj(*branches)
