"""Counterexample witness subsystem: tiny databases that *show* the bug.

Qr-Hint's hints assert semantic divergence ("your WHERE is not equivalent
to the reference's") without demonstrating it.  This package materializes
the divergence: the satisfying models the DPLL(T) loop computes anyway
are concretized into tiny database instances -- a handful of rows -- on
which the wrong and reference queries return visibly different results.
Every witness is executor-verified and greedily shrunk before it is
emitted, so each hint becomes an executable, checkable artifact.

* :mod:`repro.witness.divergence` -- single-row divergence formulas
  (aggregates collapsed to scalars) for the solver-model path.
* :mod:`repro.witness.instance`  -- theory model -> concrete tuples, with
  seeded, constants-aware random fills for unconstrained columns.
* :mod:`repro.witness.verify`    -- runs both queries through the engine
  and attributes the divergence to the earliest differing stage artifact.
* :mod:`repro.witness.shrink`    -- greedy tuple dropping under the
  divergence invariant (target: at most 3 rows per table).
* :mod:`repro.witness.build`     -- the orchestrator and the frozen
  :class:`~repro.witness.build.Witness` artifact the service layer caches.
"""

from repro.witness.build import (
    MAX_ROWS_PER_TABLE,
    Witness,
    format_witness_lines,
    generate_witness,
    remap_witness,
    witness_divergence_sentence,
    witness_to_dict,
)
from repro.witness.divergence import divergence_formula, emits_single_row
from repro.witness.instance import build_instance, guided_generator
from repro.witness.shrink import shrink_instance
from repro.witness.verify import first_divergent_stage, results_differ

__all__ = [
    "MAX_ROWS_PER_TABLE",
    "Witness",
    "build_instance",
    "divergence_formula",
    "emits_single_row",
    "first_divergent_stage",
    "format_witness_lines",
    "generate_witness",
    "guided_generator",
    "remap_witness",
    "results_differ",
    "shrink_instance",
    "witness_divergence_sentence",
    "witness_to_dict",
]
