"""Greedy witness minimization.

Drops one tuple at a time -- largest tables first, so self-join fodder
shrinks before anything else -- re-running the divergence check after
every removal and keeping only removals that preserve it.  The loop
restarts after any successful removal because dropping a tuple can
unlock removals that were previously load-bearing (a cross-product
partner disappears).  Terminates at a local minimum: no single remaining
tuple can be removed without the two queries agreeing again.
"""

from __future__ import annotations

from repro.engine.database import Database


def shrink_instance(database, diverges):
    """Smallest instance reachable by single-row removals.

    ``diverges`` is a predicate over :class:`Database`; it must hold for
    ``database`` and keeps holding for the returned instance.
    """
    catalog = database.catalog
    rows = {name: list(table_rows) for name, table_rows in database.tables.items()}

    changed = True
    while changed:
        changed = False
        for name in sorted(rows, key=lambda n: (-len(rows[n]), n)):
            index = 0
            while index < len(rows[name]):
                candidate_rows = {
                    table: (
                        table_rows[:index] + table_rows[index + 1:]
                        if table == name
                        else list(table_rows)
                    )
                    for table, table_rows in rows.items()
                }
                if diverges(Database(catalog, candidate_rows)):
                    rows[name].pop(index)
                    changed = True
                else:
                    index += 1
    return Database(catalog, rows)
