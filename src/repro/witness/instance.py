"""Concretize theory models into tiny database instances.

The builder turns a :class:`~repro.solver.TheoryModel` into one row per
FROM alias: constrained columns take their theory value (Fractions from
the arithmetic solver, strings from the string solver), unconstrained
columns are filled by a *seeded* :class:`~repro.engine.datagen.DataGenerator`
so witnesses are reproducible run to run.  The same constants-aware
generator also powers the differential fallback search: its value pools
are widened with every literal appearing in either query, without which
random instances essentially never satisfy selective predicates like
``area = 'Systems'`` and the search cannot observe a divergence.
"""

from __future__ import annotations

from repro.catalog import SqlType
from repro.engine.database import Database
from repro.engine.datagen import _DEFAULT_STRINGS, DataGenerator
from repro.logic.terms import Const, Var


def query_constants(queries):
    """Collect the string and numeric literals mentioned by ``queries``.

    Returns ``(strings, numerics)`` in first-seen order (deterministic).
    """
    strings, numerics = [], []
    seen_strings, seen_numerics = set(), set()

    def walk(term):
        if isinstance(term, Const):
            if term.vtype == SqlType.STRING:
                value = str(term.value)
                if value not in seen_strings:
                    seen_strings.add(value)
                    strings.append(value)
            elif term.vtype.is_numeric and term.value not in seen_numerics:
                seen_numerics.add(term.value)
                numerics.append(term.value)
        for child in term.children():
            walk(child)

    for query in queries:
        for formula in (query.where, query.having):
            for atom in formula.atoms():
                walk(atom.left)
                walk(atom.right)
        for term in list(query.group_by) + list(query.select):
            walk(term)
    return strings, numerics


def guided_generator(catalog, queries, seed=0, max_rows=3):
    """A seeded generator whose pools cover the queries' own literals.

    String pools start from the queries' string constants (so equality and
    LIKE predicates are satisfiable by random draws) and numeric draws span
    a window around the queries' numeric constants.
    """
    strings, numerics = query_constants(queries)
    pool = strings + [s for s in _DEFAULT_STRINGS[:2] if s not in strings]
    bounds = sorted(int(n) for n in numerics)
    numeric_range = (bounds[0] - 2, bounds[-1] + 2) if bounds else (0, 6)
    return DataGenerator(
        catalog,
        seed=seed,
        max_rows=max_rows,
        numeric_range=numeric_range,
        string_pool=pool,
    )


def build_instance(catalog, queries, model, seed=0):
    """Concrete rows realizing ``model``, one per *distinguishable* alias.

    ``queries`` must share one alias namespace.  Aliases of the same table
    whose model-pinned cells agree share one physical row: the single-row
    divergence formula reasons about one cross-product combination, and
    collapsing compatible self-join aliases keeps the materialized
    instance faithful to it (e.g. ``COUNT(DISTINCT x)`` stays 1 instead
    of picking up a second random row).  Returns ``(database,
    assignments)`` where ``assignments`` lists the pinned cells as
    readable ``alias.column = value`` strings (canonical namespace -- the
    service layer remaps them into the submitter's aliases).
    """
    aliases = {}
    for query in queries:
        for entry in query.from_entries:
            aliases.setdefault(entry.alias, entry.table)

    generator = guided_generator(catalog, queries, seed=seed)
    tables = {}  # lower table name -> list of {column: pinned value} rows
    assignments = []
    for alias, table_name in aliases.items():
        table = catalog.table(table_name)
        pinned = {}
        for column in table.columns:
            name = column.name.lower()
            value = None
            if model is not None:
                value = model.value(Var(f"{alias}.{name}", column.type))
            if value is not None:
                assignments.append(f"{alias}.{name} = {Const.of(value)}")
                pinned[name] = value
        rows = tables.setdefault(table.name.lower(), [])
        for row in rows:
            if all(row.get(k, v) == v for k, v in pinned.items()):
                row.update(pinned)  # compatible: share the physical row
                break
        else:
            rows.append(pinned)

    concrete = {}
    for table_name, rows in tables.items():
        table = catalog.table(table_name)
        concrete[table_name] = [
            {
                column.name.lower(): row.get(
                    column.name.lower(), generator.random_value(column)
                )
                for column in table.columns
            }
            for row in rows
        ]
    return Database(catalog, concrete), tuple(assignments)
