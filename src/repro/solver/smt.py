"""Lazy DPLL(T) SMT facade: the paper's three Z3 primitives.

Implements ``IsSatisfiable`` / ``IsUnSatisfiable`` / ``IsEquiv`` (Section 3)
over quantifier-free SQL predicates, optionally under a *context* -- a set
of formulas conjoined as background assertions, exactly as the paper's
subscripted primitives ``IsSatisfiable_C`` etc.

Architecture: the propositional abstraction of the input is Tseitin-encoded
and handed to the DPLL core; each propositional model is checked against
the combined theory (linear arithmetic + strings); theory conflicts are
minimized (deletion-based core shrinking) and fed back as blocking clauses.
This is complete for the linear-rational fragment and sound-for-UNSAT
everywhere, which is the guarantee Qr-Hint's correctness requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SolverLimitError
from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    Formula,
    Not,
    Or,
    conj,
    iff,
    implies,
    neg,
)
from repro.logic.terms import Term
from repro.obs import TRACER
from repro.service.faults import FAULTS
from repro.solver.atoms import CanonicalLiteral, canonicalize
from repro.solver.sat import SatSolver
from repro.solver.theory import check_literals, find_model as theory_find_model
from repro.solver.tseitin import CnfBuilder, assert_skeleton

SAT = "sat"
UNSAT = "unsat"

_MISS = object()  # cache-miss sentinel (None is not a legal verdict)

# Long-lived sessions hold one Solver for their whole lifetime; the theory
# caches flush wholesale at these sizes so sustained grading traffic cannot
# grow them without bound (a flush only costs re-derivation, not soundness).
_THEORY_CACHE_LIMIT = 200_000
_CORE_CACHE_LIMIT = 50_000


def _block_literals(sat, atom_vars, literals, lemma):
    """Add the clause forbidding ``literals`` to the SAT core.

    ``lemma=True`` streams it into the deletable learned database -- right
    for theory conflicts, which are *implied* and re-derivable for free
    through the theory/core caches if reduction ever drops them.  Blocks
    that are not theory-implied (e.g. a model whose value extraction
    failed) must pass ``lemma=False`` to stay permanent.
    """
    clause = [
        -(atom_vars[atom]) if positive else atom_vars[atom]
        for atom, positive in literals
    ]
    if lemma:
        sat.add_learned_clause(clause)
    else:
        sat.add_clause(clause)


@dataclass
class TheoryModel:
    """A satisfying assignment surfaced through :meth:`Solver.find_model`.

    The stable model-snapshot shape is three layers deep, mirroring how the
    DPLL(T) loop builds it: the SAT core's decision trail yields ``atoms``
    (canonical theory atom -> asserted polarity), and the theory solvers
    concretize those literals into ``values`` (base term -> Fraction/str).
    ``complete`` is False when opaque atoms (non-linear arithmetic, exotic
    operands) were abstracted away -- the valuation then satisfies every
    non-opaque literal but carries no guarantee for the opaque ones, so
    consumers must verify end to end (the witness verifier does).
    """

    atoms: dict  # Atom -> bool polarity in the accepted propositional model
    values: dict = field(default_factory=dict)  # Term -> Fraction | str
    complete: bool = True

    def value(self, term, default=None):
        return self.values.get(term, default)

    def env(self):
        """The valuation keyed by term string form.

        Matches :func:`repro.logic.evaluate.eval_term`'s environment
        convention (``Var`` -> its name, ``AggCall`` -> its rendered call),
        so ``eval_formula(formula, model.env())`` re-checks the model when
        every variable of ``formula`` is constrained.
        """
        return {str(term): value for term, value in self.values.items()}


class Solver:
    """Reusable SMT solver with memoized primitive calls."""

    def __init__(self, max_conflicts=50_000):
        self.max_conflicts = max_conflicts
        #: Optional cooperative :class:`repro.service.deadline.Deadline`.
        #: Set by the request layer before a grade, cleared after; polled
        #: once per DPLL(T) round by :meth:`_checkpoint`.
        self.deadline = None
        self._sat_cache = {}
        self._theory_cache = {}
        self._core_cache = {}  # frozenset(literals) -> shrunk core tuple
        self.stats = {
            "sat_calls": 0,
            "theory_calls": 0,
            "cache_hits": 0,
            "theory_cache_hits": 0,
            "learned_clauses": 0,
            "propagations": 0,
            "conflicts": 0,
            "restarts": 0,
            "clauses_deleted": 0,
            "literals_minimized": 0,
            "unsat_cores": 0,
            "unsat_core_literals": 0,
            "chrono_backtracks": 0,
            "saved_trail_literals": 0,
            "core_pruned_subtrees": 0,
        }

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats_snapshot(self):
        """A point-in-time copy of the counters plus the cache hit-rate.

        Long-lived sessions and batch workers diff two snapshots to report
        per-request deltas instead of process-lifetime totals.
        """
        snapshot = dict(self.stats)
        lookups = snapshot["cache_hits"] + snapshot["sat_calls"]
        snapshot["cache_hit_rate"] = (
            snapshot["cache_hits"] / lookups if lookups else 0.0
        )
        return snapshot

    def reset_stats(self):
        """Zero the counters and drop the per-lifetime theory caches.

        The memoized primitive verdicts (``_sat_cache``) are kept -- they
        are pure functions of the formula.  The theory-literal and
        shrunk-core caches are dropped eagerly here; in steady state they
        are also flushed automatically at ``_THEORY_CACHE_LIMIT`` /
        ``_CORE_CACHE_LIMIT`` entries, so long-lived services stay bounded
        without calling this.
        """
        for key in self.stats:
            self.stats[key] = 0
        self._theory_cache.clear()
        self._core_cache.clear()

    def _checkpoint(self):
        """Cooperative poll run once per DPLL(T) round.

        Raises :class:`~repro.service.deadline.DeadlineExceeded` when the
        attached deadline (if any) has expired, and services the
        ``solver.slow`` fault point when fault injection is active.  Both
        guards are plain attribute checks, so the no-deadline no-fault
        production path pays two loads per round.
        """
        deadline = self.deadline
        if deadline is not None:
            deadline.check("solver")
        if FAULTS.enabled:
            FAULTS.sleep("solver.slow")

    # ------------------------------------------------------------------
    # Public primitives
    # ------------------------------------------------------------------

    def is_satisfiable(self, formula, context=()):
        """True iff ``context AND formula`` is satisfiable (definitive)."""
        return self._check(formula, context) == SAT

    def is_unsatisfiable(self, formula, context=()):
        """True iff ``context AND formula`` is unsatisfiable (definitive)."""
        return self._check(formula, context) == UNSAT

    def is_valid(self, formula, context=()):
        """True iff ``formula`` holds in every model of ``context``."""
        return self.is_unsatisfiable(neg(formula), context)

    def entails(self, antecedent, consequent, context=()):
        """True iff ``antecedent => consequent`` under ``context``."""
        return self.is_valid(implies(antecedent, consequent), context)

    def is_equiv(self, left, right, context=()):
        """Paper primitive ``IsEquiv``: formula or value-expression equality."""
        if isinstance(left, Term) and isinstance(right, Term):
            return self.terms_equal(left, right, context)
        return self.is_valid(iff(left, right), context)

    def terms_equal(self, left, right, context=()):
        """True iff value expressions are equal in every model of context."""
        if left == right:
            return True
        if left.type.is_numeric != right.type.is_numeric:
            return False
        return self.is_unsatisfiable(Comparison("<>", left, right), context)

    def in_bound(self, lower, formula, upper, context=()):
        """True iff ``lower => formula`` and ``formula => upper``."""
        return self.entails(lower, formula, context) and self.entails(
            formula, upper, context
        )

    def find_model(self, formula, context=(), max_attempts=32):
        """A :class:`TheoryModel` of ``context AND formula``, or None.

        Runs the same lazy DPLL(T) loop as the decision primitives but, on
        a theory-consistent propositional model, asks the theory solvers to
        concretize the literal conjunction into term values.  Models whose
        concretization fails (e.g. rational-only solutions the integer
        tightening cannot rule out, or exotic string pattern combinations)
        are blocked and the search continues, up to ``max_attempts`` such
        rejections; None therefore means "no model surfaced", which is
        weaker than UNSAT whenever opaque atoms or extraction limits are in
        play.  Results are deterministic per formula (a fresh SAT core is
        built per call; only the memoized theory-literal cache is shared).
        """
        if not TRACER.enabled:  # keep the production path span-free
            return self._find_model_impl(formula, context, max_attempts)
        with TRACER.span("solver.find_model") as span:
            model = self._find_model_impl(formula, context, max_attempts)
            span.set(found=model is not None)
            return model

    def _find_model_impl(self, formula, context, max_attempts):
        goal = conj(*context, formula)
        self.stats["sat_calls"] += 1
        atom_vars = {}
        sat = SatSolver()
        builder = CnfBuilder(sink=sat.add_clause)
        skeleton = self._abstract(goal, atom_vars, builder)
        if skeleton is False:
            return None
        if skeleton is True:
            return TheoryModel(atoms={}, values={}, complete=True)

        assert_skeleton(skeleton, builder)
        sat.ensure_vars(builder.num_vars)
        var_to_atom = {var: atom for atom, var in atom_vars.items()}
        atom_var_order = sorted(var_to_atom)
        attempts = 0
        try:
            for _ in range(self.max_conflicts):
                self._checkpoint()
                model = sat.solve()
                if model is None:
                    return None
                literals = tuple(
                    (var_to_atom[var], model[var]) for var in atom_var_order
                )
                if self._theory_round(sat, atom_vars, literals):
                    extracted = theory_find_model(literals)
                    if extracted is not None:
                        values, complete = extracted
                        return TheoryModel(
                            atoms=dict(literals),
                            values=dict(values),
                            complete=complete,
                        )
                    attempts += 1
                    if attempts >= max_attempts:
                        return None
                    # An extraction failure is NOT theory-implied (the
                    # model is theory-consistent); a deletable block could
                    # be dropped by DB reduction and the identical model
                    # would resurface, burning the attempts budget.  Block
                    # it permanently.
                    _block_literals(sat, atom_vars, literals, lemma=False)
            raise SolverLimitError("exceeded conflict budget")
        finally:
            self._absorb_sat_stats(sat.stats)

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------

    def _check(self, formula, context):
        key = (formula, tuple(context))
        if key in self._sat_cache:
            self.stats["cache_hits"] += 1
            return self._sat_cache[key]
        result = self._solve(conj(*context, formula))
        self._sat_cache[key] = result
        return result

    def _solve(self, formula):
        if not TRACER.enabled:  # keep the production path span-free
            return self._solve_impl(formula)
        with TRACER.span("solver.solve") as span:
            result = self._solve_impl(formula)
            span.set(result=result)
            return result

    def _solve_impl(self, formula):
        self.stats["sat_calls"] += 1
        atom_vars = {}  # Atom -> int propositional var
        sat = SatSolver()
        # Stream Tseitin clauses straight into the SAT core: no buffered
        # clause list, and the core's watch lists are built exactly once.
        builder = CnfBuilder(sink=sat.add_clause)
        skeleton = self._abstract(formula, atom_vars, builder)
        if skeleton is True:
            return SAT
        if skeleton is False:
            return UNSAT

        assert_skeleton(skeleton, builder)
        sat.ensure_vars(builder.num_vars)

        var_to_atom = {var: atom for atom, var in atom_vars.items()}
        atom_var_order = sorted(var_to_atom)
        try:
            # One persistent incremental solver for the whole DPLL(T) loop:
            # each theory-conflict clause is added in place, and the next
            # solve() reuses the watch lists, every clause learned so far,
            # and the saved phases (so successive models differ minimally
            # and most theory checks hit the literal cache).
            for _ in range(self.max_conflicts):
                self._checkpoint()
                model = sat.solve()
                if model is None:
                    return UNSAT
                literals = tuple(
                    (var_to_atom[var], model[var]) for var in atom_var_order
                )
                if self._theory_round(sat, atom_vars, literals):
                    return SAT
            raise SolverLimitError("exceeded conflict budget")
        finally:
            self._absorb_sat_stats(sat.stats)

    def _absorb_sat_stats(self, sat_stats):
        """Fold one SAT core's counters into this facade's statistics."""
        stats = self.stats
        stats["learned_clauses"] += sat_stats["learned_clauses"]
        stats["propagations"] += sat_stats["propagations"]
        stats["conflicts"] += sat_stats["conflicts"]
        stats["restarts"] += sat_stats["restarts"]
        stats["clauses_deleted"] += sat_stats["deleted_clauses"]
        stats["literals_minimized"] += sat_stats["minimized_literals"]
        # Failed-assumption cores (incremental feasibility sessions): the
        # pair gives the count and total size, hence the mean core size.
        stats["unsat_cores"] += sat_stats["assumption_cores"]
        stats["unsat_core_literals"] += sat_stats["core_literals"]
        # Enumeration-path counters from the chronological engine.
        stats["chrono_backtracks"] += sat_stats["chrono_backtracks"]
        stats["saved_trail_literals"] += sat_stats["saved_trail_literals"]

    def _theory_round(self, sat, atom_vars, literals):
        """One theory-lemma round of the DPLL(T) loop.

        Checks the propositional model's literal conjunction against the
        theory; on conflict the minimized core is blocked as a deletable
        lemma.  Returns True iff the model was theory-consistent.  The
        traced variant records one ``solver.theory_round`` span per round;
        the production path (no active trace) stays span-free.
        """
        if not TRACER.enabled:
            if self._theory_ok(literals):
                return True
            core = self._shrink_core(literals)
            _block_literals(sat, atom_vars, core, lemma=True)
            return False
        with TRACER.span("solver.theory_round") as span:
            span.set(literals=len(literals))
            if self._theory_ok(literals):
                span.set(consistent=True)
                return True
            core = self._shrink_core(literals)
            span.set(consistent=False, core=len(core))
            _block_literals(sat, atom_vars, core, lemma=True)
            return False

    def _theory_ok(self, literals):
        key = frozenset(literals)
        cached = self._theory_cache.get(key, _MISS)
        if cached is not _MISS:
            self.stats["theory_cache_hits"] += 1
            return cached
        self.stats["theory_calls"] += 1
        result = check_literals(literals)
        if len(self._theory_cache) >= _THEORY_CACHE_LIMIT:
            self._theory_cache.clear()  # bound long-lived service growth
        self._theory_cache[key] = result
        return result

    def _shrink_core(self, literals, max_stall=8):
        """Deletion-based minimization of an inconsistent literal set.

        Literals are dropped longest-payload-first: complex atoms are the
        least likely to be essential to the conflict, so trying them first
        shrinks the core fastest.  Once ``max_stall`` consecutive deletion
        attempts fail the core has (almost certainly) stopped shrinking and
        we accept it, cutting theory calls on large conflicts; any
        inconsistent superset is still a sound blocking clause.

        Shrunk cores are memoized per literal set (``_core_cache``), so a
        conflict rediscovered after its lemma was deleted from the learned
        database -- or re-hit by an incremental feasibility session -- pays
        no theory calls the second time.
        """
        core = list(literals)
        if len(core) > 24:  # too costly to shrink; block the full assignment
            return core
        key = frozenset(literals)
        cached = self._core_cache.get(key)
        if cached is not None:
            return list(cached)
        core.sort(key=lambda literal: len(str(literal[0])), reverse=True)
        i = 0
        stall = 0
        while i < len(core):
            candidate = core[:i] + core[i + 1:]
            if candidate and not self._theory_ok(tuple(candidate)):
                core = candidate
                stall = 0
            else:
                i += 1
                stall += 1
                if stall >= max_stall:
                    break
        if len(self._core_cache) >= _CORE_CACHE_LIMIT:
            self._core_cache.clear()  # bound long-lived service growth
        self._core_cache[key] = tuple(core)
        return core

    def feasibility_session(self, atoms, context=()):
        """An incremental feasibility oracle over a fixed atom universe.

        Returns a :class:`FeasibilitySession` that answers "is this
        polarity assignment of a prefix of ``atoms`` consistent with
        ``context``?" through *one* persistent SAT core solved under
        assumptions.  Consecutive queries that share a prefix (the shape
        of MinFix's truth-table DFS) reuse the kept trail, and every
        theory lemma learned for one prefix prunes all later ones.
        """
        return FeasibilitySession(self, atoms, context)

    def _abstract(self, formula, atom_vars, builder):
        """Build a Tseitin skeleton, abstracting atoms to variables.

        Returns the skeleton, or a bool if the formula is constant.
        """
        if isinstance(formula, BoolConst):
            return formula.value
        if isinstance(formula, Comparison):
            canonical = canonicalize(formula)
            if isinstance(canonical, bool):
                return canonical
            assert isinstance(canonical, CanonicalLiteral)
            var = atom_vars.get(canonical.atom)
            if var is None:
                var = builder.new_var()
                atom_vars[canonical.atom] = var
            return ("lit", var if canonical.positive else -var)
        if isinstance(formula, Not):
            child = self._abstract(formula.child, atom_vars, builder)
            if isinstance(child, bool):
                return not child
            return ("not", child)
        if isinstance(formula, (And, Or)):
            is_and = isinstance(formula, And)
            children = []
            for operand in formula.operands:
                child = self._abstract(operand, atom_vars, builder)
                if isinstance(child, bool):
                    if child != is_and:
                        return child  # short-circuit
                    continue
                children.append(child)
            if not children:
                return is_and
            if len(children) == 1:
                return children[0]
            return ("and" if is_and else "or", children)
        raise TypeError(f"not a formula: {formula!r}")


class FeasibilitySession:
    """Incremental DPLL(T) feasibility of literal prefixes (see
    :meth:`Solver.feasibility_session`).

    The context skeleton is Tseitin-encoded once into a single persistent
    :class:`SatSolver`; each query solves it under assumptions fixing the
    polarities of the prefix atoms.  Theory conflicts are minimized
    through the owning :class:`Solver` (sharing its literal/core caches)
    and streamed back as deletable lemmas, so they persist for -- and
    prune -- every later query of the DFS.
    """

    def __init__(self, solver, atoms, context):
        self._solver = solver
        self._sat = SatSolver()
        builder = CnfBuilder(sink=self._sat.add_clause)
        atom_vars = {}
        skeleton = solver._abstract(conj(*context), atom_vars, builder)
        self._context_false = skeleton is False
        if not isinstance(skeleton, bool):
            assert_skeleton(skeleton, builder)
        # One propositional literal (or constant) per mapping atom; atoms
        # shared with the context reuse its variables.
        self._atom_lits = []
        for atom in atoms:
            lit = solver._abstract(atom, atom_vars, builder)
            if isinstance(lit, bool):
                self._atom_lits.append(lit)
            else:
                self._atom_lits.append(lit[1])  # ("lit", +/-var)
        self._sat.ensure_vars(builder.num_vars)
        self._var_to_atom = {var: atom for atom, var in atom_vars.items()}
        self._atom_vars = atom_vars
        self._order = sorted(self._var_to_atom)
        self._stats_baseline = dict(self._sat.stats)
        #: After a False ``feasible_prefix`` answer: a tuple of
        #: ``(atom_index, wanted_bit)`` pairs such that fixing just those
        #: polarities is already infeasible (empty tuple when the context
        #: alone is), or None when no core is available.  Callers use it
        #: to skip whole DFS subtrees a core already refutes.
        self.last_core = None

    def feasible_prefix(self, assignment, length):
        """Is ``atoms[i] == bit i of assignment`` (i < length) consistent?"""
        if not TRACER.enabled:  # keep the production path span-free
            return self._feasible_prefix_impl(assignment, length)
        with TRACER.span("solver.feasible_prefix") as span:
            feasible = self._feasible_prefix_impl(assignment, length)
            span.set(length=length, feasible=feasible)
            return feasible

    def _feasible_prefix_impl(self, assignment, length):
        if self._context_false:
            self.last_core = ()
            return False
        assumptions = []
        lit_index = {}
        for i in range(length):
            lit = self._atom_lits[i]
            want = bool(assignment & (1 << i))
            if isinstance(lit, bool):
                if lit != want:
                    # The atom is a constant of the other sign: that one
                    # bit is the whole explanation.
                    self.last_core = ((i, want),)
                    return False
                continue
            sat_lit = lit if want else -lit
            assumptions.append(sat_lit)
            lit_index.setdefault(sat_lit, (i, want))
        solver = self._solver
        sat = self._sat
        var_to_atom = self._var_to_atom
        atom_vars = self._atom_vars
        solver.stats["sat_calls"] += 1
        try:
            for _ in range(solver.max_conflicts):
                solver._checkpoint()
                model = sat.solve(assumptions)
                if model is None:
                    # Read the failed-assumption core off the final
                    # implication graph and map it back to atom indices:
                    # every assumption came from the prefix, so the
                    # lookup is total.
                    core = sat.unsat_core()
                    self.last_core = (
                        tuple(lit_index[a] for a in core)
                        if core is not None
                        else None
                    )
                    return False
                literals = tuple(
                    (var_to_atom[var], model[var]) for var in self._order
                )
                if solver._theory_round(sat, atom_vars, literals):
                    return True
            raise SolverLimitError("exceeded conflict budget")
        finally:
            snapshot = dict(sat.stats)
            delta = {
                key: snapshot[key] - self._stats_baseline[key]
                for key in snapshot
            }
            self._stats_baseline = snapshot
            solver._absorb_sat_stats(delta)


_DEFAULT_SOLVER = Solver()


def default_solver():
    """Process-wide shared solver (shares caches across the pipeline)."""
    return _DEFAULT_SOLVER


def is_satisfiable(formula, context=()):
    return default_solver().is_satisfiable(formula, context)


def is_unsatisfiable(formula, context=()):
    return default_solver().is_unsatisfiable(formula, context)


def is_equiv(left, right, context=()):
    return default_solver().is_equiv(left, right, context)
