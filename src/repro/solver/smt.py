"""Lazy DPLL(T) SMT facade: the paper's three Z3 primitives.

Implements ``IsSatisfiable`` / ``IsUnSatisfiable`` / ``IsEquiv`` (Section 3)
over quantifier-free SQL predicates, optionally under a *context* -- a set
of formulas conjoined as background assertions, exactly as the paper's
subscripted primitives ``IsSatisfiable_C`` etc.

Architecture: the propositional abstraction of the input is Tseitin-encoded
and handed to the DPLL core; each propositional model is checked against
the combined theory (linear arithmetic + strings); theory conflicts are
minimized (deletion-based core shrinking) and fed back as blocking clauses.
This is complete for the linear-rational fragment and sound-for-UNSAT
everywhere, which is the guarantee Qr-Hint's correctness requires.
"""

from __future__ import annotations

from repro.errors import SolverLimitError
from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    Formula,
    Not,
    Or,
    conj,
    iff,
    implies,
    neg,
)
from repro.logic.terms import Term
from repro.solver.atoms import CanonicalLiteral, canonicalize
from repro.solver.sat import SatSolver
from repro.solver.theory import check_literals
from repro.solver.tseitin import CnfBuilder, assert_skeleton

SAT = "sat"
UNSAT = "unsat"


class Solver:
    """Reusable SMT solver with memoized primitive calls."""

    def __init__(self, max_conflicts=50_000):
        self.max_conflicts = max_conflicts
        self._sat_cache = {}
        self._theory_cache = {}
        self.stats = {
            "sat_calls": 0,
            "theory_calls": 0,
            "cache_hits": 0,
            "learned_clauses": 0,
            "propagations": 0,
        }

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats_snapshot(self):
        """A point-in-time copy of the counters plus the cache hit-rate.

        Long-lived sessions and batch workers diff two snapshots to report
        per-request deltas instead of process-lifetime totals.
        """
        snapshot = dict(self.stats)
        lookups = snapshot["cache_hits"] + snapshot["sat_calls"]
        snapshot["cache_hit_rate"] = (
            snapshot["cache_hits"] / lookups if lookups else 0.0
        )
        return snapshot

    def reset_stats(self):
        """Zero the counters (the result caches themselves are kept)."""
        for key in self.stats:
            self.stats[key] = 0

    # ------------------------------------------------------------------
    # Public primitives
    # ------------------------------------------------------------------

    def is_satisfiable(self, formula, context=()):
        """True iff ``context AND formula`` is satisfiable (definitive)."""
        return self._check(formula, context) == SAT

    def is_unsatisfiable(self, formula, context=()):
        """True iff ``context AND formula`` is unsatisfiable (definitive)."""
        return self._check(formula, context) == UNSAT

    def is_valid(self, formula, context=()):
        """True iff ``formula`` holds in every model of ``context``."""
        return self.is_unsatisfiable(neg(formula), context)

    def entails(self, antecedent, consequent, context=()):
        """True iff ``antecedent => consequent`` under ``context``."""
        return self.is_valid(implies(antecedent, consequent), context)

    def is_equiv(self, left, right, context=()):
        """Paper primitive ``IsEquiv``: formula or value-expression equality."""
        if isinstance(left, Term) and isinstance(right, Term):
            return self.terms_equal(left, right, context)
        return self.is_valid(iff(left, right), context)

    def terms_equal(self, left, right, context=()):
        """True iff value expressions are equal in every model of context."""
        if left == right:
            return True
        if left.type.is_numeric != right.type.is_numeric:
            return False
        return self.is_unsatisfiable(Comparison("<>", left, right), context)

    def in_bound(self, lower, formula, upper, context=()):
        """True iff ``lower => formula`` and ``formula => upper``."""
        return self.entails(lower, formula, context) and self.entails(
            formula, upper, context
        )

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------

    def _check(self, formula, context):
        key = (formula, tuple(context))
        if key in self._sat_cache:
            self.stats["cache_hits"] += 1
            return self._sat_cache[key]
        result = self._solve(conj(*context, formula))
        self._sat_cache[key] = result
        return result

    def _solve(self, formula):
        self.stats["sat_calls"] += 1
        atom_vars = {}  # Atom -> int propositional var
        sat = SatSolver()
        # Stream Tseitin clauses straight into the SAT core: no buffered
        # clause list, and the core's watch lists are built exactly once.
        builder = CnfBuilder(sink=sat.add_clause)
        skeleton = self._abstract(formula, atom_vars, builder)
        if skeleton is True:
            return SAT
        if skeleton is False:
            return UNSAT

        assert_skeleton(skeleton, builder)
        sat.ensure_vars(builder.num_vars)

        var_to_atom = {var: atom for atom, var in atom_vars.items()}
        atom_var_order = sorted(var_to_atom)
        try:
            # One persistent incremental solver for the whole DPLL(T) loop:
            # each theory-conflict clause is added in place, and the next
            # solve() reuses the watch lists, every clause learned so far,
            # and the saved phases (so successive models differ minimally
            # and most theory checks hit the literal cache).
            for _ in range(self.max_conflicts):
                model = sat.solve()
                if model is None:
                    return UNSAT
                literals = tuple(
                    (var_to_atom[var], model[var]) for var in atom_var_order
                )
                if self._theory_ok(literals):
                    return SAT
                core = self._shrink_core(literals)
                sat.add_clause(
                    [
                        -(atom_vars[atom]) if positive else atom_vars[atom]
                        for atom, positive in core
                    ]
                )
            raise SolverLimitError("exceeded conflict budget")
        finally:
            self.stats["learned_clauses"] += sat.stats["learned_clauses"]
            self.stats["propagations"] += sat.stats["propagations"]

    def _theory_ok(self, literals):
        key = frozenset(literals)
        if key in self._theory_cache:
            return self._theory_cache[key]
        self.stats["theory_calls"] += 1
        result = check_literals(literals)
        self._theory_cache[key] = result
        return result

    def _shrink_core(self, literals, max_stall=8):
        """Deletion-based minimization of an inconsistent literal set.

        Literals are dropped longest-payload-first: complex atoms are the
        least likely to be essential to the conflict, so trying them first
        shrinks the core fastest.  Once ``max_stall`` consecutive deletion
        attempts fail the core has (almost certainly) stopped shrinking and
        we accept it, cutting theory calls on large conflicts; any
        inconsistent superset is still a sound blocking clause.
        """
        core = list(literals)
        if len(core) > 24:  # too costly to shrink; block the full assignment
            return core
        core.sort(key=lambda literal: len(str(literal[0])), reverse=True)
        i = 0
        stall = 0
        while i < len(core):
            candidate = core[:i] + core[i + 1:]
            if candidate and not self._theory_ok(tuple(candidate)):
                core = candidate
                stall = 0
            else:
                i += 1
                stall += 1
                if stall >= max_stall:
                    break
        return core

    def _abstract(self, formula, atom_vars, builder):
        """Build a Tseitin skeleton, abstracting atoms to variables.

        Returns the skeleton, or a bool if the formula is constant.
        """
        if isinstance(formula, BoolConst):
            return formula.value
        if isinstance(formula, Comparison):
            canonical = canonicalize(formula)
            if isinstance(canonical, bool):
                return canonical
            assert isinstance(canonical, CanonicalLiteral)
            var = atom_vars.get(canonical.atom)
            if var is None:
                var = builder.new_var()
                atom_vars[canonical.atom] = var
            return ("lit", var if canonical.positive else -var)
        if isinstance(formula, Not):
            child = self._abstract(formula.child, atom_vars, builder)
            if isinstance(child, bool):
                return not child
            return ("not", child)
        if isinstance(formula, (And, Or)):
            is_and = isinstance(formula, And)
            children = []
            for operand in formula.operands:
                child = self._abstract(operand, atom_vars, builder)
                if isinstance(child, bool):
                    if child != is_and:
                        return child  # short-circuit
                    continue
                children.append(child)
            if not children:
                return is_and
            if len(children) == 1:
                return children[0]
            return ("and" if is_and else "or", children)
        raise TypeError(f"not a formula: {formula!r}")


_DEFAULT_SOLVER = Solver()


def default_solver():
    """Process-wide shared solver (shares caches across the pipeline)."""
    return _DEFAULT_SOLVER


def is_satisfiable(formula, context=()):
    return default_solver().is_satisfiable(formula, context)


def is_unsatisfiable(formula, context=()):
    return default_solver().is_unsatisfiable(formula, context)


def is_equiv(left, right, context=()):
    return default_solver().is_equiv(left, right, context)
