"""Linear arithmetic theory solver (Fourier-Motzkin elimination).

Decides satisfiability of conjunctions of linear constraints
``expr (= | <= | <) 0`` plus disequalities ``expr <> 0`` over rational
variables, with *integer tightening* (``e < 0`` with integral ``e`` over
INT-typed terms becomes ``e <= -1``) recovering the integer-domain
inferences the paper relies on (e.g. ``A > 100  =>  MAX(A) >= 101``).

Beyond the yes/no decision, :func:`find_model` extracts a concrete
satisfying assignment (base term -> :class:`~fractions.Fraction`) by
recording the elimination order and back-substituting: each eliminated
variable's surviving constraints are evaluated under the partial
assignment to a numeric interval, and a value inside the interval is
picked (an integer whenever the term is INT-typed and the interval
contains one).  The witness subsystem turns these assignments into
concrete database tuples.

Over the rationals the procedure is a complete decision procedure for this
fragment; disequalities are handled exactly via the convexity argument: a
consistent system of inequalities together with disequalities ``e_i <> 0``
is satisfiable iff no single ``e_i = 0`` is entailed (an affine subspace
over an infinite field is never a finite union of proper subspaces).
Over the integers the procedure is sound for UNSAT (never reports UNSAT
for a satisfiable system) which is the direction Qr-Hint's correctness
depends on.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from repro.logic.linear import LinExpr

EQ = "="
LE = "<="
LT = "<"


class Constraint:
    """A linear constraint ``expr rel 0``."""

    __slots__ = ("expr", "rel")

    def __init__(self, expr, rel):
        self.expr = expr
        self.rel = rel

    def __repr__(self):
        return f"{self.expr} {self.rel} 0"

    def tightened(self):
        """Integer tightening: strict integral constraints become <=."""
        if self.rel != LT:
            return self
        expr = self.expr
        if not expr.coeffs or not expr.all_int_typed():
            return self
        denom = lcm(
            expr.constant.denominator, *(c.denominator for _, c in expr.coeffs)
        )
        scaled = expr.scale(denom)
        if not scaled.is_integral():
            return self
        # scaled < 0 over integers  <=>  scaled <= -1  <=>  scaled + 1 <= 0
        return Constraint(scaled.add(LinExpr.of_const(1)), LE)


def _substitute(expr, var, replacement):
    """Replace ``var`` in ``expr`` by the LinExpr ``replacement``."""
    coeffs = expr.coeff_dict()
    coeff = coeffs.pop(var, Fraction(0))
    base = LinExpr.build(coeffs, expr.constant)
    if coeff == 0:
        return base
    return base.add(replacement.scale(coeff))


def _check_constant(constraint):
    """Evaluate a variable-free constraint; True if it holds."""
    value = constraint.expr.constant
    if constraint.rel == EQ:
        return value == 0
    if constraint.rel == LE:
        return value <= 0
    return value < 0


def is_satisfiable(constraints, disequalities=()):
    """Decide a conjunction of constraints and disequalities.

    ``constraints`` is an iterable of :class:`Constraint`;
    ``disequalities`` an iterable of :class:`LinExpr` (meaning ``expr <> 0``).
    Returns True (satisfiable) or False.
    """
    constraints = [c.tightened() for c in constraints]
    if not _feasible(constraints):
        return False
    for diseq in disequalities:
        if diseq.is_constant:
            if diseq.constant == 0:
                return False
            continue
        # The system forces diseq = 0 iff both strict sides are infeasible.
        low = _feasible(constraints + [Constraint(diseq, LT)])
        if low:
            continue
        high = _feasible(constraints + [Constraint(diseq.negate(), LT)])
        if not high:
            return False
    return True


def _feasible(constraints):
    """Fourier-Motzkin feasibility of a system of (in)equalities."""
    equalities = [c for c in constraints if c.rel == EQ]
    inequalities = [c for c in constraints if c.rel != EQ]

    # Gaussian elimination on equalities.
    while equalities:
        eq = equalities.pop()
        if eq.expr.is_constant:
            if eq.expr.constant != 0:
                return False
            continue
        var, coeff = eq.expr.coeffs[0]
        # var = -(rest) / coeff
        rest = LinExpr.build(
            {t: c for t, c in eq.expr.coeffs if t != var}, eq.expr.constant
        )
        replacement = rest.scale(Fraction(-1) / coeff)
        equalities = [
            Constraint(_substitute(e.expr, var, replacement), EQ) for e in equalities
        ]
        inequalities = [
            Constraint(_substitute(i.expr, var, replacement), i.rel)
            for i in inequalities
        ]

    # Re-tighten after substitution (it may have changed integrality).
    inequalities = [c.tightened() for c in inequalities]
    return _fm(inequalities)


def _fm(inequalities):
    """Fourier-Motzkin elimination over pure inequalities."""
    pending = list(inequalities)
    while True:
        constants = [c for c in pending if c.expr.is_constant]
        for c in constants:
            if not _check_constant(c):
                return False
        pending = _dedupe([c for c in pending if not c.expr.is_constant])
        if not pending:
            return True
        var = _pick_variable(pending)
        lowers, uppers, others = [], [], []
        for c in pending:
            coeff = dict(c.expr.coeffs).get(var, Fraction(0))
            if coeff == 0:
                others.append(c)
            elif coeff > 0:
                uppers.append((c, coeff))  # coeff*var + rest rel 0 -> upper bound
            else:
                lowers.append((c, coeff))
        combined = []
        for up_c, up_coeff in uppers:
            for low_c, low_coeff in lowers:
                # up: var <= -rest_up/up_coeff ; low: var >= -rest_low/low_coeff
                expr = up_c.expr.scale(-low_coeff).add(low_c.expr.scale(up_coeff))
                rel = LT if (up_c.rel == LT or low_c.rel == LT) else LE
                combined.append(Constraint(expr, rel).tightened())
        pending = others + combined


def _pick_variable(constraints):
    """Choose the variable whose elimination creates the fewest constraints."""
    occur = {}
    for c in constraints:
        for t, coeff in c.expr.coeffs:
            pos, negc = occur.get(t, (0, 0))
            if coeff > 0:
                occur[t] = (pos + 1, negc)
            else:
                occur[t] = (pos, negc + 1)
    return min(occur, key=lambda t: occur[t][0] * occur[t][1])


def _dedupe(constraints):
    seen = set()
    out = []
    for c in constraints:
        key = (c.rel, c.expr.coeffs, c.expr.constant)
        if key not in seen:
            seen.add(key)
            out.append(c)
    return out


# ----------------------------------------------------------------------
# Model extraction
# ----------------------------------------------------------------------


def evaluate(expr, assignment):
    """Evaluate a :class:`LinExpr` under ``assignment`` (term -> Fraction).

    Terms missing from the assignment count as 0 (they only occur with a
    zero net contribution to any constraint that was actually checked).
    """
    total = expr.constant
    for term, coeff in expr.coeffs:
        total += coeff * assignment.get(term, Fraction(0))
    return total


def _holds(constraint, assignment):
    value = evaluate(constraint.expr, assignment)
    if constraint.rel == EQ:
        return value == 0
    if constraint.rel == LE:
        return value <= 0
    return value < 0


def _floor(value):
    return value.numerator // value.denominator


def _pick_value(lower, lower_strict, upper, upper_strict):
    """A value inside the (possibly half-open/unbounded) interval, or None.

    Prefers the integer closest to zero when the interval contains one
    (INT-typed columns then get realistic values for free); otherwise
    takes the midpoint.
    """
    if lower is not None and upper is not None:
        if lower > upper:
            return None
        if lower == upper:
            if lower_strict or upper_strict:
                return None
            return lower
    if lower is None and upper is None:
        return Fraction(0)
    if upper is None:
        low_int = _floor(lower) + 1 if lower_strict or lower.denominator != 1 \
            else lower.numerator
        return Fraction(max(low_int, 0))
    if lower is None:
        high_int = _floor(upper) if not (upper_strict and upper.denominator == 1) \
            else upper.numerator - 1
        return Fraction(min(high_int, 0))
    # Both bounds finite and lower < upper: try an integer first.
    low_int = _floor(lower)
    if lower_strict or Fraction(low_int) < lower:
        low_int += 1
    high_int = _floor(upper)
    if upper_strict and Fraction(high_int) == upper:
        high_int -= 1
    if low_int <= high_int:
        return Fraction(max(low_int, min(high_int, 0)))
    # No integer in range (fine even for INT-typed terms: sound over the
    # rationals, and the witness layer verifies end to end).
    return (lower + upper) / 2


def _resolve_disequalities(constraints, disequalities, budget=None):
    """Replace each ``expr <> 0`` by a feasible strict side, backtracking.

    Returns the extended constraint list, or None when no consistent
    side-picking is found within the search budget.  The default budget
    scales with the number of disequalities (a straight-line success
    costs one unit each), so large satisfiable systems are never starved;
    it only cuts off pathological exponential backtracking.
    """
    pending = []
    for diseq in disequalities:
        if diseq.is_constant:
            if diseq.constant == 0:
                return None
            continue
        pending.append(diseq)
    if budget is None:
        budget = max(128, 8 * len(pending))
    chosen = list(constraints)
    budget_box = [budget]

    def descend(index):
        if index == len(pending):
            return True
        for side in (Constraint(pending[index], LT),
                     Constraint(pending[index].negate(), LT)):
            if budget_box[0] <= 0:
                return False
            budget_box[0] -= 1
            chosen.append(side)
            if _feasible(list(chosen)) and descend(index + 1):
                return True
            chosen.pop()
        return False

    if not descend(0):
        return None
    return chosen


def find_model(constraints, disequalities=()):
    """A satisfying assignment {base term: Fraction}, or None.

    Complete over the rationals for constraints + disequalities (the same
    fragment :func:`is_satisfiable` decides); INT-typed terms get integer
    values whenever their back-substituted interval contains one, so the
    result may be non-integral for integer-infeasible-but-rational-feasible
    systems -- callers that need exactness re-check the model.
    """
    constraints = [c.tightened() for c in constraints]
    if not _feasible(constraints):
        return None
    resolved = _resolve_disequalities(constraints, disequalities)
    if resolved is None:
        return None
    assignment = _feasible_model(resolved)
    if assignment is None:
        return None
    # Terms whose constraints were all consumed by another variable's
    # elimination were free by then: they implicitly took the value 0
    # (evaluate()'s default) during back-substitution, so record that 0
    # explicitly -- every input term must appear in the model.
    for constraint in constraints:
        for term in constraint.expr.terms():
            assignment.setdefault(term, Fraction(0))
    for diseq in disequalities:
        for term in diseq.terms():
            assignment.setdefault(term, Fraction(0))
    # Safety net: the model must satisfy everything it was derived from.
    for constraint in constraints:
        if not _holds(constraint, assignment):
            return None
    for diseq in disequalities:
        if evaluate(diseq, assignment) == 0:
            return None
    return assignment


def _feasible_model(constraints):
    """Like :func:`_feasible`, but reconstruct a model on success."""
    equalities = [c for c in constraints if c.rel == EQ]
    inequalities = [c for c in constraints if c.rel != EQ]

    substitutions = []  # (var, replacement) in Gaussian elimination order
    while equalities:
        eq = equalities.pop()
        if eq.expr.is_constant:
            if eq.expr.constant != 0:
                return None
            continue
        var, coeff = eq.expr.coeffs[0]
        rest = LinExpr.build(
            {t: c for t, c in eq.expr.coeffs if t != var}, eq.expr.constant
        )
        replacement = rest.scale(Fraction(-1) / coeff)
        substitutions.append((var, replacement))
        equalities = [
            Constraint(_substitute(e.expr, var, replacement), EQ)
            for e in equalities
        ]
        inequalities = [
            Constraint(_substitute(i.expr, var, replacement), i.rel)
            for i in inequalities
        ]

    inequalities = [c.tightened() for c in inequalities]
    eliminated = []  # (var, constraints that mention it) in FM order
    pending = list(inequalities)
    while True:
        for c in pending:
            if c.expr.is_constant and not _check_constant(c):
                return None
        pending = _dedupe([c for c in pending if not c.expr.is_constant])
        if not pending:
            break
        var = _pick_variable(pending)
        with_var, lowers, uppers, others = [], [], [], []
        for c in pending:
            coeff = dict(c.expr.coeffs).get(var, Fraction(0))
            if coeff == 0:
                others.append(c)
                continue
            with_var.append(c)
            if coeff > 0:
                uppers.append((c, coeff))
            else:
                lowers.append((c, coeff))
        eliminated.append((var, with_var))
        combined = []
        for up_c, up_coeff in uppers:
            for low_c, low_coeff in lowers:
                expr = up_c.expr.scale(-low_coeff).add(low_c.expr.scale(up_coeff))
                rel = LT if (up_c.rel == LT or low_c.rel == LT) else LE
                combined.append(Constraint(expr, rel).tightened())
        pending = others + combined

    # Back-substitution: variables eliminated last get values first, so
    # every recorded constraint evaluates to a one-variable interval.
    assignment = {}
    for var, with_var in reversed(eliminated):
        lower = upper = None
        lower_strict = upper_strict = False
        for c in with_var:
            coeff = dict(c.expr.coeffs)[var]
            rest = evaluate(
                c.expr.add(LinExpr.of_term(var).scale(-coeff)), assignment
            )
            bound = -rest / coeff
            strict = c.rel == LT
            if coeff > 0:  # coeff*var + rest rel 0  ->  var <= bound
                if upper is None or bound < upper or (bound == upper and strict):
                    upper, upper_strict = bound, strict
            else:
                if lower is None or bound > lower or (bound == lower and strict):
                    lower, lower_strict = bound, strict
        value = _pick_value(lower, lower_strict, upper, upper_strict)
        if value is None:
            return None
        assignment[var] = value
    for var, replacement in reversed(substitutions):
        assignment[var] = evaluate(replacement, assignment)
    return assignment
