"""Linear arithmetic theory solver (Fourier-Motzkin elimination).

Decides satisfiability of conjunctions of linear constraints
``expr (= | <= | <) 0`` plus disequalities ``expr <> 0`` over rational
variables, with *integer tightening* (``e < 0`` with integral ``e`` over
INT-typed terms becomes ``e <= -1``) recovering the integer-domain
inferences the paper relies on (e.g. ``A > 100  =>  MAX(A) >= 101``).

Over the rationals the procedure is a complete decision procedure for this
fragment; disequalities are handled exactly via the convexity argument: a
consistent system of inequalities together with disequalities ``e_i <> 0``
is satisfiable iff no single ``e_i = 0`` is entailed (an affine subspace
over an infinite field is never a finite union of proper subspaces).
Over the integers the procedure is sound for UNSAT (never reports UNSAT
for a satisfiable system) which is the direction Qr-Hint's correctness
depends on.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm

from repro.logic.linear import LinExpr

EQ = "="
LE = "<="
LT = "<"


class Constraint:
    """A linear constraint ``expr rel 0``."""

    __slots__ = ("expr", "rel")

    def __init__(self, expr, rel):
        self.expr = expr
        self.rel = rel

    def __repr__(self):
        return f"{self.expr} {self.rel} 0"

    def tightened(self):
        """Integer tightening: strict integral constraints become <=."""
        if self.rel != LT:
            return self
        expr = self.expr
        if not expr.coeffs or not expr.all_int_typed():
            return self
        denom = lcm(
            expr.constant.denominator, *(c.denominator for _, c in expr.coeffs)
        )
        scaled = expr.scale(denom)
        if not scaled.is_integral():
            return self
        # scaled < 0 over integers  <=>  scaled <= -1  <=>  scaled + 1 <= 0
        return Constraint(scaled.add(LinExpr.of_const(1)), LE)


def _substitute(expr, var, replacement):
    """Replace ``var`` in ``expr`` by the LinExpr ``replacement``."""
    coeffs = expr.coeff_dict()
    coeff = coeffs.pop(var, Fraction(0))
    base = LinExpr.build(coeffs, expr.constant)
    if coeff == 0:
        return base
    return base.add(replacement.scale(coeff))


def _check_constant(constraint):
    """Evaluate a variable-free constraint; True if it holds."""
    value = constraint.expr.constant
    if constraint.rel == EQ:
        return value == 0
    if constraint.rel == LE:
        return value <= 0
    return value < 0


def is_satisfiable(constraints, disequalities=()):
    """Decide a conjunction of constraints and disequalities.

    ``constraints`` is an iterable of :class:`Constraint`;
    ``disequalities`` an iterable of :class:`LinExpr` (meaning ``expr <> 0``).
    Returns True (satisfiable) or False.
    """
    constraints = [c.tightened() for c in constraints]
    if not _feasible(constraints):
        return False
    for diseq in disequalities:
        if diseq.is_constant:
            if diseq.constant == 0:
                return False
            continue
        # The system forces diseq = 0 iff both strict sides are infeasible.
        low = _feasible(constraints + [Constraint(diseq, LT)])
        if low:
            continue
        high = _feasible(constraints + [Constraint(diseq.negate(), LT)])
        if not high:
            return False
    return True


def _feasible(constraints):
    """Fourier-Motzkin feasibility of a system of (in)equalities."""
    equalities = [c for c in constraints if c.rel == EQ]
    inequalities = [c for c in constraints if c.rel != EQ]

    # Gaussian elimination on equalities.
    while equalities:
        eq = equalities.pop()
        if eq.expr.is_constant:
            if eq.expr.constant != 0:
                return False
            continue
        var, coeff = eq.expr.coeffs[0]
        # var = -(rest) / coeff
        rest = LinExpr.build(
            {t: c for t, c in eq.expr.coeffs if t != var}, eq.expr.constant
        )
        replacement = rest.scale(Fraction(-1) / coeff)
        equalities = [
            Constraint(_substitute(e.expr, var, replacement), EQ) for e in equalities
        ]
        inequalities = [
            Constraint(_substitute(i.expr, var, replacement), i.rel)
            for i in inequalities
        ]

    # Re-tighten after substitution (it may have changed integrality).
    inequalities = [c.tightened() for c in inequalities]
    return _fm(inequalities)


def _fm(inequalities):
    """Fourier-Motzkin elimination over pure inequalities."""
    pending = list(inequalities)
    while True:
        constants = [c for c in pending if c.expr.is_constant]
        for c in constants:
            if not _check_constant(c):
                return False
        pending = _dedupe([c for c in pending if not c.expr.is_constant])
        if not pending:
            return True
        var = _pick_variable(pending)
        lowers, uppers, others = [], [], []
        for c in pending:
            coeff = dict(c.expr.coeffs).get(var, Fraction(0))
            if coeff == 0:
                others.append(c)
            elif coeff > 0:
                uppers.append((c, coeff))  # coeff*var + rest rel 0 -> upper bound
            else:
                lowers.append((c, coeff))
        combined = []
        for up_c, up_coeff in uppers:
            for low_c, low_coeff in lowers:
                # up: var <= -rest_up/up_coeff ; low: var >= -rest_low/low_coeff
                expr = up_c.expr.scale(-low_coeff).add(low_c.expr.scale(up_coeff))
                rel = LT if (up_c.rel == LT or low_c.rel == LT) else LE
                combined.append(Constraint(expr, rel).tightened())
        pending = others + combined


def _pick_variable(constraints):
    """Choose the variable whose elimination creates the fewest constraints."""
    occur = {}
    for c in constraints:
        for t, coeff in c.expr.coeffs:
            pos, negc = occur.get(t, (0, 0))
            if coeff > 0:
                occur[t] = (pos + 1, negc)
            else:
                occur[t] = (pos, negc + 1)
    return min(occur, key=lambda t: occur[t][0] * occur[t][1])


def _dedupe(constraints):
    seen = set()
    out = []
    for c in constraints:
        key = (c.rel, c.expr.coeffs, c.expr.constant)
        if key not in seen:
            seen.add(key)
            out.append(c)
    return out
