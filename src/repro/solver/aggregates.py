"""Aggregate reasoning for the HAVING/SELECT stages (Section 7, Appendix E).

The paper encodes aggregates as Z3 array terms plus quantified axioms.  We
replace that with two sound mechanisms the scalar solver can decide:

* **normalization** -- aggregate calls are rewritten using the linearity
  axioms of Appendix E before comparison, e.g. ``SUM(D*2) -> 2*SUM(D)``,
  ``SUM(X+Y) -> SUM(X)+SUM(Y)``, ``COUNT(expr) -> COUNT(*)``,
  ``MIN(c*X+k) -> c*MIN(X)+k`` (sign-aware);
* **derived ground facts** -- each canonical aggregate becomes a fresh
  scalar variable, related to the WHERE condition through *witness rows*:
  ``MIN(e)``/``MAX(e)`` are attained at some row satisfying WHERE, so a
  fresh instantiation of WHERE with ``e = MIN(e)`` is asserted; plus
  ``MIN <= AVG <= MAX``, ``COUNT(*) >= 1``, and ``SUM = AVG * COUNT`` when
  the count is syntactically pinned.

Together these prove exactly the equivalences exercised by the paper's
examples (Examples 3, 10, 11) while remaining sound everywhere.
"""

from __future__ import annotations

from fractions import Fraction

from repro.catalog import SqlType
from repro.logic.formulas import Comparison, conj
from repro.logic.linear import LinExpr, linexpr_to_term, try_linearize
from repro.logic.substitute import substitute, substitute_term
from repro.logic.terms import AggCall, Arith, Const, Neg, Term, Var


def normalize_aggregate(agg):
    """Rewrite an :class:`AggCall` into a term over canonical aggregates.

    Returns a :class:`Term`; the canonical aggregates inside it are
    ``AggCall`` nodes whose arguments are irreducible.
    """
    func = agg.func
    if func == "COUNT":
        if agg.distinct:
            return AggCall("COUNT", _canonical_arg(agg.arg), True)
        return AggCall("COUNT", None, False)

    arg = agg.arg
    lin = try_linearize(arg)
    if lin is None:
        return AggCall(func, _canonical_arg(arg), agg.distinct)
    if agg.distinct:
        # DISTINCT blocks linearity (SUM(DISTINCT 2x) != 2 SUM(DISTINCT x)
        # would actually hold, but AVG/COUNT interplay does not; keep safe).
        return AggCall(func, _canonical_arg(arg), True)

    if func == "SUM":
        # SUM(sum_i c_i v_i + k) = sum_i c_i SUM(v_i) + k COUNT(*)
        result = _linear_combination(
            [(AggCall("SUM", base), coeff) for base, coeff in lin.coeffs]
        )
        if lin.constant != 0:
            piece = Arith("*", Const.of(lin.constant), AggCall("COUNT", None))
            result = piece if result is None else Arith("+", result, piece)
        return result if result is not None else Const.of(0)

    if func == "AVG":
        # AVG(sum_i c_i v_i + k) = sum_i c_i AVG(v_i) + k
        result = _linear_combination(
            [(AggCall("AVG", base), coeff) for base, coeff in lin.coeffs]
        )
        if lin.constant != 0 or result is None:
            constant = Const.of(lin.constant)
            result = constant if result is None else Arith("+", result, constant)
        return result

    if func in ("MIN", "MAX"):
        if len(lin.coeffs) == 1:
            base, coeff = lin.coeffs[0]
            if coeff > 0:
                inner = AggCall(func, base)
            else:
                flipped = "MAX" if func == "MIN" else "MIN"
                inner = AggCall(flipped, base)
            scaled = inner if abs(coeff) == 1 else Arith("*", Const.of(abs(coeff)), inner)
            if coeff < 0:
                scaled = Neg(scaled)
            if lin.constant != 0:
                scaled = Arith("+", scaled, Const.of(lin.constant))
            return scaled
        if not lin.coeffs:
            return Const.of(lin.constant)
        return AggCall(func, _canonical_arg(arg), agg.distinct)

    raise ValueError(f"unknown aggregate {func!r}")


def _canonical_arg(term):
    """Canonicalize an aggregate argument via its linear form when possible."""
    lin = try_linearize(term)
    if lin is None:
        return term
    return linexpr_to_term(lin)


def _linear_combination(pairs):
    result = None
    for base, coeff in pairs:
        if coeff == 1:
            piece = base
        elif coeff == -1:
            piece = Neg(base)
        else:
            piece = Arith("*", Const.of(coeff), base)
        result = piece if result is None else Arith("+", result, piece)
    return result


def _agg_var_type(agg):
    if agg.func == "COUNT":
        return SqlType.INT
    if agg.func == "AVG":
        return SqlType.FLOAT
    return agg.arg.type


def agg_scalar_var(agg):
    """The scalar variable standing for a canonical aggregate."""
    return Var(f"{agg}", _agg_var_type(agg))


def scalarize_term(term):
    """Normalize aggregates in ``term`` and replace them by scalar vars.

    Returns (scalar_term, {canonical AggCall} encountered).
    """
    collected = set()

    def walk(node):
        if isinstance(node, AggCall):
            normalized = normalize_aggregate(node)
            return replace_aggs(normalized)
        if isinstance(node, Arith):
            return Arith(node.op, walk(node.left), walk(node.right))
        if isinstance(node, Neg):
            return Neg(walk(node.child))
        return node

    def replace_aggs(node):
        if isinstance(node, AggCall):
            collected.add(node)
            return agg_scalar_var(node)
        if isinstance(node, Arith):
            return Arith(node.op, replace_aggs(node.left), replace_aggs(node.right))
        if isinstance(node, Neg):
            return Neg(replace_aggs(node.child))
        return node

    return walk(term), collected


def scalarize_formula(formula):
    """Apply :func:`scalarize_term` to both sides of every atom.

    Preserves the AND/OR/NOT tree shape so repair-site paths carry over to
    the original HAVING syntax tree.  Returns (formula, aggregates).
    """
    from repro.logic.formulas import And, BoolConst, Not, Or

    collected = set()

    def walk(node):
        if isinstance(node, BoolConst):
            return node
        if isinstance(node, Comparison):
            left, aggs_l = scalarize_term(node.left)
            right, aggs_r = scalarize_term(node.right)
            collected.update(aggs_l, aggs_r)
            return Comparison(node.op, left, right)
        if isinstance(node, Not):
            return Not(walk(node.child))
        if isinstance(node, (And, Or)):
            return type(node)(tuple(walk(c) for c in node.operands))
        raise TypeError(f"unexpected node {node!r}")

    return walk(formula), collected


class HavingContext:
    """Builds the background context C for HAVING-stage reasoning."""

    def __init__(self, where, group_terms):
        self.where = where
        self.group_terms = list(group_terms)
        self._group_vars = set()
        self._compound_terms = []
        for term in self.group_terms:
            if isinstance(term, Var):
                self._group_vars.add(term)
            else:
                self._compound_terms.append(term)
        self._row_counter = 0

    def _fresh_row_substitution(self):
        """Vars varying per row get fresh copies; group vars stay shared."""
        self._row_counter += 1
        suffix = f"#r{self._row_counter}"
        mapping = {}
        for var in self.where.variables() | {
            v for t in self._compound_terms for v in t.variables()
        }:
            if var not in self._group_vars:
                mapping[var] = Var(var.name + suffix, var.vtype)
        return mapping

    def _row_facts(self, mapping):
        """WHERE holds at the row; compound group terms equal their value."""
        facts = [substitute(self.where, mapping)]
        for term in self._compound_terms:
            value_var = Var(f"group[{term}]", term.type)
            facts.append(
                Comparison("=", substitute_term(term, mapping), value_var)
            )
        return facts

    def build(self, aggregates):
        """Context formulas for a set of canonical aggregates."""
        facts = []
        # A generic representative row ties the group variables to WHERE.
        facts.extend(self._row_facts(self._fresh_row_substitution()))
        facts.append(
            Comparison(">=", agg_scalar_var(AggCall("COUNT", None)), Const.of(1))
        )

        args = set()
        for agg in aggregates:
            if agg.func in ("MIN", "MAX", "AVG", "SUM") and not agg.distinct:
                args.add(agg.arg)
        for arg in args:
            if arg is None or not arg.type.is_numeric:
                continue
            min_var = agg_scalar_var(AggCall("MIN", arg))
            max_var = agg_scalar_var(AggCall("MAX", arg))
            avg_var = agg_scalar_var(AggCall("AVG", arg))
            for func_var in (min_var, max_var):
                mapping = self._fresh_row_substitution()
                facts.extend(self._row_facts(mapping))
                facts.append(
                    Comparison("=", substitute_term(arg, mapping), func_var)
                )
            facts.append(Comparison("<=", min_var, max_var))
            facts.append(Comparison("<=", min_var, avg_var))
            facts.append(Comparison("<=", avg_var, max_var))
        return tuple(facts)
