"""An iterative CDCL-lite SAT solver over CNF clauses.

Clauses are lists of non-zero integers; a positive integer ``v`` is the
variable ``v``, a negative integer its negation (DIMACS convention).

The engine replaces the original recursive DPLL with the machinery the lazy
SMT loop actually needs to be fast:

* **two-watched-literal propagation** -- each clause watches two of its
  literals, so propagation touches only the clauses whose watch just became
  false instead of rescanning the whole database per round;
* **an explicit trail with decision levels** -- assignment order is a flat
  list, backtracking pops a suffix; there is no Python recursion anywhere,
  so solving never depends on the interpreter recursion limit;
* **learned blocking clauses** -- every conflict records the negation of
  the current decision sequence (the "last-decision cut"; true first-UIP
  analysis is future work, see docs/solver.md).  After backtracking one
  level the learned clause is unit and *propagates* the flipped branch, so
  flips are consequences, not decisions, and later conflicts cut deeper;
* **VSIDS-style branching** -- variables involved in recent conflicts get
  their activity bumped and the bump grows geometrically, implemented as a
  lazy max-heap tolerant of stale entries;
* **phase saving** -- the last polarity of every variable is remembered and
  used as the branch polarity, so successive models under an incremental
  blocking-clause loop differ minimally (fewer theory checks upstream);
* **incremental solving under assumptions** -- ``solve(assumptions)``
  asserts assumptions as pseudo-decisions below the search, and the watch
  lists, learned clauses, and saved phases all persist across calls.
"""

from __future__ import annotations

from heapq import heappop, heappush

_ACTIVITY_DECAY = 0.95
_ACTIVITY_LIMIT = 1e100


class SatSolver:
    """Incremental CDCL-lite solver (watched literals + learned clauses)."""

    def __init__(self):
        self._clauses = []  # clause database; watched literals in slots 0/1
        self._watches = {}  # literal -> clause indices watching it
        self._num_vars = 0
        self._assign = {}  # var -> bool (current partial assignment)
        self._trail = []  # assigned literals in assignment order
        self._trail_lim = []  # trail length at the start of each level
        self._qhead = 0  # propagation frontier into the trail
        self._pending = []  # unit literals awaiting top-level propagation
        self._unsat = False  # the database is unsatisfiable outright
        self._activity = {}  # var -> VSIDS activity
        self._act_inc = 1.0
        self._heap = []  # lazy max-heap of (-activity, var)
        self._phase = {}  # var -> saved polarity
        self._last_model = None  # snapshot of the most recent SAT solve
        self.stats = {
            "solve_calls": 0,
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "learned_clauses": 0,
        }

    @property
    def num_vars(self):
        return self._num_vars

    def model(self):
        """A copy of the most recent satisfying assignment, or None.

        The snapshot is taken when :meth:`solve` returns SAT (the search
        itself backtracks to level 0 before returning, so the assignment
        is not recoverable from the trail) and is cleared by an UNSAT
        result.  Adding clauses does not invalidate the snapshot -- it
        describes the database as of the last solve.
        """
        return dict(self._last_model) if self._last_model is not None else None

    def new_var(self):
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    def ensure_vars(self, count):
        while self._num_vars < count:
            self._num_vars += 1
            heappush(self._heap, (0.0, self._num_vars))

    # ------------------------------------------------------------------
    # Clause addition
    # ------------------------------------------------------------------

    def add_clause(self, literals):
        """Add a clause; an empty clause makes the instance trivially UNSAT.

        Clauses may be added between ``solve`` calls; the watch lists and
        everything learned so far are kept.  The clause is simplified
        against the permanent (level-0) assignment on the way in.
        """
        clause = sorted(set(literals), key=abs)
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:
                return  # tautology
        for lit in clause:
            self.ensure_vars(abs(lit))
        self._backtrack(0)
        simplified = []
        for lit in clause:
            value = self._assign.get(abs(lit))
            if value is None:
                simplified.append(lit)
            elif value == (lit > 0):
                return  # satisfied by a permanent assignment
            # else: permanently false literal; drop it
        if not simplified:
            self._unsat = True
        elif len(simplified) == 1:
            self._pending.append(simplified[0])
        else:
            self._attach(simplified)

    def _attach(self, clause):
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)
        return index

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions=()):
        """Return a model as {var: bool}, or None if unsatisfiable.

        ``assumptions`` hold only for this call; clauses learned under them
        include their negations, so everything learned stays valid for
        every future call.
        """
        self.stats["solve_calls"] += 1
        self._last_model = None
        if self._unsat:
            return None
        self._backtrack(0)
        while self._pending:
            if not self._enqueue(self._pending.pop()):
                self._unsat = True
                return None
        if self._propagate() is not None:
            self._unsat = True
            return None

        for lit in assumptions:
            self.ensure_vars(abs(lit))
            value = self._assign.get(abs(lit))
            if value is not None:
                if value != (lit > 0):
                    self._backtrack(0)
                    return None
                continue
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit)
            if self._propagate() is not None:
                # This assumption prefix is unsatisfiable; remember why.
                self.stats["conflicts"] += 1
                blocked = [-self._trail[pos] for pos in self._trail_lim]
                self._backtrack(0)
                self.stats["learned_clauses"] += 1
                self.add_clause(blocked)
                return None
        return self._search(len(self._trail_lim))

    def _search(self, num_assumptions):
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                for lit in conflict:
                    self._bump(abs(lit))
                if not self._resolve_conflict(num_assumptions):
                    return None
                continue
            var = self._pick_branch()
            if var is None:
                model = {
                    v: self._assign.get(v, False)
                    for v in range(1, self._num_vars + 1)
                }
                self._phase.update(model)
                self._last_model = dict(model)
                self._backtrack(0)
                return model
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(var if self._phase.get(var, False) else -var)

    def _resolve_conflict(self, num_assumptions):
        """Learn the decision cut and flip; False means UNSAT for this call."""
        learned = [-self._trail[pos] for pos in self._trail_lim]
        self.stats["learned_clauses"] += 1
        for lit in learned:
            self._bump(abs(lit))
        self._act_inc /= _ACTIVITY_DECAY
        level = len(learned)
        if level <= num_assumptions:
            # The conflict depends on assumptions alone (or on nothing).
            self._backtrack(0)
            if learned:
                self.add_clause(learned)
            else:
                self._unsat = True
            return False
        self._backtrack(level - 1)
        asserting = learned[-1]
        if len(learned) >= 2:
            # Watch the asserting literal and the deepest remaining decision.
            self._attach([asserting, learned[-2]] + learned[:-2])
        self._enqueue(asserting)
        return True

    # ------------------------------------------------------------------
    # Propagation / trail
    # ------------------------------------------------------------------

    def _enqueue(self, lit):
        var = abs(lit)
        value = self._assign.get(var)
        if value is not None:
            return value == (lit > 0)
        self._assign[var] = lit > 0
        self._trail.append(lit)
        self.stats["propagations"] += 1
        return True

    def _propagate(self):
        """Propagate until fixpoint; return a conflicting clause or None."""
        assign = self._assign
        clauses = self._clauses
        watches = self._watches
        while self._qhead < len(self._trail):
            false_lit = -self._trail[self._qhead]
            self._qhead += 1
            watchers = watches.get(false_lit)
            if not watchers:
                continue
            kept = []
            for position, ci in enumerate(watchers):
                clause = clauses[ci]
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                value = assign.get(abs(first))
                if value is not None and value == (first > 0):
                    kept.append(ci)  # satisfied by the other watch
                    continue
                for k in range(2, len(clause)):
                    other = clause[k]
                    v = assign.get(abs(other))
                    if v is None or v == (other > 0):
                        clause[1], clause[k] = clause[k], clause[1]
                        watches.setdefault(other, []).append(ci)
                        break
                else:
                    kept.append(ci)
                    if value is None:
                        self._enqueue(first)  # clause is unit
                    else:
                        kept.extend(watchers[position + 1:])
                        watches[false_lit] = kept
                        return clause  # both watches false: conflict
            watches[false_lit] = kept
        return None

    def _backtrack(self, level):
        if len(self._trail_lim) <= level:
            return
        target = self._trail_lim[level]
        for lit in reversed(self._trail[target:]):
            var = abs(lit)
            self._phase[var] = lit > 0
            del self._assign[var]
            heappush(self._heap, (-self._activity.get(var, 0.0), var))
        del self._trail[target:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Branching heuristic
    # ------------------------------------------------------------------

    def _bump(self, var):
        activity = self._activity.get(var, 0.0) + self._act_inc
        self._activity[var] = activity
        if activity > _ACTIVITY_LIMIT:
            for v in self._activity:
                self._activity[v] *= 1.0 / _ACTIVITY_LIMIT
            self._act_inc *= 1.0 / _ACTIVITY_LIMIT
            activity = self._activity[var]
        if var not in self._assign:
            heappush(self._heap, (-activity, var))

    def _pick_branch(self):
        heap = self._heap
        assign = self._assign
        while heap:
            _, var = heappop(heap)
            if var not in assign:
                return var
        for var in range(1, self._num_vars + 1):  # safety net
            if var not in assign:
                return var
        return None


def solve_cnf(clauses, num_vars=0):
    """One-shot convenience wrapper around :class:`SatSolver`."""
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
