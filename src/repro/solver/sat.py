"""A small DPLL SAT solver over CNF clauses.

Clauses are lists of non-zero integers; a positive integer ``v`` is the
variable ``v``, a negative integer its negation (DIMACS convention).  The
solver supports incremental clause addition, which the lazy SMT loop uses to
add theory conflict clauses between calls.

DPLL with unit propagation and a most-occurring-variable branching rule is
entirely adequate here: propositional abstractions of SQL predicates have a
few dozen variables at most.
"""

from __future__ import annotations


class SatSolver:
    """Incremental DPLL solver."""

    def __init__(self):
        self._clauses = []
        self._num_vars = 0

    @property
    def num_vars(self):
        return self._num_vars

    def new_var(self):
        self._num_vars += 1
        return self._num_vars

    def ensure_vars(self, count):
        self._num_vars = max(self._num_vars, count)

    def add_clause(self, literals):
        """Add a clause; an empty clause makes the instance trivially UNSAT."""
        clause = sorted(set(literals), key=abs)
        for lit in clause:
            self.ensure_vars(abs(lit))
        # A clause containing both v and -v is a tautology.
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:
                return
        self._clauses.append(clause)

    def solve(self, assumptions=()):
        """Return a model as {var: bool}, or None if unsatisfiable."""
        assignment = {}
        for lit in assumptions:
            var, value = abs(lit), lit > 0
            if assignment.get(var, value) != value:
                return None
            assignment[var] = value
        result = self._dpll(assignment)
        if result is None:
            return None
        # Unconstrained variables default to False.
        for var in range(1, self._num_vars + 1):
            result.setdefault(var, False)
        return result

    def _dpll(self, assignment):
        assignment = dict(assignment)
        while True:
            status, unit_lits = self._propagate(assignment)
            if status == "conflict":
                return None
            if not unit_lits:
                break
            for lit in unit_lits:
                assignment[abs(lit)] = lit > 0
        branch_var = self._pick_branch(assignment)
        if branch_var is None:
            return assignment
        for value in (True, False):
            trial = dict(assignment)
            trial[branch_var] = value
            result = self._dpll(trial)
            if result is not None:
                return result
        return None

    def _propagate(self, assignment):
        units = []
        for clause in self._clauses:
            unassigned = None
            satisfied = False
            count_unassigned = 0
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    unassigned = lit
                    count_unassigned += 1
            if satisfied:
                continue
            if count_unassigned == 0:
                return "conflict", []
            if count_unassigned == 1:
                units.append(unassigned)
        # Deduplicate; conflicting units become a conflict.
        chosen = {}
        for lit in units:
            var = abs(lit)
            if var in chosen and chosen[var] != (lit > 0):
                return "conflict", []
            chosen[var] = lit > 0
        return "ok", [v if val else -v for v, val in chosen.items()]

    def _pick_branch(self, assignment):
        counts = {}
        for clause in self._clauses:
            satisfied = any(
                abs(lit) in assignment and assignment[abs(lit)] == (lit > 0)
                for lit in clause
            )
            if satisfied:
                continue
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            return max(counts, key=counts.get)
        for var in range(1, self._num_vars + 1):
            if var not in assignment:
                return None  # all remaining vars unconstrained
        return None


def solve_cnf(clauses, num_vars=0):
    """One-shot convenience wrapper around :class:`SatSolver`."""
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
