"""An iterative CDCL SAT solver over CNF clauses, tuned for enumeration.

Clauses are lists of non-zero integers; a positive integer ``v`` is the
variable ``v``, a negative integer its negation (DIMACS convention).

The engine implements the conflict-driven machinery the lazy SMT loop
actually needs to be fast (the MiniSat/Glucose lineage), rebuilt around
the hint pipeline's real hot path: blocking-clause model enumeration.

* **flat clause arena** -- all clause literals live in one flat integer
  buffer; a clause is an integer offset (``cref``) into that buffer, with
  its size at ``arena[cref - 1]`` and its LBD score at ``arena[cref - 2]``
  (zero for permanent clauses).  Watcher lists are flat
  ``[cref, blocker, cref, blocker, ...]`` integer lists indexed by
  literal, so the propagation inner loop walks contiguous ints instead of
  chasing per-clause list objects.  (A plain Python list is used for the
  buffer rather than ``array('i')``: CPython's ``array`` re-boxes every
  indexed read into a fresh int object, which measures ~1.7x slower per
  probe than a list of cached small ints; the layout is identical.)
* **two-watched-literal propagation with blocker literals** -- each clause
  watches two of its literals, so propagation touches only the clauses
  whose watch just became false; every watcher entry carries a cached
  *blocker* literal whose truth lets the visit skip the clause with a
  single assignment probe (the overwhelmingly common case in
  blocking-clause enumeration loops);
* **first-UIP conflict analysis with recursive minimization** -- on
  conflict the implication graph is walked backward from the conflicting
  clause until a single literal of the conflict level remains; dominated
  literals are dropped before the learned clause is stored;
* **chronological backtracking** -- a conflict clause with exactly one
  literal of the current decision level skips analysis entirely: the
  search backtracks one level and enqueues that literal with the conflict
  clause as its reason (Moehle & Biere's "backing backtracking").  Falsified
  clause *additions* (the enumeration path: every blocking clause arrives
  falsified) unwind only the deepest level the clause actually
  invalidates and assert the clause as unit there.  Analyzed conflicts
  whose backjump would discard more than 100 levels also backtrack
  chronologically (Nadel & Ryvchin's threshold rule).  Counted by
  ``chrono_backtracks``;
* **trail saving** -- literals popped by a backtrack are remembered with
  their reasons; at the next decision points the saved suffix is
  replayed: a saved propagation whose reason clause is still unit
  re-propagates without a search step (``saved_trail_literals``), and a
  saved decision is re-decided while its activity still dominates the
  branching heap (van der Tak-style trail reuse, so restarts keep their
  point);
* **one-flip condensation of permanent clauses** -- a permanent clause
  addition that differs from a live permanent clause in exactly one
  flipped literal replaces both with their resolvent (C \/ l and C \/ -l
  are together equivalent to C), cascading until no partner matches.
  Blocking-clause enumeration telescopes under this rule: the live
  blocking set (and with it the watch lists the propagation loop walks)
  stays logarithmic in the number of enumerated models, and a full
  enumeration condenses down to the empty clause -- UNSAT with a
  near-empty database;
* **LBD-EMA adaptive restarts** -- fast/slow exponential moving averages
  of learned-clause LBD trigger a restart when recent conflicts are
  markedly worse than the long-run average (Glucose-style), with a Luby
  schedule as a fallback cap.  Chronological conflicts feed neither
  average, so model enumeration -- whose conflicts never analyze -- does
  not restart away its trail;
* **an LBD-scored learned-clause database with periodic reduction** --
  when the learned database outgrows its cap the worst half (highest
  LBD, then longest) is deleted, keeping binary, glue (LBD <= 2), and
  reason-locked clauses; deleted bodies stay in the arena (no
  compaction), which keeps saved-trail reasons valid forever;
* **VSIDS branching with exponential decay** (lazy max-heap, stale
  entries tolerated) and **phase saving**;
* **incremental solving under assumptions with trail reuse** --
  ``solve(assumptions)`` asserts assumptions as pseudo-decisions below
  the search; watch lists, learned clauses, and saved phases persist
  across calls, and the trail itself is kept between calls whenever it
  is still consistent.  Chronological backtracking never unwinds into
  the assumption prefix.  After UNSAT, :meth:`unsat_core` names the
  failed assumptions (MiniSat's ``analyzeFinal``).
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.obs.journal import CHRONO_SAMPLE, JOURNAL as _JOURNAL

#: Mask form of the chrono-event sampling period (power of two).
_CHRONO_MASK = CHRONO_SAMPLE - 1

_ACTIVITY_DECAY = 0.95
_ACTIVITY_LIMIT = 1e100

#: Analyzed conflicts whose backjump would discard more than this many
#: levels backtrack chronologically instead (Nadel & Ryvchin's T).
_CHRONO_JUMP_LIMIT = 100

#: Learned clauses before the LBD EMAs are trusted for restart decisions.
_LBD_WARMUP = 128


def _luby(i):
    """The ``i``-th term (1-based) of the Luby sequence: 1 1 2 1 1 2 4 ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class SatSolver:
    """Incremental CDCL solver (arena, watched literals, chrono, restarts)."""

    def __init__(self, restart_base=64, reduce_base=300, reduce_growth=1.15):
        # Clause arena: [lbd, size, lit0, .., litn-1] per clause; a cref
        # points at lit0.  Two leading zeros keep every cref >= 2 so the
        # metadata reads arena[cref-1] / arena[cref-2] never wrap, and 0
        # can mean "no clause" in reason slots.
        self._arena = [0, 0]
        self._learned_refs = []  # crefs of live learned clauses
        # Live *permanent* clauses, keyed for one-flip condensation:
        # sorted-variable tuple -> {polarity bitmask: cref}.
        self._clause_index = {}
        # Memoized (sorted key tuple, {var: bit}, top var) per literal
        # variable sequence (order-sensitive; see ``_add``).
        self._key_cache = {}
        self._num_vars = 0
        self._cap = 64  # allocated variable capacity of the literal maps
        self._assign = [None] * (2 * self._cap + 1)  # literal -> truth
        self._watchlists = [None] * (2 * self._cap + 1)  # lit -> flat pairs
        self._levels = [0]  # var -> decision level of the assignment
        self._reasons = [0]  # var -> antecedent cref (0 = none)
        self._phase = [False]  # var -> saved polarity
        self._activity = [0.0]  # var -> VSIDS activity
        self._trail = []  # assigned literals in assignment order
        self._trail_lim = []  # trail length at the start of each level
        self._qhead = 0  # propagation frontier into the trail
        self._pending = []  # unit literals awaiting top-level propagation
        self._unsat = False  # the database is unsatisfiable outright
        self._act_inc = 1.0
        self._heap = []  # lazy max-heap of (-activity, var)
        # Unassigned vars with zero activity, kept in a LIFO instead of
        # the heap: before the first conflict every activity is zero, so
        # heap order carries no information and a plain list pop is
        # several times cheaper.  Once conflicts exist the list is
        # drained back into the heap at the next decision.
        self._free = []
        self._last_model = None  # {var: bool} snapshot of the last SAT solve
        self._model_size = 0  # variable count backing that snapshot
        self._model_master = None  # persistent mirror the snapshot aliases
        self._dirty_vars = []  # vars unassigned since the mirror was built
        self._assumptions = []  # assumptions of the solve in progress
        self._assumed = []  # assumptions backing the kept trail (last SAT)
        self._conflict_core = None  # failed-assumption core of the last UNSAT
        self._saved = []  # flat [lit, reason_cref, ...] of the last backtrack
        self._saved_pos = 0  # replay frontier into ``_saved``
        self._lbd_fast = 0.0  # fast EMA of learned-clause LBD (1/32)
        self._lbd_slow = 0.0  # slow EMA of learned-clause LBD (1/4096)
        self._lbd_count = 0  # learned clauses feeding the EMAs
        self.restart_base = restart_base
        self._luby_index = 1
        self._restart_limit = 2 * restart_base  # 2 * base * _luby(1)
        self._max_learned = reduce_base
        self._reduce_growth = reduce_growth
        self.stats = {
            "solve_calls": 0,
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "learned_clauses": 0,
            "restarts": 0,
            "deleted_clauses": 0,
            "minimized_literals": 0,
            "assumption_cores": 0,
            "core_literals": 0,
            "chrono_backtracks": 0,
            "saved_trail_literals": 0,
        }

    @property
    def num_vars(self):
        return self._num_vars

    @property
    def _learned_clauses(self):
        """Live learned clauses as literal lists (tests and debugging)."""
        arena = self._arena
        return [arena[ref:ref + arena[ref - 1]] for ref in self._learned_refs]

    def model(self):
        """A copy of the most recent satisfying assignment, or None.

        The snapshot is taken when :meth:`solve` returns SAT and is
        cleared by an UNSAT result.  Adding clauses does not invalidate
        the snapshot -- it describes the database as of the last solve.
        """
        if self._last_model is None:
            return None
        return dict(self._last_model)

    def new_var(self):
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    def ensure_vars(self, count):
        if count <= self._num_vars:
            return
        if count > self._cap:
            new_cap = max(count, 2 * self._cap)
            fresh = [None] * (2 * new_cap + 1)
            fresh_watch = [None] * (2 * new_cap + 1)
            assign = self._assign
            watchlists = self._watchlists
            for var in range(1, self._num_vars + 1):
                fresh[var] = assign[var]
                fresh[-var] = assign[-var]
                fresh_watch[var] = watchlists[var]
                fresh_watch[-var] = watchlists[-var]
            self._assign = fresh
            self._watchlists = fresh_watch
            self._cap = new_cap
        levels = self._levels
        reasons = self._reasons
        phase = self._phase
        activity = self._activity
        watchlists = self._watchlists
        heap = self._heap
        for var in range(self._num_vars + 1, count + 1):
            levels.append(0)
            reasons.append(0)
            phase.append(False)
            activity.append(0.0)
            watchlists[var] = []
            watchlists[-var] = []
            heappush(heap, (0.0, var))
        self._num_vars = count

    # ------------------------------------------------------------------
    # Clause addition
    # ------------------------------------------------------------------

    def add_clause(self, literals):
        """Add a permanent clause; an empty clause makes the DB UNSAT.

        Clauses may be added between ``solve`` calls; the watch lists and
        everything learned so far are kept.  The clause is simplified
        against the permanent (level-0) assignment on the way in, and the
        trail is only unwound as far as the new clause forces: a clause
        falsified by the current assignment backtracks chronologically to
        the deepest level it invalidates and, when it is unit there,
        asserts it with the clause as reason -- this is what makes
        blocking-clause enumeration loops incremental.
        """
        self._add(literals, False)

    def add_learned_clause(self, literals):
        """Add a deletable clause (a lemma, e.g. a theory blocking clause).

        Semantically identical to :meth:`add_clause`, but the clause joins
        the learned database and may be dropped by a later reduction; use
        for clauses that are *implied* (re-derivable) rather than part of
        the problem.
        """
        self._add(literals, True)

    def _add(self, literals, learned):
        key = mask = None
        if learned:
            litset = set(literals)
            top_var = 0
            for lit in litset:
                if -lit in litset:
                    return  # tautology
                var = lit if lit > 0 else -lit
                if var > top_var:
                    top_var = var
        else:
            # The condensation key (sorted variable tuple), each
            # variable's bit position, and the top variable are memoized
            # per *variable sequence*: enumeration adds thousands of
            # blocking clauses spelling the same variables in the same
            # order, so a repeat shape costs one tuple build and one
            # dict probe -- no set, no sort, no max, no tautology scan
            # (a cached entry guarantees the variables are distinct).
            varseq = tuple(map(abs, literals))
            entry = self._key_cache.get(varseq)
            if entry is None:
                varset = frozenset(varseq)
                if len(varset) != len(varseq):
                    # Duplicate literal or tautology: normalise, recheck.
                    litset = set(literals)
                    varset = frozenset(map(abs, litset))
                    if len(varset) != len(litset):
                        return  # tautology
                    literals = list(litset)
                    varseq = tuple(map(abs, literals))
                key = tuple(sorted(varset))
                bitpos = {v: 1 << j for j, v in enumerate(key)}
                top_var = key[-1] if key else 0
                self._key_cache[varseq] = (key, bitpos, top_var)
            else:
                key, bitpos, top_var = entry
            mask = 0
            for lit in literals:
                if lit > 0:
                    mask |= bitpos[lit]
            # One-flip condensation (self-subsuming resolution).  If a
            # live permanent clause has the same variables and differs in
            # exactly one flipped literal, the pair is *equivalent* to
            # its resolvent: C \/ l and C \/ -l <=> C.  Replace both by
            # the resolvent and repeat.  Blocking-clause enumeration
            # telescopes under this rule -- the clause of the model just
            # blocked always one-flip-matches its sibling subtree's
            # clause -- so the live blocking set stays logarithmic in
            # the number of enumerated models instead of linear, and with
            # it the watch lists the hot propagation loop must walk.
            # The partner probe walks the bucket's live masks (their
            # count is that same logarithm) rather than trying all
            # single-bit flips of ``mask``.
            index = self._clause_index
            while True:
                bucket = index.get(key)
                if bucket is None:
                    break
                if mask in bucket:
                    return  # duplicate of a live permanent clause
                partner_mask = -1
                for m2 in bucket:
                    d = mask ^ m2
                    if not (d & (d - 1)):  # exactly one bit: d != 0 here
                        partner_mask = m2
                        break
                if partner_mask < 0:
                    break
                partner = bucket.pop(partner_mask)
                if not bucket:
                    del index[key]
                # Inline ``_detach(partner)``: unhook it from both watch
                # lists (swap-remove); the body stays in the arena so any
                # reason cref naming it remains readable.
                arena = self._arena
                watchlists = self._watchlists
                for wlit in (arena[partner], arena[partner + 1]):
                    watchers = watchlists[wlit]
                    for i in range(0, len(watchers), 2):
                        if watchers[i] == partner:
                            end = len(watchers) - 2
                            watchers[i] = watchers[end]
                            watchers[i + 1] = watchers[end + 1]
                            del watchers[end:]
                            break
                j = (mask ^ partner_mask).bit_length() - 1
                v = key[j]
                literals = [l for l in literals if l != v and l != -v]
                # Drop position j from key and squeeze the mask.
                key = key[:j] + key[j + 1:]
                mask = (mask & ((1 << j) - 1)) | ((mask >> (j + 1)) << j)
                if not literals:
                    # Condensed away entirely: the DB is UNSAT outright.
                    self._backtrack(0)
                    self._unsat = True
                    return
            litset = literals
        if top_var > self._num_vars:
            self.ensure_vars(top_var)
        assign = self._assign
        levels = self._levels
        # One pass: classify every literal against the current (possibly
        # deep) assignment and track the two deepest false literals for
        # watch selection.  Only counters and watch candidates are kept --
        # no per-class lists -- because the dominant caller (blocking
        # clauses during enumeration) lands on the all-false path, where
        # the clause body is rebuilt straight from ``litset``.  Literals
        # false at level 0 stay in the body (they are never picked as
        # watches, so the watch invariant ignores them); dropping them
        # only shrinks scans on clauses that mix level-0 facts in, which
        # is not worth a second pass here.
        nf_count = 0  # literals not false under the assignment
        f_count = 0  # literals false above level 0
        w0 = 0  # first non-false literal
        w1 = 0  # second non-false literal
        top = 0  # deepest false-literal level
        deepest = 0  # a false literal at that level
        second = 0  # second-deepest false-literal level
        runner = 0  # a false literal at that level
        count_top = 0  # false literals at the deepest level
        for lit in litset:
            value = assign[lit]
            if value is None:
                if nf_count:
                    w1 = w1 or lit
                else:
                    w0 = lit
                nf_count += 1
                continue
            lvl = levels[lit if lit > 0 else -lit]
            if value:
                if lvl == 0:
                    return  # satisfied by a permanent assignment
                if nf_count:
                    w1 = w1 or lit
                else:
                    w0 = lit
                nf_count += 1
                continue
            if lvl == 0:
                continue  # permanently false; stays in the body unwatched
            f_count += 1
            if lvl > top:
                second, runner = top, deepest
                top, deepest = lvl, lit
                count_top = 1
            else:
                if lvl == top:
                    count_top += 1
                if lvl > second:
                    second, runner = lvl, lit
        if nf_count >= 2:
            if nf_count == len(litset):
                ordered = list(litset)
            else:
                ordered = [w0, w1]
                ordered += [
                    l for l in litset if l is not w0 and l is not w1
                ]
            ref = self._attach(ordered, learned)
            if key is not None:
                # ``bucket`` is the condensation loop's final lookup for
                # ``key`` -- reuse it instead of re-hashing.
                if bucket is None:
                    self._clause_index[key] = {mask: ref}
                else:
                    bucket[mask] = ref
            return
        if not f_count:
            self._backtrack(0)
            if not nf_count:
                self._unsat = True
            else:
                self._pending.append(w0)
            return
        if nf_count == 1:
            # Unit (or already satisfied) under the current assignment:
            # watch the non-false literal plus the deepest false one (a
            # false second watch is sound here because the clause is being
            # satisfied through the first watch right now; the deepest
            # choice un-falsifies the watch soonest on churn).
            ordered = [w0, deepest]
            ordered += [
                l for l in litset if l is not w0 and l is not deepest
            ]
            ref = self._attach(ordered, learned)
            if key is not None:
                # ``bucket`` is the condensation loop's final lookup for
                # ``key`` -- reuse it instead of re-hashing.
                if bucket is None:
                    self._clause_index[key] = {mask: ref}
                else:
                    bucket[mask] = ref
            if assign[w0] is None:
                self._enqueue(w0, ref)
            return
        if f_count == 1:
            self._backtrack(0)
            self._pending.append(deepest)
            return
        # Falsified by the current assignment: chronological repair.
        # Unwind only back to the deepest level the clause invalidates
        # (not to the root, and not to the assumption frontier).  The pop
        # must be a level *suffix*: unassigning a middle level while its
        # dependents stay assigned lets a popped variable reassign the
        # other way, after which conflict analysis -- whose per-variable
        # ``seen`` set assumes one polarity per variable across the
        # implication graph -- silently drops a tautology and learns an
        # unsound clause.  On enumeration workloads the invalidated level
        # is the deepest level anyway, so the suffix pop costs nothing.
        if count_top == 1:
            # Unit once the deepest level is gone: assert it with the
            # clause as reason.  ``deepest`` leads (reason slot-0
            # invariant) and the deepest remaining false literal takes
            # the second watch.  The suffix pop and the attach are
            # inlined here -- this is the once-per-model path of
            # blocking-clause enumeration.
            trail = self._trail
            tlim = self._trail_lim
            reasons = self._reasons
            phase = self._phase
            activity = self._activity
            heap = self._heap
            dirty = self._dirty_vars
            free = self._free
            target = tlim[top - 1]
            saved = []
            push = saved.append
            for lit in trail[target:]:
                var = lit if lit > 0 else -lit
                push(lit)
                push(reasons[var])
                dirty.append(var)
                phase[var] = lit > 0
                assign[lit] = None
                assign[-lit] = None
                reasons[var] = 0
                act = activity[var]
                if act:
                    heappush(heap, (-act, var))
                else:
                    free.append(var)
            self._saved = saved
            self._saved_pos = 0
            del trail[target:]
            del tlim[top - 1:]
            ordered = [deepest, runner]
            ordered += [
                l for l in litset if l is not deepest and l is not runner
            ]
            arena = self._arena
            arena.append(len(ordered) if learned else 0)
            arena.append(len(ordered))
            ref = len(arena)
            arena.extend(ordered)
            if learned:
                self._learned_refs.append(ref)
            watchlists = self._watchlists
            watchers = watchlists[deepest]
            watchers.append(ref)
            watchers.append(runner)
            watchers = watchlists[runner]
            watchers.append(ref)
            watchers.append(deepest)
            if key is not None:
                # ``bucket`` is the condensation loop's final lookup for
                # ``key`` -- reuse it instead of re-hashing.
                if bucket is None:
                    self._clause_index[key] = {mask: ref}
                else:
                    bucket[mask] = ref
            assign[deepest] = True
            assign[-deepest] = False
            dvar = deepest if deepest > 0 else -deepest
            levels[dvar] = len(tlim)
            reasons[dvar] = ref
            trail.append(deepest)
            self._qhead = len(trail) - 1
            stats = self.stats
            stats["propagations"] += 1
            stats["chrono_backtracks"] += 1
            if not stats["chrono_backtracks"] & _CHRONO_MASK:
                _JOURNAL.record(
                    "solver.chrono",
                    backtracks=stats["chrono_backtracks"],
                    propagations=stats["propagations"],
                )
        else:
            # Several literals of the deepest level are now unassigned:
            # any two of them are valid watches.
            self._backtrack(top - 1)
            unassigned = [
                l for l in litset
                if levels[l if l > 0 else -l] == top
            ]
            ordered = unassigned + [
                l for l in litset
                if levels[l if l > 0 else -l] != top
            ]
            ref = self._attach(ordered, learned)
            if key is not None:
                # ``bucket`` is the condensation loop's final lookup for
                # ``key`` -- reuse it instead of re-hashing.
                if bucket is None:
                    self._clause_index[key] = {mask: ref}
                else:
                    bucket[mask] = ref

    def _detach(self, ref):
        """Remove a clause from both watch lists; the body stays in the
        arena, so any reason slot naming this cref remains readable."""
        arena = self._arena
        watchlists = self._watchlists
        for lit in (arena[ref], arena[ref + 1]):
            watchers = watchlists[lit]
            for i in range(0, len(watchers), 2):
                if watchers[i] == ref:
                    end = len(watchers) - 2
                    watchers[i] = watchers[end]
                    watchers[i + 1] = watchers[end + 1]
                    del watchers[end:]
                    break

    def _attach(self, literals, learned, lbd=0):
        """Append a clause to the arena and watch its first two literals."""
        arena = self._arena
        arena.append((lbd or len(literals)) if learned else 0)
        arena.append(len(literals))
        ref = len(arena)
        arena.extend(literals)
        if learned:
            self._learned_refs.append(ref)
        watchlists = self._watchlists
        watchers = watchlists[literals[0]]
        watchers.append(ref)
        watchers.append(literals[1])
        watchers = watchlists[literals[1]]
        watchers.append(ref)
        watchers.append(literals[0])
        return ref

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions=()):
        """Return a model as {var: bool}, or None if unsatisfiable.

        ``assumptions`` hold only for this call; clauses learned under
        them are derived by resolution from the database alone, so
        everything learned stays valid for every future call.  The trail
        of a SAT result is kept; the next call backtracks only to the
        longest assumption prefix shared with this one (full reuse for
        assumption-free enumeration loops).

        After an UNSAT result :meth:`unsat_core` names the subset of
        ``assumptions`` actually responsible.
        """
        self.stats["solve_calls"] += 1
        self._last_model = None
        self._conflict_core = None
        if not assumptions and not self._assumed and not self._pending:
            # Enumeration fast path: no assumptions now or on the kept
            # trail and no pending units means there is nothing to set
            # up or unwind -- go straight to the search.
            if self._unsat:
                self._conflict_core = ()
                return None
            self._assumptions = []
            result = self._search()
            if result is None and self._conflict_core is None:
                self._conflict_core = ()
            return result
        assumptions = list(assumptions)
        result = self._solve_under(assumptions)
        if result is None:
            if self._conflict_core is None:
                self._conflict_core = ()
            if assumptions:
                self.stats["assumption_cores"] += 1
                self.stats["core_literals"] += len(self._conflict_core)
        return result

    def unsat_core(self):
        """The failed-assumption core of the most recent UNSAT solve.

        Returns a tuple: a subset of the last ``solve`` call's assumptions
        such that the clause database conjoined with just those literals
        is already unsatisfiable (empty when the database alone is UNSAT).
        Returns None when the most recent solve was satisfiable.  The core
        is *a* small explanation, not guaranteed minimal -- it is read off
        the final implication graph (MiniSat's ``analyzeFinal``), so it
        costs no extra solving.
        """
        if self._conflict_core is None:
            return None
        return tuple(self._conflict_core)

    def _solve_under(self, assumptions):
        if self._unsat:
            return None
        for lit in assumptions:
            self.ensure_vars(lit if lit > 0 else -lit)
        if self._pending:
            self._backtrack(0)
            self._assumed = []
            while self._pending:
                if not self._enqueue(self._pending.pop()):
                    self._unsat = True
                    return None
            if self._propagate():
                self._unsat = True
                return None
        if assumptions or self._assumed:
            # Keep the trail prefix whose pseudo-decision levels assert the
            # same assumptions as this call; everything above must go.
            shared = 0
            old = self._assumed
            limit = min(len(assumptions), len(old), len(self._trail_lim))
            while shared < limit and assumptions[shared] == old[shared]:
                shared += 1
            self._backtrack(shared)
        self._assumed = []
        self._assumptions = assumptions
        return self._search()

    def _search(self):
        # The hot loop.  Propagation is inlined rather than calling
        # :meth:`_propagate` (which cold paths still use): the kernel
        # workload is hundreds of thousands of tiny solve calls, and the
        # per-call preamble of a method that binds a dozen locals costs
        # more than the propagation itself.  Counter writes are batched
        # into locals and flushed at the return points for the same
        # reason.
        assumptions = self._assumptions
        num_assumptions = len(assumptions)
        assign = self._assign
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        watchlists = self._watchlists
        trail = self._trail
        trail_lim = self._trail_lim
        stats = self.stats
        conflicts_here = 0
        restart_limit = self._restart_limit
        propagated = 0
        while True:
            # ---- inlined two-watched-literal propagation ----
            conflict = 0
            qhead = self._qhead
            depth = len(trail_lim)
            while qhead < len(trail):
                false_lit = -trail[qhead]
                qhead += 1
                watchers = watchlists[false_lit]
                if not watchers:
                    continue
                i = 0
                end = len(watchers)
                while i < end:
                    if assign[watchers[i + 1]] is True:
                        i += 2  # blocker satisfied: clause already true
                        continue
                    ref = watchers[i]
                    first = arena[ref]
                    if first == false_lit:
                        first = arena[ref + 1]
                        arena[ref] = first
                        arena[ref + 1] = false_lit
                    value = assign[first]
                    size = arena[ref - 1]
                    # Look for a replacement watch even when the clause is
                    # already satisfied by the other watch.  The textbook
                    # move is to cache ``first`` as the blocker and keep the
                    # watch here, but enumeration piles thousands of
                    # satisfied blocking clauses onto the few literals that
                    # flip every model; migrating the watch to a body
                    # literal parks the clause on a literal the counting
                    # search touches far less often, and a clause that
                    # cannot migrate is exactly one the search is about to
                    # need (unit or conflicting).
                    for k in range(ref + 2, ref + size):
                        other = arena[k]
                        if assign[other] is not False:
                            arena[ref + 1] = other
                            arena[k] = false_lit
                            moved = watchlists[other]
                            moved.append(ref)
                            moved.append(first)
                            break
                    else:
                        if value is True:
                            watchers[i + 1] = first  # cache the true watch
                            i += 2
                            continue
                        if value is False:
                            conflict = ref  # both watches false
                            break
                        assign[first] = True  # clause is unit
                        assign[-first] = False
                        var = first if first > 0 else -first
                        levels[var] = depth
                        reasons[var] = ref
                        trail.append(first)
                        propagated += 1
                        i += 2
                        continue
                    end -= 2  # watch moved: swap-remove from this list
                    watchers[i] = watchers[end]
                    watchers[i + 1] = watchers[end + 1]
                    del watchers[end:]
                if conflict:
                    break
            self._qhead = qhead
            if conflict:
                stats["conflicts"] += 1
                level = depth
                if level == 0:
                    # Conflict with no decisions at all: the DB is UNSAT.
                    stats["propagations"] += propagated
                    self._unsat = True
                    return None
                # Chronological fast path: exactly one literal of the
                # conflict clause sits at the current level, so the clause
                # is unit one level down -- no analysis, no learning, just
                # step back and flip it with the clause as reason.
                size = arena[conflict - 1]
                count = 0
                unit_lit = 0
                for k in range(conflict, conflict + size):
                    q = arena[k]
                    if levels[q if q > 0 else -q] == level:
                        count += 1
                        if count > 1:
                            break
                        unit_lit = q
                if count == 1 and level > num_assumptions:
                    self._backtrack(level - 1)
                    if arena[conflict] != unit_lit:
                        # The unit literal is the other watch: swap it into
                        # slot 0 (the reason slot-0 invariant).  Watcher
                        # lists are position-agnostic, so no re-wiring.
                        arena[conflict + 1] = arena[conflict]
                        arena[conflict] = unit_lit
                    assign[unit_lit] = True
                    assign[-unit_lit] = False
                    uvar = unit_lit if unit_lit > 0 else -unit_lit
                    levels[uvar] = len(trail_lim)
                    reasons[uvar] = conflict
                    trail.append(unit_lit)
                    propagated += 1
                    stats["chrono_backtracks"] += 1
                    if not stats["chrono_backtracks"] & _CHRONO_MASK:
                        _JOURNAL.record(
                            "solver.chrono",
                            backtracks=stats["chrono_backtracks"],
                            propagations=stats["propagations"],
                        )
                    continue
                self._act_inc /= _ACTIVITY_DECAY
                conflicts_here += 1
                learned, backjump, lbd = self._analyze(conflict)
                if (level - backjump > _CHRONO_JUMP_LIMIT
                        and level - 1 > num_assumptions):
                    # A huge backjump tears down a trail chronological
                    # stepping can keep; the learned clause is unit at
                    # level - 1 too (every non-UIP literal sits at or
                    # below the backjump level).
                    backjump = level - 1
                    stats["chrono_backtracks"] += 1
                    if not stats["chrono_backtracks"] & _CHRONO_MASK:
                        _JOURNAL.record(
                            "solver.chrono",
                            backtracks=stats["chrono_backtracks"],
                            propagations=stats["propagations"],
                        )
                self._backtrack(backjump)
                self._learn(learned, lbd)
                continue
            if conflicts_here and (
                conflicts_here >= restart_limit
                or (
                    self._lbd_count >= _LBD_WARMUP
                    and conflicts_here >= self.restart_base
                    and self._lbd_fast > self._lbd_slow * 1.25
                )
            ):
                stats["restarts"] += 1
                _JOURNAL.record(
                    "solver.restart",
                    restarts=stats["restarts"],
                    conflicts=stats["conflicts"],
                    learned=len(self._learned_refs),
                )
                self._luby_index += 1
                restart_limit = 2 * self.restart_base * _luby(self._luby_index)
                self._restart_limit = restart_limit
                conflicts_here = 0
                self._backtrack(0)
                # fall through: assumptions are re-asserted by the
                # decision loop below; trail saving and phases replay
                # the useful prefix cheaply
            if len(self._learned_refs) >= self._max_learned:
                self._reduce_db()
            depth = len(trail_lim)
            if depth < num_assumptions:
                lit = assumptions[depth]
                value = assign[lit]
                if value is None:
                    trail_lim.append(len(trail))
                    self._enqueue(lit)
                elif value:
                    # Dummy level: keeps level k <-> assumption k aligned.
                    trail_lim.append(len(trail))
                else:
                    # The assumption is falsified by the others + the DB.
                    stats["propagations"] += propagated
                    self._conflict_core = self._analyze_final(lit)
                    self._backtrack(0)
                    return None
                continue
            saved = self._saved
            spos = self._saved_pos
            send = len(saved)
            if spos < send:
                # Skip the already-re-derived prefix inline; the real
                # replay machinery only runs when an unassigned saved
                # entry is actually pending.
                while spos < send and assign[saved[spos]] is not None:
                    spos += 2
                self._saved_pos = spos
                if spos < send:
                    if not stats["conflicts"]:
                        # The solver has never had a conflict, so every
                        # activity is still zero and the replay gate
                        # ("no strictly better heap candidate") holds
                        # trivially -- replay inline without consulting
                        # the heap or the replay machinery.
                        lit = saved[spos]
                        ref = saved[spos + 1]
                        var = lit if lit > 0 else -lit
                        if ref and (
                            arena[ref] == lit or arena[ref + 1] == lit
                        ):
                            size = arena[ref - 1]
                            for k in range(ref, ref + size):
                                q = arena[k]
                                if q != lit and assign[q] is not False:
                                    break
                            else:
                                # Still unit on lit: re-propagate with
                                # the saved reason, no decision level.
                                if arena[ref] != lit:
                                    arena[ref + 1] = arena[ref]
                                    arena[ref] = lit
                                assign[lit] = True
                                assign[-lit] = False
                                levels[var] = len(trail_lim)
                                reasons[var] = ref
                                trail.append(lit)
                                propagated += 1
                                stats["saved_trail_literals"] += 1
                                self._saved_pos = spos + 2
                                continue
                        stats["decisions"] += 1
                        trail_lim.append(len(trail))
                        assign[lit] = True
                        assign[-lit] = False
                        levels[var] = len(trail_lim)
                        reasons[var] = 0
                        trail.append(lit)
                        propagated += 1
                        self._saved_pos = spos + 2
                        continue
                    if self._replay_saved():
                        continue
            num = self._num_vars
            if len(trail) == num:
                # Every variable is assigned, so the assignment *is* the
                # model; the trail is kept, and saved phases need no
                # refresh because ``_backtrack`` records polarities as
                # literals are popped.  Detecting this from the trail
                # length skips draining stale heap entries and the
                # all-vars fallback scan on the per-model hot path.
                # The model dict is rebuilt incrementally: only vars
                # unassigned since the last model (tracked by
                # ``_backtrack``) can have changed value, so patch those
                # into the persistent mirror and hand out a copy.
                master = self._model_master
                if master is None or len(master) != num:
                    master = dict(zip(range(1, num + 1), assign[1:num + 1]))
                    self._model_master = master
                else:
                    for v in self._dirty_vars:
                        master[v] = assign[v]
                self._dirty_vars.clear()
                self._last_model = master
                self._model_size = num
                self._assumed = assumptions
                stats["propagations"] += propagated
                return master.copy()
            var = None
            free = self._free
            if free:
                if stats["conflicts"]:
                    # Activities exist now: merge the zero-activity pool
                    # back into the heap so VSIDS order is respected.
                    activity = self._activity
                    heap = self._heap
                    for v in free:
                        if assign[v] is None:
                            heappush(heap, (-activity[v], v))
                    del free[:]
                else:
                    while free:
                        v = free.pop()
                        if assign[v] is None:
                            var = v
                            break
            if var is None:
                heap = self._heap
                while heap:
                    v = heappop(heap)[1]
                    if assign[v] is None:
                        var = v
                        break
                if var is None:
                    for v in range(1, num + 1):  # safety net
                        if assign[v] is None:
                            var = v
                            break
            stats["decisions"] += 1
            trail_lim.append(len(trail))
            lit = var if self._phase[var] else -var
            assign[lit] = True
            assign[-lit] = False
            levels[var] = len(trail_lim)
            reasons[var] = 0
            trail.append(lit)
            propagated += 1

    # ------------------------------------------------------------------
    # Trail saving
    # ------------------------------------------------------------------

    def _replay_saved(self):
        """Replay the saved trail suffix at a decision point.

        Saved propagations whose reason clause is still unit on their
        literal re-propagate at the current level without a decision;
        a saved decision is re-decided only while its activity still
        matches the branching heap's preference (otherwise replaying
        would neuter restarts).  Returns True when anything was enqueued
        (the caller must propagate before replaying further); a literal
        saved one way but now assigned the other way invalidates the
        whole suffix.
        """
        saved = self._saved
        pos = self._saved_pos
        end = len(saved)
        assign = self._assign
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        trail_lim = self._trail_lim
        stats = self.stats
        enqueued = False
        while pos < end:
            lit = saved[pos]
            if assign[lit] is not None:
                # Already re-derived (True) or the search flipped it
                # (False): either way this entry carries no work.
                pos += 2
                continue
            ref = saved[pos + 1]
            if ref:
                # Still a valid unit implication?  The literal must still
                # be watched (guards against watch migration) and every
                # other literal of the reason must be false.
                if arena[ref] == lit or arena[ref + 1] == lit:
                    size = arena[ref - 1]
                    for k in range(ref, ref + size):
                        q = arena[k]
                        if q != lit and assign[q] is not False:
                            break
                    else:
                        if arena[ref] != lit:
                            arena[ref + 1] = arena[ref]
                            arena[ref] = lit
                        var = lit if lit > 0 else -lit
                        assign[lit] = True
                        assign[-lit] = False
                        levels[var] = len(trail_lim)
                        reasons[var] = ref
                        trail.append(lit)
                        stats["propagations"] += 1
                        stats["saved_trail_literals"] += 1
                        pos += 2
                        enqueued = True
                        continue
            # A saved decision, or a propagation whose reason is no
            # longer unit: re-decide the literal while the branching
            # heap has no strictly better candidate (van der Tak trail
            # reuse -- without the gate, replaying would neuter
            # restarts).
            top = self._peek_branch()
            lit_var = lit if lit > 0 else -lit
            activity = self._activity
            if top is None or activity[lit_var] >= activity[top]:
                stats["decisions"] += 1
                trail_lim.append(len(trail))
                self._enqueue(lit)
                pos += 2
                enqueued = True
                break  # propagate before replaying further
            # The heap outgrew the suffix: drop the rest.
            self._saved = []
            pos = 0
            break
        self._saved_pos = pos
        return enqueued

    def _peek_branch(self):
        """The unassigned variable the branch heap would pick next."""
        heap = self._heap
        assign = self._assign
        while heap and assign[heap[0][1]] is not None:
            heappop(heap)
        return heap[0][1] if heap else None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP analysis: learned clause, backjump level, and LBD.

        Resolves the conflicting clause backward along the trail on the
        recorded antecedents until exactly one literal of the conflict
        level remains.  The learned clause is ``[-UIP] + rest`` with the
        deepest literal of ``rest`` in the first-watch slot, asserting at
        ``max(level(rest))``.
        """
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        current = len(self._trail_lim)
        seen = set()
        learned = [0]  # slot 0 becomes the asserting (negated UIP) literal
        counter = 0
        index = len(trail)
        p = None
        ref = conflict
        start = 0  # the conflict clause contributes every literal
        while True:
            size = arena[ref - 1]
            for k in range(ref + start, ref + size):
                q = arena[k]
                var = q if q > 0 else -q
                if var in seen:
                    continue
                lvl = levels[var]
                if lvl == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if lvl == current:
                    counter += 1
                else:
                    learned.append(q)
            while True:
                index -= 1
                p = trail[index]
                if (p if p > 0 else -p) in seen:
                    break
            counter -= 1
            if counter == 0:
                break
            ref = reasons[p if p > 0 else -p]
            start = 1  # antecedent slot 0 is the resolved literal itself
        learned[0] = -p
        if len(learned) > 2:
            self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0, 1
        max_i = 1
        max_lvl = levels[abs(learned[1])]
        for i in range(2, len(learned)):
            lvl = levels[abs(learned[i])]
            if lvl > max_lvl:
                max_lvl = lvl
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        lbd = len({levels[abs(q)] for q in learned[1:]}) + 1
        return learned, max_lvl, lbd

    def _minimize(self, learned, seen):
        """Recursive clause minimization: drop dominated literals.

        A literal is redundant when every path of its antecedent subgraph
        terminates in a level-0 fact or another literal of the clause
        (``seen`` doubles as the memo of proven-redundant variables).
        """
        kept = [learned[0]]
        removed = 0
        for lit in learned[1:]:
            if self._redundant(lit, seen):
                removed += 1
            else:
                kept.append(lit)
        if removed:
            self.stats["minimized_literals"] += removed
            learned[:] = kept

    def _redundant(self, lit, seen):
        arena = self._arena
        reasons = self._reasons
        levels = self._levels
        reason = reasons[lit if lit > 0 else -lit]
        if not reason:
            return False  # a decision (or assumption): not derivable
        stack = [reason]
        added = []
        while stack:
            ref = stack.pop()
            size = arena[ref - 1]
            for k in range(ref + 1, ref + size):
                q = arena[k]
                var = q if q > 0 else -q
                if var in seen or levels[var] == 0:
                    continue
                antecedent = reasons[var]
                if not antecedent:
                    for v in added:
                        seen.discard(v)
                    return False
                seen.add(var)
                added.append(var)
                stack.append(antecedent)
        return True

    def _learn(self, learned, lbd):
        """Store the analyzed clause and assert its UIP literal."""
        self.stats["learned_clauses"] += 1
        self._lbd_fast += (lbd - self._lbd_fast) * 0.03125
        self._lbd_slow += (lbd - self._lbd_slow) * 0.000244140625
        self._lbd_count += 1
        if len(learned) == 1:
            self._enqueue(learned[0])
            return
        ref = self._attach(learned, True, lbd)
        self._enqueue(learned[0], ref)

    def _analyze_final(self, lit):
        """Assumptions responsible for the assumption ``lit`` being false.

        Walks the implication graph backward from ``-lit`` (which is on
        the trail): every reached pseudo-decision is an assumption of the
        current solve and joins the core; propagated literals expand into
        their antecedents.  Level-0 facts never contribute.  Must run
        before the failing trail is backtracked away.
        """
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        var = lit if lit > 0 else -lit
        core = {lit}
        if levels[var] == 0 or not self._trail_lim:
            # ``-lit`` is a permanent consequence of the database: the
            # assumption conflicts with the DB all by itself.
            return (lit,)
        seen = {var}
        start = self._trail_lim[0]
        for trail_lit in reversed(self._trail[start:]):
            trail_var = trail_lit if trail_lit > 0 else -trail_lit
            if trail_var not in seen:
                continue
            reason = reasons[trail_var]
            if not reason:
                core.add(trail_lit)  # a pseudo-decision == an assumption
                continue
            size = arena[reason - 1]
            for k in range(reason + 1, reason + size):
                # slot 0 is the propagated literal itself
                q = arena[k]
                q_var = q if q > 0 else -q
                if levels[q_var] > 0:
                    seen.add(q_var)
        # Preserve the caller's assumption order (lit is among them).
        return tuple(a for a in self._assumptions if a in core)

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _reduce_db(self):
        """Delete the worst half of the learned clauses (by LBD, length).

        Binary clauses, glue clauses (LBD <= 2), and clauses locked as the
        reason of a current assignment survive.  Deleted clause bodies
        stay in the arena (no compaction), so crefs remembered by the
        saved trail keep reading valid -- and still implied -- literals.
        The cap grows geometrically after every reduction, so only
        finitely many deletions can ever happen on a fixed instance
        (termination).
        """
        arena = self._arena
        reasons = self._reasons
        learned = self._learned_refs
        locked = set()
        for lit in self._trail:
            ref = reasons[lit if lit > 0 else -lit]
            if ref:
                locked.add(ref)
        learned.sort(key=lambda ref: (arena[ref - 2], arena[ref - 1]))
        keep = len(learned) // 2
        kept = []
        deleted = set()
        for i, ref in enumerate(learned):
            if (i < keep or arena[ref - 2] <= 2 or arena[ref - 1] == 2
                    or ref in locked):
                kept.append(ref)
            else:
                deleted.add(ref)
        if deleted:
            self._learned_refs = kept
            for watchers in self._watchlists:
                if watchers:
                    write = 0
                    for read in range(0, len(watchers), 2):
                        ref = watchers[read]
                        if ref not in deleted:
                            watchers[write] = ref
                            watchers[write + 1] = watchers[read + 1]
                            write += 2
                    del watchers[write:]
            self.stats["deleted_clauses"] += len(deleted)
            _JOURNAL.record(
                "solver.reduce_db",
                deleted=len(deleted),
                kept=len(kept),
                total_deleted=self.stats["deleted_clauses"],
            )
        self._max_learned = int(self._max_learned * self._reduce_growth) + 1

    # ------------------------------------------------------------------
    # Propagation / trail
    # ------------------------------------------------------------------

    def _enqueue(self, lit, reason=0):
        assign = self._assign
        value = assign[lit]
        if value is not None:
            return value
        assign[lit] = True
        assign[-lit] = False
        var = lit if lit > 0 else -lit
        self._levels[var] = len(self._trail_lim)
        if reason:
            self._reasons[var] = reason
        self._trail.append(lit)
        self.stats["propagations"] += 1
        return True

    def _propagate(self):
        """Propagate until fixpoint; return a conflicting cref or 0.

        Watcher lists are flat ``[cref, blocker, ...]`` int pairs edited
        in place (swap-remove); a true blocker skips the clause with a
        single probe, clause literals are read straight out of the arena,
        and unit enqueues are inlined.
        """
        assign = self._assign
        watchlists = self._watchlists
        arena = self._arena
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        depth = len(self._trail_lim)
        qhead = self._qhead
        enqueued = 0
        conflict = 0
        while qhead < len(trail):
            false_lit = -trail[qhead]
            qhead += 1
            watchers = watchlists[false_lit]
            if not watchers:
                continue
            i = 0
            end = len(watchers)
            while i < end:
                if assign[watchers[i + 1]] is True:
                    i += 2  # blocker satisfied: clause already true
                    continue
                ref = watchers[i]
                first = arena[ref]
                if first == false_lit:
                    first = arena[ref + 1]
                    arena[ref] = first
                    arena[ref + 1] = false_lit
                value = assign[first]
                if value is True:
                    watchers[i + 1] = first  # cache the satisfied watch
                    i += 2
                    continue
                size = arena[ref - 1]
                for k in range(ref + 2, ref + size):
                    other = arena[k]
                    if assign[other] is not False:
                        arena[ref + 1] = other
                        arena[k] = false_lit
                        moved = watchlists[other]
                        moved.append(ref)
                        moved.append(first)
                        break
                else:
                    if value is False:
                        conflict = ref  # both watches false
                        break
                    assign[first] = True  # clause is unit
                    assign[-first] = False
                    var = first if first > 0 else -first
                    levels[var] = depth
                    reasons[var] = ref
                    trail.append(first)
                    enqueued += 1
                    i += 2
                    continue
                end -= 2  # watch moved: swap-remove from this list
                watchers[i] = watchers[end]
                watchers[i + 1] = watchers[end + 1]
                del watchers[end:]
            if conflict:
                break
        self._qhead = qhead
        self.stats["propagations"] += enqueued
        return conflict

    def _backtrack(self, depth):
        if len(self._trail_lim) <= depth:
            return
        target = self._trail_lim[depth]
        trail = self._trail
        assign = self._assign
        reasons = self._reasons
        phase = self._phase
        activity = self._activity
        heap = self._heap
        # Remember the popped suffix (with reasons) for trail saving --
        # each backtrack overwrites the previous snapshot -- and unwind
        # in the same pass (pop order is unobservable mid-backtrack).
        saved = []
        push = saved.append
        dirty = self._dirty_vars
        free = self._free
        for lit in trail[target:]:
            var = lit if lit > 0 else -lit
            push(lit)
            push(reasons[var])
            dirty.append(var)
            phase[var] = lit > 0
            assign[lit] = None
            assign[-lit] = None
            reasons[var] = 0
            act = activity[var]
            if act:
                heappush(heap, (-act, var))
            else:
                free.append(var)
        self._saved = saved
        self._saved_pos = 0
        del trail[target:]
        del self._trail_lim[depth:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # Branching heuristic
    # ------------------------------------------------------------------

    def _bump(self, var):
        activity = self._activity
        bumped = activity[var] + self._act_inc
        activity[var] = bumped
        if bumped > _ACTIVITY_LIMIT:
            scale = 1.0 / _ACTIVITY_LIMIT
            for v in range(1, self._num_vars + 1):
                activity[v] *= scale
            self._act_inc *= scale
            bumped = activity[var]
        if self._assign[var] is None:
            heappush(self._heap, (-bumped, var))

    def _pick_branch(self):
        heap = self._heap
        assign = self._assign
        while heap:
            _, var = heappop(heap)
            if assign[var] is None:
                return var
        for var in range(1, self._num_vars + 1):  # safety net
            if assign[var] is None:
                return var
        return None


def solve_cnf(clauses, num_vars=0):
    """One-shot convenience wrapper around :class:`SatSolver`."""
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
