"""An iterative CDCL SAT solver over CNF clauses.

Clauses are lists of non-zero integers; a positive integer ``v`` is the
variable ``v``, a negative integer its negation (DIMACS convention).

The engine implements the conflict-driven machinery the lazy SMT loop
actually needs to be fast (the MiniSat/Glucose lineage):

* **two-watched-literal propagation with blocker literals** -- each clause
  watches two of its literals, so propagation touches only the clauses
  whose watch just became false; every watcher entry carries a cached
  *blocker* literal whose truth lets the visit skip the clause without
  touching it at all (the overwhelmingly common case in blocking-clause
  enumeration loops);
* **flat array state** -- assignment truth is a single list indexed by
  *literal* (negative literals index from the end, so ``assign[lit]`` is
  the truth of the literal itself: ``True``/``False``/``None``), and
  levels, reasons, phases, and activities are lists indexed by variable;
  there is no Python recursion anywhere, so solving never depends on the
  interpreter recursion limit;
* **first-UIP conflict analysis** -- on conflict the implication graph is
  walked backward from the conflicting clause, resolving on the clause
  antecedents recorded per enqueue, until a single literal of the
  conflict level remains (the first unique implication point).  The
  learned clause asserts the negated UIP at its computed backjump level;
* **recursive learned-clause minimization** -- literals of the learned
  clause whose antecedent subgraph is dominated by the rest of the clause
  (every path terminates in clause literals or level-0 facts) are dropped
  before the clause is stored;
* **an LBD-scored learned-clause database with periodic reduction** --
  learned clauses carry their literal-block distance (number of distinct
  decision levels); when the database outgrows its cap the worst half
  (highest LBD, then longest) is deleted, keeping binary, glue
  (LBD <= 2), and reason-locked clauses, and the cap grows geometrically
  so completeness is preserved;
* **Luby restarts with phase saving preserved** -- the search restarts
  after ``restart_base * luby(i)`` conflicts; saved phases make the
  restarted search replay the useful prefix cheaply;
* **VSIDS branching with exponential decay** -- variables involved in
  conflict analysis get their activity bumped and the bump grows
  geometrically per conflict (equivalent to decaying all activities),
  with a rescale of the whole table once counters approach overflow,
  implemented as a lazy max-heap tolerant of stale entries;
* **incremental solving under assumptions with trail reuse** --
  ``solve(assumptions)`` asserts assumptions as pseudo-decisions below the
  search; watch lists, learned clauses, and saved phases persist across
  calls, and the trail itself is kept between calls whenever it is still
  consistent (same assumption prefix, or clause additions that only
  backjump as far as the new clause requires), so blocking-clause
  enumeration loops do not re-derive the shared propagation prefix on
  every call.
"""

from __future__ import annotations

from heapq import heappop, heappush

_ACTIVITY_DECAY = 0.95
_ACTIVITY_LIMIT = 1e100


class Clause(list):
    """A clause in the database: the literal list plus learning metadata.

    Positions 0 and 1 are the watched literals.  While the clause is the
    recorded reason of an assignment, position 0 holds the propagated
    literal (conflict analysis relies on this invariant).
    """

    __slots__ = ("learned", "lbd", "deleted")


def _make_clause(literals, learned=False, lbd=0):
    clause = Clause(literals)
    clause.learned = learned
    clause.lbd = lbd
    clause.deleted = False
    return clause


def _luby(i):
    """The ``i``-th term (1-based) of the Luby sequence: 1 1 2 1 1 2 4 ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class SatSolver:
    """Incremental CDCL solver (watched literals, first-UIP, restarts)."""

    def __init__(self, restart_base=64, reduce_base=300, reduce_growth=1.15):
        self._clauses = []  # permanent clause database
        self._learned_clauses = []  # deletable (learned / lemma) clauses
        self._watches = {}  # literal -> [[clause, blocker], ...]
        self._num_vars = 0
        self._cap = 64  # allocated variable capacity of ``_assign``
        self._assign = [None] * (2 * self._cap + 1)  # literal -> truth
        self._levels = [0]  # var -> decision level of the assignment
        self._reasons = [None]  # var -> antecedent Clause (propagations)
        self._phase = [False]  # var -> saved polarity
        self._activity = [0.0]  # var -> VSIDS activity
        self._trail = []  # assigned literals in assignment order
        self._trail_lim = []  # trail length at the start of each level
        self._qhead = 0  # propagation frontier into the trail
        self._pending = []  # unit literals awaiting top-level propagation
        self._unsat = False  # the database is unsatisfiable outright
        self._act_inc = 1.0
        self._heap = []  # lazy max-heap of (-activity, var)
        self._last_model = None  # snapshot of the most recent SAT solve
        self._assumptions = []  # assumptions of the solve in progress
        self._assumed = []  # assumptions backing the kept trail (last SAT)
        self._conflict_core = None  # failed-assumption core of the last UNSAT
        self.restart_base = restart_base
        self._luby_index = 1
        self._max_learned = reduce_base
        self._reduce_growth = reduce_growth
        self.stats = {
            "solve_calls": 0,
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "learned_clauses": 0,
            "restarts": 0,
            "deleted_clauses": 0,
            "minimized_literals": 0,
            "assumption_cores": 0,
            "core_literals": 0,
        }

    @property
    def num_vars(self):
        return self._num_vars

    def model(self):
        """A copy of the most recent satisfying assignment, or None.

        The snapshot is taken when :meth:`solve` returns SAT and is
        cleared by an UNSAT result.  Adding clauses does not invalidate
        the snapshot -- it describes the database as of the last solve.
        """
        return dict(self._last_model) if self._last_model is not None else None

    def new_var(self):
        self.ensure_vars(self._num_vars + 1)
        return self._num_vars

    def ensure_vars(self, count):
        if count <= self._num_vars:
            return
        if count > self._cap:
            new_cap = max(count, 2 * self._cap)
            fresh = [None] * (2 * new_cap + 1)
            assign = self._assign
            for var in range(1, self._num_vars + 1):
                fresh[var] = assign[var]
                fresh[-var] = assign[-var]
            self._assign = fresh
            self._cap = new_cap
        levels = self._levels
        reasons = self._reasons
        phase = self._phase
        activity = self._activity
        watches = self._watches
        heap = self._heap
        for var in range(self._num_vars + 1, count + 1):
            levels.append(0)
            reasons.append(None)
            phase.append(False)
            activity.append(0.0)
            watches[var] = []
            watches[-var] = []
            heappush(heap, (0.0, var))
        self._num_vars = count

    # ------------------------------------------------------------------
    # Clause addition
    # ------------------------------------------------------------------

    def add_clause(self, literals):
        """Add a permanent clause; an empty clause makes the DB UNSAT.

        Clauses may be added between ``solve`` calls; the watch lists and
        everything learned so far are kept.  The clause is simplified
        against the permanent (level-0) assignment on the way in, and the
        trail is only unwound as far as the new clause forces (a clause
        falsified by the current assignment triggers a backjump to the
        level where it becomes unit, not a full restart) -- this is what
        makes blocking-clause enumeration loops incremental.
        """
        self._add(literals, learned=False)

    def add_learned_clause(self, literals):
        """Add a deletable clause (a lemma, e.g. a theory blocking clause).

        Semantically identical to :meth:`add_clause`, but the clause joins
        the learned database and may be dropped by a later reduction; use
        for clauses that are *implied* (re-derivable) rather than part of
        the problem.
        """
        self._add(literals, learned=True)

    def _add(self, literals, learned):
        litset = set(literals)
        top_var = 0
        for lit in litset:
            if -lit in litset:
                return  # tautology
            var = lit if lit > 0 else -lit
            if var > top_var:
                top_var = var
        self.ensure_vars(top_var)
        assign = self._assign
        levels = self._levels
        while True:
            # One pass: simplify against level-0 facts and classify the
            # rest against the current (possibly deep) assignment.
            non_false = []
            false_lits = []
            top = 0  # deepest false-literal level
            deepest = 0  # a false literal at that level
            for lit in litset:
                value = assign[lit]
                if value is None:
                    non_false.append(lit)
                    continue
                lvl = levels[lit if lit > 0 else -lit]
                if value:
                    if lvl == 0:
                        return  # satisfied by a permanent assignment
                    non_false.append(lit)
                    continue
                if lvl == 0:
                    continue  # permanently false literal; drop it
                false_lits.append(lit)
                if lvl > top:
                    top = lvl
                    deepest = lit
            if len(non_false) >= 2:
                clause = _make_clause(non_false + false_lits, learned,
                                      lbd=len(non_false) + len(false_lits))
                self._attach(clause)
                return
            if not false_lits:
                self._backtrack(0)
                if not non_false:
                    self._unsat = True
                else:
                    self._pending.append(non_false[0])
                return
            if len(non_false) == 1:
                # Unit (or already satisfied) under the current assignment:
                # watch the non-false literal plus the deepest false one
                # (a false second watch is sound here because the clause is
                # being satisfied through the first watch right now; the
                # deepest choice un-falsifies the watch soonest on churn).
                w0 = non_false[0]
                ordered = [w0, deepest]
                ordered += [l for l in false_lits if l is not deepest]
                made = _make_clause(ordered, learned, lbd=len(ordered))
                self._attach(made)
                if assign[w0] is None:
                    self._enqueue(w0, made)
                return
            if len(false_lits) == 1:
                self._backtrack(0)
                self._pending.append(false_lits[0])
                return
            # Falsified by the current assignment: unwind just the deepest
            # level, which un-falsifies the clause with minimal disruption
            # (it becomes unit there when a single literal sat on top, and
            # the re-classification pass then asserts it as a consequence).
            # A surviving trail prefix still asserts the same assumption
            # prefix (backjumps only pop a suffix), so ``_assumed`` stays
            # valid -- ``solve`` clamps it by the remaining level count.
            self._backtrack(top - 1)

    def _attach(self, clause):
        if clause.learned:
            self._learned_clauses.append(clause)
        else:
            self._clauses.append(clause)
        first, second = clause[0], clause[1]
        self._watches[first].append([clause, second])
        self._watches[second].append([clause, first])
        return clause

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self, assumptions=()):
        """Return a model as {var: bool}, or None if unsatisfiable.

        ``assumptions`` hold only for this call; clauses learned under
        them are derived by resolution from the database alone, so
        everything learned stays valid for every future call.  The trail
        of a SAT result is kept; the next call backtracks only to the
        longest assumption prefix shared with this one (full reuse for
        assumption-free enumeration loops).

        After an UNSAT result :meth:`unsat_core` names the subset of
        ``assumptions`` actually responsible.
        """
        self.stats["solve_calls"] += 1
        self._last_model = None
        self._conflict_core = None
        assumptions = list(assumptions)
        result = self._solve_under(assumptions)
        if result is None:
            if self._conflict_core is None:
                self._conflict_core = ()
            if assumptions:
                self.stats["assumption_cores"] += 1
                self.stats["core_literals"] += len(self._conflict_core)
        return result

    def unsat_core(self):
        """The failed-assumption core of the most recent UNSAT solve.

        Returns a tuple: a subset of the last ``solve`` call's assumptions
        such that the clause database conjoined with just those literals
        is already unsatisfiable (empty when the database alone is UNSAT).
        Returns None when the most recent solve was satisfiable.  The core
        is *a* small explanation, not guaranteed minimal -- it is read off
        the final implication graph (MiniSat's ``analyzeFinal``), so it
        costs no extra solving.
        """
        if self._conflict_core is None:
            return None
        return tuple(self._conflict_core)

    def _solve_under(self, assumptions):
        if self._unsat:
            return None
        for lit in assumptions:
            self.ensure_vars(lit if lit > 0 else -lit)
        if self._pending:
            self._backtrack(0)
            self._assumed = []
            while self._pending:
                if not self._enqueue(self._pending.pop()):
                    self._unsat = True
                    return None
            if self._propagate() is not None:
                self._unsat = True
                return None
        if assumptions or self._assumed:
            # Keep the trail prefix whose pseudo-decision levels assert the
            # same assumptions as this call; everything above must go.
            shared = 0
            old = self._assumed
            limit = min(len(assumptions), len(old), len(self._trail_lim))
            while shared < limit and assumptions[shared] == old[shared]:
                shared += 1
            self._backtrack(shared)
        self._assumed = []
        self._assumptions = assumptions
        return self._search()

    def _search(self):
        assumptions = self._assumptions
        num_assumptions = len(assumptions)
        assign = self._assign
        conflicts_here = 0
        restart_limit = self.restart_base * _luby(self._luby_index)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats["conflicts"] += 1
                self._act_inc /= _ACTIVITY_DECAY
                conflicts_here += 1
                if not self._trail_lim:
                    # Conflict with no decisions at all: the DB is UNSAT.
                    self._unsat = True
                    return None
                learned, backjump, lbd = self._analyze(conflict)
                self._backtrack(backjump)
                self._learn(learned, lbd)
                continue
            if conflicts_here >= restart_limit:
                self.stats["restarts"] += 1
                self._luby_index += 1
                restart_limit = self.restart_base * _luby(self._luby_index)
                conflicts_here = 0
                self._backtrack(0)
                # fall through: assumptions are re-asserted by the
                # decision loop below, phases replay the useful prefix
            if len(self._learned_clauses) >= self._max_learned:
                self._reduce_db()
            depth = len(self._trail_lim)
            if depth < num_assumptions:
                lit = assumptions[depth]
                value = assign[lit]
                if value is None:
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit)
                elif value:
                    # Dummy level: keeps level k <-> assumption k aligned.
                    self._trail_lim.append(len(self._trail))
                else:
                    # The assumption is falsified by the others + the DB.
                    self._conflict_core = self._analyze_final(lit)
                    self._backtrack(0)
                    return None
                continue
            var = self._pick_branch()
            if var is None:
                # Every variable is assigned (the branch heap has a full
                # safety-net scan), so the assignment *is* the model; the
                # trail is kept, and saved phases need no refresh because
                # ``_backtrack`` records polarities as literals are popped.
                num = self._num_vars
                model = dict(zip(range(1, num + 1), assign[1:num + 1]))
                self._last_model = dict(model)  # caller may mutate theirs
                self._assumed = assumptions
                return model
            self.stats["decisions"] += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(var if self._phase[var] else -var)

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------

    def _analyze(self, conflict):
        """First-UIP analysis: learned clause, backjump level, and LBD.

        Resolves the conflicting clause backward along the trail on the
        recorded antecedents until exactly one literal of the conflict
        level remains.  The learned clause is ``[-UIP] + rest`` with the
        deepest literal of ``rest`` in the first-watch slot, asserting at
        ``max(level(rest))``.
        """
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        current = len(self._trail_lim)
        seen = set()
        learned = [0]  # slot 0 becomes the asserting (negated UIP) literal
        counter = 0
        index = len(trail)
        p = None
        reason_lits = conflict
        start = 0  # the conflict clause contributes every literal
        while True:
            for k in range(start, len(reason_lits)):
                q = reason_lits[k]
                var = q if q > 0 else -q
                if var in seen:
                    continue
                lvl = levels[var]
                if lvl == 0:
                    continue
                seen.add(var)
                self._bump(var)
                if lvl == current:
                    counter += 1
                else:
                    learned.append(q)
            while True:
                index -= 1
                p = trail[index]
                if (p if p > 0 else -p) in seen:
                    break
            counter -= 1
            if counter == 0:
                break
            reason_lits = reasons[p if p > 0 else -p]
            start = 1  # antecedent slot 0 is the resolved literal itself
        learned[0] = -p
        if len(learned) > 2:
            self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0, 1
        max_i = 1
        max_lvl = levels[abs(learned[1])]
        for i in range(2, len(learned)):
            lvl = levels[abs(learned[i])]
            if lvl > max_lvl:
                max_lvl = lvl
                max_i = i
        learned[1], learned[max_i] = learned[max_i], learned[1]
        lbd = len({levels[abs(q)] for q in learned[1:]}) + 1
        return learned, max_lvl, lbd

    def _minimize(self, learned, seen):
        """Recursive clause minimization: drop dominated literals.

        A literal is redundant when every path of its antecedent subgraph
        terminates in a level-0 fact or another literal of the clause
        (``seen`` doubles as the memo of proven-redundant variables).
        """
        kept = [learned[0]]
        removed = 0
        for lit in learned[1:]:
            if self._redundant(lit, seen):
                removed += 1
            else:
                kept.append(lit)
        if removed:
            self.stats["minimized_literals"] += removed
            learned[:] = kept

    def _redundant(self, lit, seen):
        reasons = self._reasons
        levels = self._levels
        reason = reasons[lit if lit > 0 else -lit]
        if reason is None:
            return False  # a decision (or assumption): not derivable
        stack = [reason]
        added = []
        while stack:
            clause = stack.pop()
            for k in range(1, len(clause)):
                q = clause[k]
                var = q if q > 0 else -q
                if var in seen or levels[var] == 0:
                    continue
                antecedent = reasons[var]
                if antecedent is None:
                    for v in added:
                        seen.discard(v)
                    return False
                seen.add(var)
                added.append(var)
                stack.append(antecedent)
        return True

    def _learn(self, learned, lbd):
        """Store the analyzed clause and assert its UIP literal."""
        self.stats["learned_clauses"] += 1
        if len(learned) == 1:
            self._enqueue(learned[0])
            return
        clause = _make_clause(learned, learned=True, lbd=lbd)
        self._attach(clause)
        self._enqueue(learned[0], clause)

    def _analyze_final(self, lit):
        """Assumptions responsible for the assumption ``lit`` being false.

        Walks the implication graph backward from ``-lit`` (which is on
        the trail): every reached pseudo-decision is an assumption of the
        current solve and joins the core; propagated literals expand into
        their antecedents.  Level-0 facts never contribute.  Must run
        before the failing trail is backtracked away.
        """
        levels = self._levels
        reasons = self._reasons
        var = lit if lit > 0 else -lit
        core = {lit}
        if levels[var] == 0 or not self._trail_lim:
            # ``-lit`` is a permanent consequence of the database: the
            # assumption conflicts with the DB all by itself.
            return (lit,)
        seen = {var}
        start = self._trail_lim[0]
        for trail_lit in reversed(self._trail[start:]):
            trail_var = trail_lit if trail_lit > 0 else -trail_lit
            if trail_var not in seen:
                continue
            reason = reasons[trail_var]
            if reason is None:
                core.add(trail_lit)  # a pseudo-decision == an assumption
                continue
            for q in reason[1:]:  # slot 0 is the propagated literal itself
                q_var = q if q > 0 else -q
                if levels[q_var] > 0:
                    seen.add(q_var)
        # Preserve the caller's assumption order (lit is among them).
        return tuple(a for a in self._assumptions if a in core)

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _reduce_db(self):
        """Delete the worst half of the learned clauses (by LBD, length).

        Binary clauses, glue clauses (LBD <= 2), and clauses locked as the
        reason of a current assignment survive.  The cap grows
        geometrically after every reduction, so only finitely many
        deletions can ever happen on a fixed instance (termination).
        """
        learned = self._learned_clauses
        reasons = self._reasons
        locked = set()
        for lit in self._trail:
            reason = reasons[lit if lit > 0 else -lit]
            if reason is not None:
                locked.add(id(reason))
        learned.sort(key=lambda c: (c.lbd, len(c)))
        keep = len(learned) // 2
        kept = []
        deleted = 0
        for i, clause in enumerate(learned):
            if (i < keep or clause.lbd <= 2 or len(clause) == 2
                    or id(clause) in locked):
                kept.append(clause)
            else:
                clause.deleted = True
                deleted += 1
        if deleted:
            self._learned_clauses = kept
            watches = self._watches
            for lit, watchers in watches.items():
                if watchers:
                    watches[lit] = [
                        entry for entry in watchers if not entry[0].deleted
                    ]
            self.stats["deleted_clauses"] += deleted
        self._max_learned = int(self._max_learned * self._reduce_growth) + 1

    # ------------------------------------------------------------------
    # Propagation / trail
    # ------------------------------------------------------------------

    def _enqueue(self, lit, reason=None):
        assign = self._assign
        value = assign[lit]
        if value is not None:
            return value
        assign[lit] = True
        assign[-lit] = False
        var = lit if lit > 0 else -lit
        self._levels[var] = len(self._trail_lim)
        if reason is not None:
            self._reasons[var] = reason
        self._trail.append(lit)
        self.stats["propagations"] += 1
        return True

    def _propagate(self):
        """Propagate until fixpoint; return a conflicting clause or None.

        Watcher entries are ``[clause, blocker]`` pairs edited in place
        (swap-remove); a true blocker skips the clause with a single
        array probe, and unit enqueues are inlined.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        depth = len(self._trail_lim)
        qhead = self._qhead
        enqueued = 0
        conflict = None
        while qhead < len(trail):
            false_lit = -trail[qhead]
            qhead += 1
            watchers = watches[false_lit]
            if not watchers:
                continue
            i = 0
            end = len(watchers)
            while i < end:
                entry = watchers[i]
                if assign[entry[1]] is True:
                    i += 1  # blocker satisfied: clause already true
                    continue
                clause = entry[0]
                first = clause[0]
                if first == false_lit:
                    first = clause[1]
                    clause[0] = first
                    clause[1] = false_lit
                value = assign[first]
                if value is True:
                    entry[1] = first  # cache the satisfied watch
                    i += 1
                    continue
                for k in range(2, len(clause)):
                    other = clause[k]
                    if assign[other] is not False:
                        clause[1] = other
                        clause[k] = false_lit
                        watches[other].append(entry)
                        break
                else:
                    if value is False:
                        conflict = clause  # both watches false
                        break
                    assign[first] = True  # clause is unit
                    assign[-first] = False
                    var = first if first > 0 else -first
                    levels[var] = depth
                    reasons[var] = clause
                    trail.append(first)
                    enqueued += 1
                    i += 1
                    continue
                end -= 1  # watch moved: swap-remove from this list
                watchers[i] = watchers[end]
                watchers.pop()
            if conflict is not None:
                break
        self._qhead = qhead
        self.stats["propagations"] += enqueued
        return conflict

    def _backtrack(self, depth):
        if len(self._trail_lim) <= depth:
            return
        target = self._trail_lim[depth]
        trail = self._trail
        assign = self._assign
        reasons = self._reasons
        phase = self._phase
        activity = self._activity
        heap = self._heap
        for lit in reversed(trail[target:]):
            var = lit if lit > 0 else -lit
            phase[var] = lit > 0
            assign[lit] = None
            assign[-lit] = None
            reasons[var] = None
            heappush(heap, (-activity[var], var))
        del trail[target:]
        del self._trail_lim[depth:]
        self._qhead = len(trail)

    # ------------------------------------------------------------------
    # Branching heuristic
    # ------------------------------------------------------------------

    def _bump(self, var):
        activity = self._activity
        bumped = activity[var] + self._act_inc
        activity[var] = bumped
        if bumped > _ACTIVITY_LIMIT:
            scale = 1.0 / _ACTIVITY_LIMIT
            for v in range(1, self._num_vars + 1):
                activity[v] *= scale
            self._act_inc *= scale
            bumped = activity[var]
        if self._assign[var] is None:
            heappush(self._heap, (-bumped, var))

    def _pick_branch(self):
        heap = self._heap
        assign = self._assign
        while heap:
            _, var = heappop(heap)
            if assign[var] is None:
                return var
        for var in range(1, self._num_vars + 1):  # safety net
            if assign[var] is None:
                return var
        return None


def solve_cnf(clauses, num_vars=0):
    """One-shot convenience wrapper around :class:`SatSolver`."""
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver.solve()
