"""Tseitin transformation: Boolean structure -> equisatisfiable CNF.

The input is a formula whose atoms have already been abstracted to integer
propositional literals (see :mod:`repro.solver.atoms`); this module only
deals with the AND/OR/NOT skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CnfBuilder:
    """Accumulates CNF clauses and allocates auxiliary variables.

    With a ``sink`` callable the builder streams each clause straight into
    the consumer (typically ``SatSolver.add_clause``) instead of buffering
    it, so the encoder and the solver share no intermediate clause list.
    """

    num_vars: int = 0
    clauses: list = field(default_factory=list)
    sink: object = None

    def new_var(self):
        self.num_vars += 1
        return self.num_vars

    def add(self, clause):
        if self.sink is not None:
            self.sink(clause)
        else:
            self.clauses.append(list(clause))


# Skeleton node kinds, produced by the atom abstraction layer:
#   ("lit", int)            -- an atom literal (or constant via dedicated var)
#   ("and", [children])     -- conjunction
#   ("or", [children])      -- disjunction
#   ("not", child)          -- negation


def encode(skeleton, builder):
    """Encode ``skeleton`` and return a literal equivalent to it.

    Uses full (bidirectional) Tseitin encoding so that the same CNF can be
    reused under differing assumption polarities.
    """
    kind = skeleton[0]
    if kind == "lit":
        return skeleton[1]
    if kind == "not":
        return -encode(skeleton[1], builder)
    child_lits = [encode(child, builder) for child in skeleton[1]]
    if not child_lits:
        raise ValueError("empty junction in skeleton")
    if len(child_lits) == 1:
        return child_lits[0]
    out = builder.new_var()
    if kind == "and":
        for lit in child_lits:
            builder.add([-out, lit])
        builder.add([out] + [-lit for lit in child_lits])
        return out
    if kind == "or":
        for lit in child_lits:
            builder.add([out, -lit])
        builder.add([-out] + child_lits)
        return out
    raise ValueError(f"unknown skeleton kind {kind!r}")


def assert_skeleton(skeleton, builder):
    """Encode ``skeleton`` and assert it true (add its root as unit clause)."""
    root = encode(skeleton, builder)
    builder.add([root])
    return root
