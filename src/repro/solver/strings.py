"""Equality + LIKE theory for string-typed terms.

Implements a union-find over string terms with constant propagation:
equalities merge classes, disequalities and LIKE atoms are checked against
class representatives.  Sound for UNSAT; may report SAT for exotic LIKE
combinations it cannot refute (acceptable -- see DESIGN.md).

:func:`find_model` additionally produces a concrete assignment (term ->
str): each equivalence class takes its pinned constant if it has one,
else an instantiation of its positive LIKE patterns, else a fresh token,
always checked against the class's disequalities and negative patterns.
The witness subsystem turns these into concrete column values.
"""

from __future__ import annotations

from repro.logic.evaluate import sql_like
from repro.logic.terms import Const


class UnionFind:
    """Classic union-find keyed by hashable items."""

    def __init__(self):
        self._parent = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def same(self, a, b):
        return self.find(a) == self.find(b)


def _pattern_matches_everything(pattern):
    return pattern != "" and all(ch == "%" for ch in pattern)


def _pattern_matches_nothing(pattern):
    # Every LIKE pattern matches at least one string (replace % by "" and
    # _ by any character), so no pattern is empty-language.
    return False


def check_strings(equalities, disequalities, likes):
    """Decide a conjunction of string atoms.

    ``equalities``/``disequalities``: iterables of (term, term) pairs.
    ``likes``: iterable of (term, pattern_string, positive_bool).
    Returns True if the conjunction is (believed) satisfiable, False if it
    is definitely unsatisfiable.
    """
    uf = UnionFind()
    for left, right in equalities:
        uf.union(left, right)

    # Wildcard-free LIKE is just equality with a constant.
    residual_likes = []
    for term, pattern, positive in likes:
        if positive and "%" not in pattern and "_" not in pattern:
            uf.union(term, Const.of(pattern))
        else:
            residual_likes.append((term, pattern, positive))

    # Each class may contain at most one distinct constant value.
    class_const = {}
    for item in list(uf._parent):
        if isinstance(item, Const):
            root = uf.find(item)
            if root in class_const and class_const[root].value != item.value:
                return False
            class_const.setdefault(root, item)

    for left, right in disequalities:
        if uf.same(left, right):
            return False
        lc = class_const.get(uf.find(left))
        rc = class_const.get(uf.find(right))
        if lc is not None and rc is not None and lc.value == rc.value:
            return False

    positive_patterns = {}
    for term, pattern, positive in residual_likes:
        root = uf.find(term)
        const = class_const.get(root)
        if const is not None:
            if sql_like(const.value, pattern) != positive:
                return False
            continue
        if positive:
            if _pattern_matches_nothing(pattern):
                return False
            positive_patterns.setdefault(root, []).append(pattern)
        else:
            if _pattern_matches_everything(pattern):
                return False

    # Conflicting positive patterns on the same class: only the cheap check
    # of identical-prefix/suffix wildcard-free fragments is attempted; when
    # unsure we report SAT (sound for Qr-Hint's usage).
    for patterns in positive_patterns.values():
        literal_full = [p for p in patterns if "%" not in p and "_" not in p]
        if len(set(literal_full)) > 1:
            return False
    return True


# ----------------------------------------------------------------------
# Model extraction
# ----------------------------------------------------------------------

_FILLERS = ("", "x", "z", "x1", "x2", "zz", "q9")


def _instantiate(pattern, filler):
    """One concrete string matching ``pattern`` (``%``->filler, ``_``->a)."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(filler)
        elif ch == "_":
            out.append("a")
        else:
            out.append(ch)
    return "".join(out)


def find_model(equalities, disequalities, likes):
    """A satisfying assignment {term: str}, or None.

    Exactly as optimistic as :func:`check_strings`: whenever the checker
    would report SAT, this tries to realize a model, giving up (None) only
    on genuinely conflicting pattern combinations it cannot instantiate.
    """
    uf = UnionFind()
    terms = set()
    for left, right in equalities:
        uf.union(left, right)
        terms.update((left, right))
    for left, right in disequalities:
        terms.update((left, right))

    residual_likes = []
    for term, pattern, positive in likes:
        terms.add(term)
        if positive and "%" not in pattern and "_" not in pattern:
            const = Const.of(pattern)
            uf.union(term, const)
            terms.add(const)
        else:
            residual_likes.append((term, pattern, positive))

    class_const = {}
    for item in list(uf._parent) + [t for t in terms if isinstance(t, Const)]:
        if isinstance(item, Const):
            root = uf.find(item)
            if root in class_const and class_const[root].value != item.value:
                return None
            class_const.setdefault(root, item)

    positive_patterns = {}
    negative_patterns = {}
    for term, pattern, positive in residual_likes:
        root = uf.find(term)
        target = positive_patterns if positive else negative_patterns
        target.setdefault(root, []).append(pattern)

    diseq_roots = []
    for left, right in disequalities:
        left_root, right_root = uf.find(left), uf.find(right)
        if left_root == right_root:
            return None
        diseq_roots.append((left_root, right_root))

    values = {}  # class root -> chosen string

    def admissible(root, value):
        for pattern in positive_patterns.get(root, ()):
            if not sql_like(value, pattern):
                return False
        for pattern in negative_patterns.get(root, ()):
            if sql_like(value, pattern):
                return False
        for a, b in diseq_roots:
            other = b if a == root else (a if b == root else None)
            if other is None:
                continue
            if other in values and values[other] == value:
                return False
            if other in class_const and str(class_const[other].value) == value:
                return False
        return True

    # Pinned classes first (no choice), then free classes deterministically.
    roots = sorted({uf.find(t) for t in terms},
                   key=lambda r: (r not in class_const, str(r)))
    fresh = 0
    for root in roots:
        if root in class_const:
            value = str(class_const[root].value)
            if not admissible(root, value):
                return None
            values[root] = value
            continue
        patterns = positive_patterns.get(root)
        if patterns:
            candidates = [_instantiate(patterns[0], f) for f in _FILLERS]
        else:
            candidates = [f"w{fresh + i}" for i in range(len(_FILLERS))]
            fresh += 1
        for value in candidates:
            if admissible(root, value):
                values[root] = value
                break
        else:
            return None

    return {term: values[uf.find(term)] for term in terms}
