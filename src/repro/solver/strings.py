"""Equality + LIKE theory for string-typed terms.

Implements a union-find over string terms with constant propagation:
equalities merge classes, disequalities and LIKE atoms are checked against
class representatives.  Sound for UNSAT; may report SAT for exotic LIKE
combinations it cannot refute (acceptable -- see DESIGN.md).
"""

from __future__ import annotations

from repro.logic.evaluate import sql_like
from repro.logic.terms import Const


class UnionFind:
    """Classic union-find keyed by hashable items."""

    def __init__(self):
        self._parent = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def same(self, a, b):
        return self.find(a) == self.find(b)


def _pattern_matches_everything(pattern):
    return pattern != "" and all(ch == "%" for ch in pattern)


def _pattern_matches_nothing(pattern):
    # Every LIKE pattern matches at least one string (replace % by "" and
    # _ by any character), so no pattern is empty-language.
    return False


def check_strings(equalities, disequalities, likes):
    """Decide a conjunction of string atoms.

    ``equalities``/``disequalities``: iterables of (term, term) pairs.
    ``likes``: iterable of (term, pattern_string, positive_bool).
    Returns True if the conjunction is (believed) satisfiable, False if it
    is definitely unsatisfiable.
    """
    uf = UnionFind()
    for left, right in equalities:
        uf.union(left, right)

    # Wildcard-free LIKE is just equality with a constant.
    residual_likes = []
    for term, pattern, positive in likes:
        if positive and "%" not in pattern and "_" not in pattern:
            uf.union(term, Const.of(pattern))
        else:
            residual_likes.append((term, pattern, positive))

    # Each class may contain at most one distinct constant value.
    class_const = {}
    for item in list(uf._parent):
        if isinstance(item, Const):
            root = uf.find(item)
            if root in class_const and class_const[root].value != item.value:
                return False
            class_const.setdefault(root, item)

    for left, right in disequalities:
        if uf.same(left, right):
            return False
        lc = class_const.get(uf.find(left))
        rc = class_const.get(uf.find(right))
        if lc is not None and rc is not None and lc.value == rc.value:
            return False

    positive_patterns = {}
    for term, pattern, positive in residual_likes:
        root = uf.find(term)
        const = class_const.get(root)
        if const is not None:
            if sql_like(const.value, pattern) != positive:
                return False
            continue
        if positive:
            if _pattern_matches_nothing(pattern):
                return False
            positive_patterns.setdefault(root, []).append(pattern)
        else:
            if _pattern_matches_everything(pattern):
                return False

    # Conflicting positive patterns on the same class: only the cheap check
    # of identical-prefix/suffix wildcard-free fragments is attempted; when
    # unsure we report SAT (sound for Qr-Hint's usage).
    for patterns in positive_patterns.values():
        literal_full = [p for p in patterns if "%" not in p and "_" not in p]
        if len(set(literal_full)) > 1:
            return False
    return True
