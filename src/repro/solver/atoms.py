"""Atom canonicalization: SQL comparisons -> theory payloads + polarity.

Every atomic predicate is normalized into one of three theory classes:

* numeric  -- linearizable comparisons, normalized to ``expr <= 0`` /
  ``expr = 0`` with a positive, unit leading coefficient, so that
  syntactically different but trivially equivalent atoms (``a+1 = b+1`` vs
  ``a = b``, ``x < y`` vs ``y > x``) share one propositional variable, and
  an atom and its complement map to the same variable with opposite
  polarity;
* string   -- equality/LIKE over string terms;
* opaque   -- anything else (non-linear arithmetic, exotic operands); such
  atoms are treated as free propositional variables, which is sound for
  UNSAT-side conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.catalog import SqlType
from repro.logic.linear import LinExpr, try_linearize
from repro.logic.terms import Const


@dataclass(frozen=True)
class Atom:
    """A canonical theory atom."""

    kind: str  # "num_le" | "num_eq" | "str_eq" | "str_like" | "opaque"
    payload: object

    def __str__(self):
        return f"{self.kind}:{self.payload}"


@dataclass(frozen=True)
class CanonicalLiteral:
    """A canonical atom plus the polarity of the original comparison."""

    atom: Atom
    positive: bool


def _normalize_le(expr):
    """Scale ``expr <= 0`` by a positive factor for a unit leading coeff."""
    if not expr.coeffs:
        return expr
    lead = abs(expr.coeffs[0][1])
    return expr.scale(Fraction(1) / lead)


def _normalize_eq(expr):
    """Scale ``expr = 0`` so the leading coefficient is exactly +1."""
    if not expr.coeffs:
        return expr
    lead = expr.coeffs[0][1]
    return expr.scale(Fraction(1) / lead)


def canonicalize(comparison):
    """Canonicalize a :class:`Comparison` into a literal, or a constant.

    Returns either a :class:`CanonicalLiteral` or a bool (when the atom is
    variable-free and decides immediately).
    """
    op = comparison.op
    left, right = comparison.left, comparison.right

    if op in ("LIKE", "NOT LIKE"):
        positive = op == "LIKE"
        if isinstance(right, Const) and right.type == SqlType.STRING:
            if isinstance(left, Const):
                from repro.logic.evaluate import sql_like

                return sql_like(left.value, right.value) == positive
            atom = Atom("str_like", (left, str(right.value)))
            return CanonicalLiteral(atom, positive)
        atom = Atom("opaque", ("LIKE", str(left), str(right)))
        return CanonicalLiteral(atom, positive)

    string_sides = left.type == SqlType.STRING and right.type == SqlType.STRING
    if op in ("=", "<>") and string_sides:
        positive = op == "="
        key = tuple(sorted((left, right), key=str))
        if isinstance(left, Const) and isinstance(right, Const):
            return (left.value == right.value) == positive
        return CanonicalLiteral(Atom("str_eq", key), positive)

    lin_left = try_linearize(left) if left.type.is_numeric else None
    lin_right = try_linearize(right) if right.type.is_numeric else None
    if lin_left is not None and lin_right is not None:
        expr = lin_left.sub(lin_right)  # comparison is: expr op 0
        if expr.is_constant:
            value = expr.constant
            return {
                "=": value == 0,
                "<>": value != 0,
                "<": value < 0,
                "<=": value <= 0,
                ">": value > 0,
                ">=": value >= 0,
            }[op]
        if op in ("=", "<>"):
            atom = Atom("num_eq", _normalize_eq(expr))
            return CanonicalLiteral(atom, op == "=")
        if op == "<=":
            return CanonicalLiteral(Atom("num_le", _normalize_le(expr)), True)
        if op == ">":
            return CanonicalLiteral(Atom("num_le", _normalize_le(expr)), False)
        if op == ">=":
            negated = _normalize_le(expr.negate())
            return CanonicalLiteral(Atom("num_le", negated), True)
        if op == "<":
            negated = _normalize_le(expr.negate())
            return CanonicalLiteral(Atom("num_le", negated), False)

    # Fallback: opaque propositional atom.  Normalize op polarity so that an
    # atom and its negation share a variable.
    if op in ("<>", ">", ">="):
        flipped = comparison.negated()
        return CanonicalLiteral(
            Atom("opaque", (flipped.op, str(flipped.left), str(flipped.right))),
            False,
        )
    return CanonicalLiteral(Atom("opaque", (op, str(left), str(right))), True)
