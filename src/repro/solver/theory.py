"""Theory consistency checking for conjunctions of canonical literals.

The lazy SMT loop hands this module a full truth assignment over the
canonical atoms; we dispatch the numeric literals to the Fourier-Motzkin
solver and the string literals to the union-find/LIKE solver.  Opaque atoms
are unconstrained and always consistent.
"""

from __future__ import annotations

from repro.solver import arith, strings
from repro.solver.arith import Constraint, EQ, LE, LT


def check_literals(literals):
    """Return True iff the conjunction of (Atom, positive) pairs is SAT."""
    polarity_seen = {}
    for atom, positive in literals:
        if polarity_seen.setdefault(atom, positive) != positive:
            return False  # the same atom asserted both ways

    numeric_constraints = []
    numeric_disequalities = []
    string_equalities = []
    string_disequalities = []
    string_likes = []

    for atom, positive in literals:
        kind = atom.kind
        if kind == "num_le":
            expr = atom.payload
            if positive:
                numeric_constraints.append(Constraint(expr, LE))
            else:
                numeric_constraints.append(Constraint(expr.negate(), LT))
        elif kind == "num_eq":
            expr = atom.payload
            if positive:
                numeric_constraints.append(Constraint(expr, EQ))
            else:
                numeric_disequalities.append(expr)
        elif kind == "str_eq":
            pair = atom.payload
            if positive:
                string_equalities.append(pair)
            else:
                string_disequalities.append(pair)
        elif kind == "str_like":
            term, pattern = atom.payload
            string_likes.append((term, pattern, positive))
        elif kind == "opaque":
            continue
        else:
            raise ValueError(f"unknown atom kind {kind!r}")

    if numeric_constraints or numeric_disequalities:
        if not arith.is_satisfiable(numeric_constraints, numeric_disequalities):
            return False
    if string_equalities or string_disequalities or string_likes:
        if not strings.check_strings(
            string_equalities, string_disequalities, string_likes
        ):
            return False
    return True
