"""Theory consistency checking for conjunctions of canonical literals.

The lazy SMT loop hands this module a full truth assignment over the
canonical atoms; we dispatch the numeric literals to the Fourier-Motzkin
solver and the string literals to the union-find/LIKE solver.  Opaque atoms
are unconstrained and always consistent.

:func:`find_model` runs the same dispatch but asks each theory for a
concrete assignment; the merged term valuation (plus a completeness flag
that records whether opaque atoms were ignored) backs the counterexample
witness subsystem.
"""

from __future__ import annotations

from repro.solver import arith, strings
from repro.solver.arith import Constraint, EQ, LE, LT


def _partition(literals):
    """Split literals into per-theory constraint lists.

    Returns ``(numeric_constraints, numeric_disequalities, string_equalities,
    string_disequalities, string_likes, opaque_count)``, or None when the
    same atom is asserted with both polarities.
    """
    polarity_seen = {}
    for atom, positive in literals:
        if polarity_seen.setdefault(atom, positive) != positive:
            return None  # the same atom asserted both ways

    numeric_constraints = []
    numeric_disequalities = []
    string_equalities = []
    string_disequalities = []
    string_likes = []
    opaque_count = 0

    for atom, positive in literals:
        kind = atom.kind
        if kind == "num_le":
            expr = atom.payload
            if positive:
                numeric_constraints.append(Constraint(expr, LE))
            else:
                numeric_constraints.append(Constraint(expr.negate(), LT))
        elif kind == "num_eq":
            expr = atom.payload
            if positive:
                numeric_constraints.append(Constraint(expr, EQ))
            else:
                numeric_disequalities.append(expr)
        elif kind == "str_eq":
            pair = atom.payload
            if positive:
                string_equalities.append(pair)
            else:
                string_disequalities.append(pair)
        elif kind == "str_like":
            term, pattern = atom.payload
            string_likes.append((term, pattern, positive))
        elif kind == "opaque":
            opaque_count += 1
        else:
            raise ValueError(f"unknown atom kind {kind!r}")
    return (
        numeric_constraints,
        numeric_disequalities,
        string_equalities,
        string_disequalities,
        string_likes,
        opaque_count,
    )


def check_literals(literals):
    """Return True iff the conjunction of (Atom, positive) pairs is SAT."""
    parts = _partition(literals)
    if parts is None:
        return False
    (numeric_constraints, numeric_disequalities, string_equalities,
     string_disequalities, string_likes, _) = parts

    if numeric_constraints or numeric_disequalities:
        if not arith.is_satisfiable(numeric_constraints, numeric_disequalities):
            return False
    if string_equalities or string_disequalities or string_likes:
        if not strings.check_strings(
            string_equalities, string_disequalities, string_likes
        ):
            return False
    return True


def find_model(literals):
    """A concrete valuation realizing the literal conjunction, or None.

    Returns ``(values, complete)`` where ``values`` maps base terms (Vars,
    AggCalls, string terms) to Fractions/strings and ``complete`` is False
    when opaque atoms were present (they are ignored, so the valuation does
    not guarantee them -- callers must verify end to end).
    """
    parts = _partition(literals)
    if parts is None:
        return None
    (numeric_constraints, numeric_disequalities, string_equalities,
     string_disequalities, string_likes, opaque_count) = parts

    values = {}
    if numeric_constraints or numeric_disequalities:
        numeric = arith.find_model(numeric_constraints, numeric_disequalities)
        if numeric is None:
            return None
        values.update(numeric)
    if string_equalities or string_disequalities or string_likes:
        stringy = strings.find_model(
            string_equalities, string_disequalities, string_likes
        )
        if stringy is None:
            return None
        values.update(stringy)
    return values, opaque_count == 0
