"""SMT solver substrate: SAT core + arithmetic/string theories + facade."""

from repro.solver.smt import (
    Solver,
    TheoryModel,
    default_solver,
    is_equiv,
    is_satisfiable,
    is_unsatisfiable,
)

__all__ = [
    "Solver",
    "TheoryModel",
    "default_solver",
    "is_equiv",
    "is_satisfiable",
    "is_unsatisfiable",
]
