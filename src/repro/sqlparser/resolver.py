"""Name resolution: unresolved SQL AST -> :class:`ResolvedQuery`.

Resolution qualifies every column reference against the FROM aliases,
assigns SQL types from the catalog, converts expressions into logic terms
and conditions into formulas, and enforces the validity rules of the
supported fragment (aggregates only in HAVING/SELECT, HAVING references
only grouped columns or aggregates, ...).
"""

from __future__ import annotations

from fractions import Fraction

from repro.catalog import SqlType
from repro.errors import ResolutionError, TypeError_, UnsupportedSQLError
from repro.logic.formulas import Comparison, TRUE, conj, disj, neg
from repro.logic.terms import AggCall, Arith, Const, Neg, Var
from repro.query import FromEntry, ResolvedQuery
from repro.sqlparser import ast
from repro.sqlparser.parser import parse


class Resolver:
    def __init__(self, catalog, statement):
        self.catalog = catalog
        self.statement = statement
        self.entries = []
        self.alias_tables = {}

    def resolve(self):
        self._resolve_from()
        where = self._resolve_condition(self.statement.where, allow_agg=False)
        group_by = tuple(
            self._resolve_term(e, allow_agg=False) for e in self.statement.group_by
        )
        grouped = self._grouped_context(group_by)
        having = self._resolve_condition(
            self.statement.having, allow_agg=True, grouped=grouped
        )
        select_terms = []
        select_aliases = []
        for item in self.statement.select_items:
            term = self._resolve_term(item.expr, allow_agg=True)
            select_terms.append(term)
            select_aliases.append(item.alias)
        query = ResolvedQuery(
            from_entries=tuple(self.entries),
            where=where,
            group_by=group_by,
            having=having,
            select=tuple(select_terms),
            select_aliases=tuple(select_aliases),
            distinct=self.statement.distinct,
        )
        self._check_grouping_validity(query, grouped)
        return query

    # -- FROM -------------------------------------------------------------

    def _resolve_from(self):
        for ref in self.statement.from_tables:
            table = self.catalog.table(ref.table)
            if table is None:
                raise ResolutionError(f"unknown table {ref.table!r}")
            alias = (ref.alias or ref.table).lower()
            if alias in self.alias_tables:
                raise ResolutionError(f"duplicate alias {alias!r} in FROM")
            self.alias_tables[alias] = table
            self.entries.append(FromEntry(table.name, alias))

    # -- columns ------------------------------------------------------------

    def _resolve_column(self, ref):
        if ref.qualifier is not None:
            alias = ref.qualifier.lower()
            table = self.alias_tables.get(alias)
            if table is None:
                raise ResolutionError(f"unknown table alias {ref.qualifier!r}")
            column = table.column(ref.column)
            if column is None:
                raise ResolutionError(
                    f"no column {ref.column!r} in {table.name} (alias {alias})"
                )
            return Var(f"{alias}.{column.name.lower()}", column.type)
        matches = []
        for alias, table in self.alias_tables.items():
            column = table.column(ref.column)
            if column is not None:
                matches.append((alias, column))
        if not matches:
            raise ResolutionError(f"unknown column {ref.column!r}")
        if len(matches) > 1:
            aliases = ", ".join(alias for alias, _ in matches)
            raise ResolutionError(
                f"ambiguous column {ref.column!r} (candidates: {aliases})"
            )
        alias, column = matches[0]
        return Var(f"{alias}.{column.name.lower()}", column.type)

    # -- terms --------------------------------------------------------------

    def _resolve_term(self, expr, allow_agg, inside_agg=False):
        if isinstance(expr, ast.ColumnRef):
            return self._resolve_column(expr)
        if isinstance(expr, ast.NumberLit):
            if "." in expr.text:
                return Const(
                    Fraction(expr.text).limit_denominator(10**9), SqlType.FLOAT
                )
            return Const(Fraction(int(expr.text)), SqlType.INT)
        if isinstance(expr, ast.StringLit):
            return Const(expr.value, SqlType.STRING)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "-":
            return Neg(self._resolve_term(expr.operand, allow_agg, inside_agg))
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("+", "-", "*", "/"):
            left = self._resolve_term(expr.left, allow_agg, inside_agg)
            right = self._resolve_term(expr.right, allow_agg, inside_agg)
            if not (left.type.is_numeric and right.type.is_numeric):
                raise TypeError_(f"arithmetic over non-numeric operands: {expr}")
            return Arith(expr.op, left, right)
        if isinstance(expr, ast.FuncCall):
            if not allow_agg:
                raise UnsupportedSQLError(
                    f"aggregate {expr.name} not allowed in this clause"
                )
            if inside_agg:
                raise UnsupportedSQLError("nested aggregates are not supported")
            arg = None
            if expr.arg is not None:
                arg = self._resolve_term(expr.arg, allow_agg=False, inside_agg=True)
                if expr.name in ("SUM", "AVG") and not arg.type.is_numeric:
                    raise TypeError_(f"{expr.name} over non-numeric argument")
            return AggCall(expr.name, arg, expr.distinct)
        raise UnsupportedSQLError(f"unsupported expression {expr}")

    # -- conditions ---------------------------------------------------------

    def _resolve_condition(self, expr, allow_agg, grouped=None):
        if expr is None:
            return TRUE
        return self._condition(expr, allow_agg)

    def _condition(self, expr, allow_agg):
        if isinstance(expr, ast.BoolLit):
            return TRUE if expr.value else ~TRUE
        if isinstance(expr, ast.BinaryExpr) and expr.op in ("AND", "OR"):
            left = self._condition(expr.left, allow_agg)
            right = self._condition(expr.right, allow_agg)
            return conj(left, right) if expr.op == "AND" else disj(left, right)
        if isinstance(expr, ast.UnaryExpr) and expr.op == "NOT":
            return neg(self._condition(expr.operand, allow_agg))
        if isinstance(expr, ast.BinaryExpr) and expr.op in (
            "=",
            "<>",
            "<",
            "<=",
            ">",
            ">=",
            "LIKE",
            "NOT LIKE",
        ):
            left = self._resolve_term(expr.left, allow_agg)
            right = self._resolve_term(expr.right, allow_agg)
            self._check_comparison_types(expr.op, left, right)
            return Comparison(expr.op, left, right)
        raise UnsupportedSQLError(f"unsupported condition {expr}")

    def _check_comparison_types(self, op, left, right):
        if op in ("LIKE", "NOT LIKE"):
            if left.type != SqlType.STRING or right.type != SqlType.STRING:
                raise TypeError_(f"LIKE requires string operands: {left} {op} {right}")
            return
        if left.type.is_numeric and right.type.is_numeric:
            return
        if left.type == right.type:
            return
        raise TypeError_(f"type mismatch: {left} ({left.type}) {op} {right} ({right.type})")

    # -- grouping validity ----------------------------------------------------

    def _grouped_context(self, group_by):
        return set(group_by)

    def _check_grouping_validity(self, query, grouped):
        if not query.is_spja or (not query.group_by and not query.having.has_aggregate()
                                 and not any(t.has_aggregate() for t in query.select)):
            return
        if not query.group_by and query.having == TRUE:
            # Pure aggregation without GROUP BY: SELECT must be all-aggregate.
            return
        grouped_vars = set()
        for term in query.group_by:
            grouped_vars |= term.variables()
        for atom in query.having.atoms():
            for side in (atom.left, atom.right):
                self._check_grouped_term(side, query.group_by, grouped_vars, "HAVING")

    def _check_grouped_term(self, term, group_by, grouped_vars, clause):
        if term in group_by:
            return
        if isinstance(term, AggCall):
            return
        if isinstance(term, Var):
            if term not in grouped_vars:
                raise UnsupportedSQLError(
                    f"{clause} references non-grouped column {term}"
                )
            return
        for child in term.children():
            self._check_grouped_term(child, group_by, grouped_vars, clause)


def resolve(statement, catalog):
    """Resolve a parsed statement against a catalog."""
    return Resolver(catalog, statement).resolve()


def parse_query(text, catalog):
    """Parse and resolve SQL text in one step."""
    return resolve(parse(text), catalog)
