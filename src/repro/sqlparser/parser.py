"""Recursive-descent parser for single-block SPJ/SPJA SQL.

Grammar (informal), matching the fragment of the paper (Section 3):

    select_stmt := SELECT [DISTINCT] select_item (, select_item)*
                   FROM table_ref (, table_ref)*
                   [WHERE condition]
                   [GROUP BY expr (, expr)*]
                   [HAVING condition]
    condition   := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | predicate
    predicate   := expr (cmp_op expr | [NOT] LIKE expr) | TRUE | FALSE
                 | '(' condition ')'
    expr        := term ((+|-) term)*
    term        := factor ((*|/) factor)*
    factor      := '-' factor | primary
    primary     := number | string | column_ref | agg_call | '(' expr ')'
"""

from __future__ import annotations

from repro.errors import ParseError, UnsupportedSQLError
from repro.sqlparser.ast import (
    BinaryExpr,
    BoolLit,
    ColumnRef,
    FuncCall,
    NumberLit,
    SelectItem,
    SelectStatement,
    StringLit,
    TableRef,
    UnaryExpr,
)
from repro.sqlparser.lexer import tokenize

AGG_NAMES = {"SUM", "AVG", "COUNT", "MIN", "MAX"}
COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}


class Parser:
    def __init__(self, text):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.current
        self.pos += 1
        return token

    def expect_keyword(self, name):
        if not self.current.is_keyword(name):
            raise ParseError(f"expected {name}", self.current.position)
        return self.advance()

    def expect_op(self, op):
        if not self.current.is_op(op):
            raise ParseError(f"expected {op!r}", self.current.position)
        return self.advance()

    def accept_keyword(self, *names):
        if self.current.is_keyword(*names):
            return self.advance()
        return None

    def accept_op(self, *ops):
        if self.current.is_op(*ops):
            return self.advance()
        return None

    # -- statement ------------------------------------------------------

    def parse_select(self):
        self.expect_keyword("SELECT")
        stmt = SelectStatement()
        stmt.distinct = bool(self.accept_keyword("DISTINCT"))
        stmt.select_items.append(self._select_item())
        while self.accept_op(","):
            stmt.select_items.append(self._select_item())
        self.expect_keyword("FROM")
        stmt.from_tables.append(self._table_ref())
        while self.accept_op(","):
            stmt.from_tables.append(self._table_ref())
        if self.accept_keyword("WHERE"):
            stmt.where = self._condition()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by.append(self._expr())
            while self.accept_op(","):
                stmt.group_by.append(self._expr())
        if self.accept_keyword("HAVING"):
            stmt.having = self._condition()
        if self.accept_keyword("ORDER"):
            raise UnsupportedSQLError("ORDER BY is outside the supported fragment")
        if self.current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return stmt

    def _select_item(self):
        if self.current.is_op("*"):
            raise UnsupportedSQLError("SELECT * is not supported; list columns")
        expr = self._expr()
        alias = None
        if self.accept_keyword("AS"):
            token = self.advance()
            if token.kind != "ident":
                raise ParseError("expected alias after AS", token.position)
            alias = token.value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _table_ref(self):
        token = self.advance()
        if token.kind != "ident":
            raise ParseError("expected table name", token.position)
        alias = None
        if self.accept_keyword("AS"):
            alias_token = self.advance()
            if alias_token.kind != "ident":
                raise ParseError("expected alias after AS", alias_token.position)
            alias = alias_token.value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return TableRef(token.value, alias)

    # -- conditions -----------------------------------------------------

    def _condition(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_keyword("OR"):
            right = self._and_expr()
            left = BinaryExpr("OR", left, right)
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept_keyword("AND"):
            right = self._not_expr()
            left = BinaryExpr("AND", left, right)
        return left

    def _not_expr(self):
        if self.accept_keyword("NOT"):
            return UnaryExpr("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self):
        if self.accept_keyword("TRUE"):
            return BoolLit(True)
        if self.accept_keyword("FALSE"):
            return BoolLit(False)
        # Parenthesized sub-condition vs parenthesized arithmetic: parse a
        # condition and let comparison chaining below resolve ambiguity.
        if self.current.is_op("("):
            checkpoint = self.pos
            self.advance()
            try:
                inner = self._condition()
                self.expect_op(")")
            except ParseError:
                self.pos = checkpoint
            else:
                if self._at_comparison():
                    # It was actually a parenthesized arithmetic expression.
                    self.pos = checkpoint
                else:
                    return inner
        left = self._expr()
        return self._comparison_tail(left)

    def _at_comparison(self):
        if self.current.is_op(*COMPARISON_OPS):
            return True
        if self.current.is_keyword("LIKE"):
            return True
        if self.current.is_keyword("NOT") and self.tokens[self.pos + 1].is_keyword(
            "LIKE"
        ):
            return True
        # Arithmetic continuation means the parenthesized unit was a term.
        return self.current.is_op("+", "-", "*", "/")

    def _comparison_tail(self, left):
        if self.accept_keyword("LIKE"):
            return BinaryExpr("LIKE", left, self._expr())
        if self.current.is_keyword("NOT"):
            save = self.pos
            self.advance()
            if self.accept_keyword("LIKE"):
                return BinaryExpr("NOT LIKE", left, self._expr())
            self.pos = save
        for op in ("<=", ">=", "<>", "=", "<", ">"):
            if self.accept_op(op):
                return BinaryExpr(op, left, self._expr())
        raise ParseError("expected comparison operator", self.current.position)

    # -- arithmetic -----------------------------------------------------

    def _expr(self):
        left = self._term()
        while True:
            token = self.accept_op("+", "-")
            if token is None:
                return left
            left = BinaryExpr(token.value, left, self._term())

    def _term(self):
        left = self._factor()
        while True:
            token = self.accept_op("*", "/")
            if token is None:
                return left
            left = BinaryExpr(token.value, left, self._factor())

    def _factor(self):
        if self.accept_op("-"):
            return UnaryExpr("-", self._factor())
        if self.accept_op("+"):
            return self._factor()
        return self._primary()

    def _primary(self):
        token = self.current
        if token.kind == "number":
            self.advance()
            return NumberLit(token.value)
        if token.kind == "string":
            self.advance()
            return StringLit(token.value)
        if token.is_op("("):
            self.advance()
            expr = self._expr()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            return self._identifier_expr()
        raise ParseError(f"unexpected token {token.value!r}", token.position)

    def _identifier_expr(self):
        name_token = self.advance()
        name = name_token.value
        if name.upper() in AGG_NAMES and self.current.is_op("("):
            self.advance()
            distinct = bool(self.accept_keyword("DISTINCT"))
            if self.accept_op("*"):
                arg = None
            else:
                arg = self._expr()
            self.expect_op(")")
            return FuncCall(name.upper(), arg, distinct)
        if self.current.is_op("("):
            raise UnsupportedSQLError(f"unsupported function {name!r}")
        if self.accept_op("."):
            column_token = self.advance()
            if column_token.kind not in ("ident", "keyword"):
                raise ParseError("expected column name", column_token.position)
            return ColumnRef(name, column_token.value)
        return ColumnRef(None, name)


def parse(text):
    """Parse SQL text into a :class:`SelectStatement`."""
    return Parser(text).parse_select()
