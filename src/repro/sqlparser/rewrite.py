"""Single-block rewrites: WITH and aggregation-free FROM subqueries.

Paper footnote 2: queries with common table expressions and
aggregation-free subqueries in FROM can be rewritten into single-block SQL
and handled as such.  This module implements that flattening at the AST
level, before resolution:

* every ``WITH name AS (SELECT ...)`` body is inlined at each use site;
* every aggregation-free ``FROM (SELECT ...) alias`` is merged into the
  outer block -- its FROM entries are spliced in (with alias renaming to
  avoid capture), its WHERE is conjoined, and references to the subquery's
  output columns are replaced by the defining expressions.

Subqueries with grouping, aggregation, or DISTINCT raise
:class:`UnsupportedSQLError`, matching the paper's scope.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ParseError, UnsupportedSQLError
from repro.sqlparser import ast
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.parser import Parser


class ExtendedParser(Parser):
    """Parser accepting WITH clauses and parenthesized FROM subqueries."""

    def parse_statement(self):
        ctes = {}
        if self.accept_keyword_word("WITH"):
            while True:
                name_token = self.advance()
                if name_token.kind != "ident":
                    raise ParseError("expected CTE name", name_token.position)
                self.expect_keyword("AS")
                self.expect_op("(")
                ctes[name_token.value.lower()] = self.parse_select_only()
                self.expect_op(")")
                if not self.accept_op(","):
                    break
        statement = self.parse_select_only()
        if self.current.kind != "eof":
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return statement, ctes

    def parse_select_only(self):
        """Like ``parse_select`` but tolerant of enclosing context."""
        saved_check = self.current
        if not saved_check.is_keyword("SELECT"):
            raise ParseError("expected SELECT", saved_check.position)
        # Reuse the base implementation without its EOF check.
        self.expect_keyword("SELECT")
        stmt = ast.SelectStatement()
        stmt.distinct = bool(self.accept_keyword("DISTINCT"))
        stmt.select_items.append(self._select_item())
        while self.accept_op(","):
            stmt.select_items.append(self._select_item())
        self.expect_keyword("FROM")
        stmt.from_tables.append(self._table_source())
        while self.accept_op(","):
            stmt.from_tables.append(self._table_source())
        if self.accept_keyword("WHERE"):
            stmt.where = self._condition()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            stmt.group_by.append(self._expr())
            while self.accept_op(","):
                stmt.group_by.append(self._expr())
        if self.accept_keyword("HAVING"):
            stmt.having = self._condition()
        return stmt

    def accept_keyword_word(self, word):
        """Accept an identifier-or-keyword matching ``word`` (WITH is not a
        reserved keyword in the base lexer)."""
        token = self.current
        if token.kind == "ident" and token.value.upper() == word:
            self.advance()
            return True
        return False

    def _table_source(self):
        if self.current.is_op("("):
            self.advance()
            subquery = self.parse_select_only()
            self.expect_op(")")
            self.accept_keyword("AS")
            alias_token = self.advance()
            if alias_token.kind != "ident":
                raise ParseError(
                    "subquery in FROM requires an alias", alias_token.position
                )
            return SubquerySource(subquery, alias_token.value)
        return self._table_ref()


class SubquerySource:
    """A parenthesized SELECT used as a FROM source."""

    def __init__(self, statement, alias):
        self.statement = statement
        self.alias = alias


def _has_aggregation(statement):
    if statement.group_by or statement.having is not None or statement.distinct:
        return True

    def walk(expr):
        if isinstance(expr, ast.FuncCall):
            return True
        for attr in ("left", "right", "operand", "arg", "expr"):
            child = getattr(expr, attr, None)
            if isinstance(child, ast.SqlExpr) and walk(child):
                return True
        return False

    for item in statement.select_items:
        if walk(item.expr):
            return True
    if statement.where is not None and walk(statement.where):
        return True
    return False


class _Flattener:
    def __init__(self):
        self._counter = 0

    def fresh_alias(self, base):
        self._counter += 1
        return f"{base}_q{self._counter}"

    def flatten(self, statement, ctes):
        """Return an equivalent plain :class:`SelectStatement`."""
        out = ast.SelectStatement(
            distinct=statement.distinct,
            group_by=list(statement.group_by),
            having=statement.having,
        )
        extra_where = []
        substitutions = {}  # (qualifier, column) -> replacement expr
        for source in statement.from_tables:
            if isinstance(source, SubquerySource):
                inner = source.statement
            elif isinstance(source, ast.TableRef) and source.table.lower() in ctes:
                inner = ctes[source.table.lower()]
                source = SubquerySource(inner, source.effective_alias)
            else:
                out.from_tables.append(source)
                continue
            if _has_aggregation(inner):
                raise UnsupportedSQLError(
                    "subqueries with aggregation/DISTINCT in FROM cannot be "
                    "flattened into a single block"
                )
            inner = self.flatten(inner, ctes)  # recursively flatten
            rename = {}
            for table_ref in inner.from_tables:
                fresh = self.fresh_alias(source.alias)
                rename[table_ref.effective_alias.lower()] = fresh
                out.from_tables.append(ast.TableRef(table_ref.table, fresh))
            if inner.where is not None:
                extra_where.append(_rename_expr(inner.where, rename))
            for item in inner.select_items:
                column_name = item.alias or _implied_name(item.expr)
                if column_name is None:
                    raise UnsupportedSQLError(
                        "subquery output expressions need aliases"
                    )
                substitutions[(source.alias.lower(), column_name.lower())] = (
                    _rename_expr(item.expr, rename)
                )
        out.select_items = [
            ast.SelectItem(_substitute_refs(i.expr, substitutions), i.alias)
            for i in statement.select_items
        ]
        where_parts = []
        if statement.where is not None:
            where_parts.append(_substitute_refs(statement.where, substitutions))
        where_parts.extend(extra_where)
        if where_parts:
            combined = where_parts[0]
            for part in where_parts[1:]:
                combined = ast.BinaryExpr("AND", combined, part)
            out.where = combined
        out.group_by = [
            _substitute_refs(e, substitutions) for e in statement.group_by
        ]
        if statement.having is not None:
            out.having = _substitute_refs(statement.having, substitutions)
        return out


def _implied_name(expr):
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    return None


def _rename_expr(expr, rename):
    """Rename table qualifiers per ``rename`` (lower-cased keys).

    Unqualified references are pinned to the (single) renamed source when
    the subquery has exactly one FROM table, so they stay unambiguous after
    splicing into the outer block.
    """
    sole_target = next(iter(rename.values())) if len(rename) == 1 else None

    def visit(node):
        if not isinstance(node, ast.ColumnRef):
            return None
        if node.qualifier is None:
            if sole_target is not None:
                return ast.ColumnRef(sole_target, node.column)
            return None
        return ast.ColumnRef(
            rename.get(node.qualifier.lower(), node.qualifier), node.column
        )

    return _transform(expr, visit)


def _substitute_refs(expr, substitutions):
    """Replace subquery output references by their defining expressions."""

    def visit(node):
        if isinstance(node, ast.ColumnRef) and node.qualifier is not None:
            key = (node.qualifier.lower(), node.column.lower())
            if key in substitutions:
                return substitutions[key]
        return None

    return _transform(expr, visit)


def _transform(expr, visit):
    replacement = visit(expr)
    if replacement is not None:
        return replacement
    if isinstance(expr, ast.BinaryExpr):
        return ast.BinaryExpr(
            expr.op, _transform(expr.left, visit), _transform(expr.right, visit)
        )
    if isinstance(expr, ast.UnaryExpr):
        return ast.UnaryExpr(expr.op, _transform(expr.operand, visit))
    if isinstance(expr, ast.FuncCall):
        arg = None if expr.arg is None else _transform(expr.arg, visit)
        return ast.FuncCall(expr.name, arg, expr.distinct)
    return expr


def parse_extended(text):
    """Parse SQL with WITH/FROM-subquery support; returns a flat statement."""
    parser = ExtendedParser(text)
    statement, ctes = parser.parse_statement()
    flattened_ctes = {}
    flattener = _Flattener()
    for name, cte in ctes.items():
        if _has_aggregation(cte):
            raise UnsupportedSQLError(
                f"CTE {name!r} uses aggregation and cannot be flattened"
            )
        flattened_ctes[name] = cte
    return flattener.flatten(statement, flattened_ctes)


def parse_query_extended(text, catalog):
    """Parse (with rewrites) and resolve against a catalog."""
    from repro.sqlparser.resolver import resolve

    return resolve(parse_extended(text), catalog)
