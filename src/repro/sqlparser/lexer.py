"""SQL tokenizer for the supported single-block fragment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT",
    "DISTINCT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "AND",
    "OR",
    "NOT",
    "LIKE",
    "AS",
    "TRUE",
    "FALSE",
    "ORDER",
    "ASC",
    "DESC",
}

OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "(", ")", ",", "."]


@dataclass(frozen=True)
class Token:
    kind: str  # "keyword" | "ident" | "number" | "string" | "op" | "eof"
    value: str
    position: int

    def is_keyword(self, *names):
        return self.kind == "keyword" and self.value in names

    def is_op(self, *ops):
        return self.kind == "op" and self.value in ops


def tokenize(text):
    """Tokenize SQL text into a list of :class:`Token` (ending with EOF)."""
    tokens = []
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":  # line comment
            newline = text.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue
        if ch == "'":
            j = i + 1
            chunks = []
            while True:
                if j >= length:
                    raise ParseError("unterminated string literal", i)
                if text[j] == "'":
                    if text[j : j + 2] == "''":  # escaped quote
                        chunks.append("'")
                        j += 2
                        continue
                    break
                chunks.append(text[j])
                j += 1
            tokens.append(Token("string", "".join(chunks), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < length and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < length and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit terminates the number
                    if j + 1 >= length or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("number", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < length and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", "<>" if op == "!=" else op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            if ch == ";":
                i += 1  # statement terminator: ignore
                continue
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", length))
    return tokens
