"""SQL front end: lexer, parser, AST, and name resolution."""

from repro.sqlparser.parser import parse
from repro.sqlparser.resolver import parse_query, resolve

__all__ = ["parse", "parse_query", "resolve"]
