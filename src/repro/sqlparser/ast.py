"""Unresolved SQL abstract syntax tree.

The parser produces these nodes; the resolver turns them into the typed
logic representation (:mod:`repro.query`) used by the rest of the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SqlExpr:
    """Base class for unresolved SQL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """``column`` or ``qualifier.column``."""

    qualifier: str | None
    column: str

    def __str__(self):
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass(frozen=True)
class NumberLit(SqlExpr):
    text: str

    def __str__(self):
        return self.text


@dataclass(frozen=True)
class StringLit(SqlExpr):
    value: str

    def __str__(self):
        escaped = self.value.replace("'", "''")
        return f"'{escaped}'"


@dataclass(frozen=True)
class BoolLit(SqlExpr):
    value: bool

    def __str__(self):
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class BinaryExpr(SqlExpr):
    """Arithmetic, comparison, or logical binary operation."""

    op: str
    left: SqlExpr
    right: SqlExpr

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryExpr(SqlExpr):
    """``-expr`` or ``NOT expr``."""

    op: str
    operand: SqlExpr

    def __str__(self):
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class FuncCall(SqlExpr):
    """Aggregate call: ``COUNT(*)``, ``SUM(DISTINCT x)``, ...."""

    name: str
    arg: SqlExpr | None  # None means '*'
    distinct: bool = False

    def __str__(self):
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class SelectItem:
    expr: SqlExpr
    alias: str | None = None

    def __str__(self):
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str | None = None

    @property
    def effective_alias(self):
        return self.alias or self.table

    def __str__(self):
        if self.alias:
            return f"{self.table} {self.alias}"
        return self.table


@dataclass
class SelectStatement:
    """A single-block SELECT statement (the supported fragment)."""

    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_tables: list[TableRef] = field(default_factory=list)
    where: SqlExpr | None = None
    group_by: list[SqlExpr] = field(default_factory=list)
    having: SqlExpr | None = None

    def __str__(self):
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.select_items))
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(e) for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        return " ".join(parts)
