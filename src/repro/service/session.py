"""Long-lived grading sessions for a single assignment.

An :class:`AssignmentSession` is created once per assignment (one target
query) and then grades any number of submissions against it.  It amortizes
everything the one-shot CLI pays per request:

* the target is parsed and resolved exactly once;
* one persistent :class:`~repro.solver.Solver` carries its learned clauses,
  SAT/theory caches, and saved phases across submissions;
* finished reports are memoized in an :class:`ArtifactCache` keyed by the
  submission's canonical (alias-renamed) form, so duplicate and
  alpha-equivalent submissions are served without re-running the pipeline.

The pipeline always runs on the *canonical* form of the submission and the
cached report is translated back into the submitter's own alias namespace,
which makes the served hints a deterministic function of (canonical form,
alias mapping) -- two students handing in the same query under different
aliases get textually consistent hints.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass

from repro.core.hints import Hint
from repro.core.pipeline import QrHint
from repro.obs import REGISTRY, TRACER
from repro.obs.effort import effort_delta, effort_snapshot
from repro.query import ResolvedQuery
from repro.service.cache import (
    ArtifactCache,
    canonicalize,
    rename_query_aliases,
)
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import (
    format_witness_lines,
    generate_witness,
    remap_witness,
    witness_divergence_sentence,
    witness_to_dict,
)

_CANON_TOKEN = re.compile(r"\b(_s\d+)\b")
_SQL_LITERAL = re.compile(r"'[^']*'")

#: Cached marker for "witness generation ran and found nothing", so the
#: expensive search is not repeated per duplicate submission.  A plain
#: string keeps worker-pickled cache payloads trivially serializable.
_NO_WITNESS = "__no_witness__"

_GRADE_SECONDS = REGISTRY.histogram(
    "repro_grade_seconds",
    "Wall time serving one submission, by artifact-cache outcome.",
    ("cached",),
)
_GRADE_TOTAL = REGISTRY.counter(
    "repro_grades_total",
    "Submissions graded, by artifact-cache outcome.",
    ("cached",),
)


def _remap_text(text, inverse):
    """Rewrite canonical ``_sN`` alias tokens back to submitter aliases.

    Quoted SQL string literals are left untouched: a submission may
    legitimately contain the text ``'_s0'`` as data, and hints quote the
    student's own literals verbatim.
    """
    if text is None:
        return None

    def rename(segment):
        return _CANON_TOKEN.sub(
            lambda m: inverse.get(m.group(1), m.group(1)), segment
        )

    parts = []
    last = 0
    for literal in _SQL_LITERAL.finditer(text):
        parts.append(rename(text[last:literal.start()]))
        parts.append(literal.group(0))
        last = literal.end()
    parts.append(rename(text[last:]))
    return "".join(parts)


def _remap_hint(hint, inverse):
    return Hint(
        stage=hint.stage,
        kind=hint.kind,
        message=_remap_text(hint.message, inverse),
        site=_remap_text(hint.site, inverse),
        fix=_remap_text(hint.fix, inverse),
    )


@dataclass(frozen=True)
class GradeResult:
    """One graded submission, in the submitter's own alias namespace."""

    submission_sql: str
    all_passed: bool
    #: ``((stage, passed, (Hint, ...)), ...)`` in pipeline order.
    stage_hints: tuple
    final_sql: str
    cached: bool
    pipeline_elapsed: float  # cost of the underlying QrHint run
    elapsed: float  # wall time spent serving this submission
    #: Executor-verified counterexample instance, or None.  Only populated
    #: when the caller asked for one (``witness=True``); with witnesses
    #: disabled every rendering below is byte-identical to pre-witness
    #: behaviour.
    witness: object = None
    #: Solver-effort counter delta for serving this submission (dict of
    #: ints), or None.  Only populated on ``effort=True`` requests; the
    #: default rendering below is byte-identical without it.
    effort: object = None
    #: True when the grade ran out of its time budget mid-pipeline and
    #: this result is a best-effort partial (see ``Report.degraded``).
    #: Degraded results are never cached, so a retry with a larger budget
    #: gets a full grade.
    degraded: bool = False

    @property
    def hints(self):
        out = []
        for _, _, hints in self.stage_hints:
            out.extend(hints)
        return tuple(out)

    def text(self, show_fixes=False, witness_text=False):
        """Render exactly the CLI ``hint`` output block for this result.

        ``witness_text=True`` anchors the hints to the counterexample (an
        extra "on this database your query returns X" bullet) when this
        result carries a witness; the default rendering is byte-identical
        to pre-witness-text behaviour.
        """
        return "\n".join(
            format_grade_lines(
                self, show_fixes=show_fixes, witness_text=witness_text
            )
        )

    def to_dict(self, show_fixes=False):
        """JSON-safe rendering (used by the HTTP API and ``--json``)."""
        stages = []
        for stage, passed, hints in self.stage_hints:
            stages.append(
                {
                    "stage": stage,
                    "passed": passed,
                    "hints": [
                        {
                            "kind": h.kind,
                            "message": h.message,
                            "site": h.site,
                            **({"fix": h.fix} if show_fixes else {}),
                        }
                        for h in hints
                    ],
                }
            )
        payload = {
            "all_passed": self.all_passed,
            "stages": stages,
            "final_sql": self.final_sql,
            "cached": self.cached,
            "elapsed": self.elapsed,
        }
        if self.witness is not None:
            payload["witness"] = witness_to_dict(self.witness)
        if self.effort is not None:
            payload["effort"] = dict(self.effort)
        if self.degraded:
            # Only present on degraded results, keeping the common-path
            # payload byte-identical to pre-deadline behaviour.
            payload["degraded"] = True
        return payload


def format_grade_lines(result, show_fixes=False, witness_text=False):
    """The CLI hint block as a list of lines (shared by CLI and service).

    With ``witness_text=True`` and a witness on the result, the stage the
    witness attributes the divergence to gets an extra bullet quoting the
    concrete result bags ("on this database your query returns X; the
    reference returns Y").  Off by default: the rendering is then
    byte-identical to the historic output.
    """
    if result.all_passed:
        return ["The working query is already equivalent to the target."]
    witness_stage = None
    if witness_text and result.witness is not None:
        failing = [s for s, passed, _ in result.stage_hints if not passed]
        if failing:
            witness_stage = (
                result.witness.stage
                if result.witness.stage in failing
                else failing[-1]
            )
    lines = []
    for stage, passed, hints in result.stage_hints:
        if passed:
            continue
        lines.append(f"[{stage}]")
        for hint in hints:
            lines.append(f"  - {hint.message}")
            if show_fixes and hint.fix:
                lines.append(f"    fix: {hint.site}  ->  {hint.fix}")
        if stage == witness_stage:
            lines.append(
                f"  - {witness_divergence_sentence(result.witness)}"
            )
    lines.append("")
    lines.append("Query after applying all repairs:")
    lines.append(f"  {result.final_sql}")
    if result.witness is not None:
        lines.append("")
        lines.extend(format_witness_lines(result.witness))
    return lines


def format_report(report, show_fixes=False, witness=None, witness_text=False):
    """Render a raw pipeline :class:`Report` the same way as the CLI."""
    stage_hints = tuple(
        (s.stage, s.passed, tuple(s.hints)) for s in report.stages
    )
    shim = GradeResult(
        submission_sql="",
        all_passed=report.all_passed,
        stage_hints=stage_hints,
        final_sql=report.final_query.to_sql(),
        cached=False,
        pipeline_elapsed=report.elapsed,
        elapsed=report.elapsed,
        witness=witness,
    )
    return "\n".join(
        format_grade_lines(
            shim, show_fixes=show_fixes, witness_text=witness_text
        )
    )


def _disambiguate(inverse, query):
    """Extend the inverse mapping so repair-introduced aliases survive.

    The FROM repair may add missing tables under fresh aliases chosen in
    the *canonical* namespace (where only ``_sN`` names are taken).  Such
    an alias can collide with a submitter alias once ``_sN`` names are
    mapped back -- e.g. repair alias ``likes`` vs. submission alias
    ``likes`` -- which would silently merge two FROM entries and turn
    join predicates into tautologies.  Colliding repair aliases are
    renamed ``alias_2``, ``alias_3``, ... exactly as the repair itself
    would have done had it graded the submission directly.
    """
    used = set(inverse.values())
    extended = dict(inverse)
    for entry in query.from_entries:
        alias = entry.alias
        if alias in extended:
            continue
        if alias in used:
            counter = 2
            fresh = f"{alias}_{counter}"
            while fresh in used:
                counter += 1
                fresh = f"{alias}_{counter}"
            extended[alias] = fresh
            used.add(fresh)
        else:
            used.add(alias)
    return extended


def _counter_delta(now, baseline):
    return {
        key: value - baseline.get(key, 0)
        for key, value in now.items()
        if isinstance(value, int)
    }


class AssignmentSession:
    """Grades submissions against one target query, reusing all artifacts.

    Thread-safe: :meth:`grade` serializes pipeline runs behind a per-session
    re-entrant lock (the solver and its caches are not concurrency-safe),
    which is the locking granularity the HTTP server relies on.
    """

    def __init__(
        self,
        catalog,
        target,
        *,
        assignment_id=None,
        max_sites=2,
        optimized=True,
        cache_size=256,
        solver=None,
        witness_seed=0,
    ):
        self.catalog = catalog
        self.assignment_id = assignment_id
        if isinstance(target, str):
            self.target_sql = target
            self.target = parse_query_extended(target, catalog)
        else:
            self.target = target
            self.target_sql = target.to_sql()
        self.max_sites = max_sites
        self.optimized = optimized
        self.solver = solver or Solver()
        self.cache = ArtifactCache(cache_size)
        self.lock = threading.RLock()
        self._solver_baseline = self.solver.stats_snapshot()
        self.witness_seed = witness_seed
        self.submissions = 0
        self.pipeline_runs = 0
        self.witness_runs = 0  # generate_witness invocations (cache misses)
        self.elapsed_total = 0.0
        self.pipeline_elapsed_total = 0.0
        self.created_at = time.time()

    # ------------------------------------------------------------------

    def prepare(self, submission):
        """Parse + canonicalize a submission.

        Returns ``(canonical_query, inverse_alias_mapping)``; the inverse
        mapping translates canonical ``_sN`` aliases back to the
        submitter's.  This is the cheap (sub-millisecond) front half of
        grading, split out so the batch grader can dedupe before fanning
        the expensive half out to workers.
        """
        if isinstance(submission, str):
            working = parse_query_extended(submission, self.catalog)
        else:
            working = submission
        canonical, mapping = canonicalize(working)
        inverse = {canon: orig for orig, canon in mapping.items()}
        return canonical, inverse

    def grade(
        self,
        submission,
        witness=False,
        effort=False,
        deadline=None,
        _prepared=None,
    ):
        """Grade one submission; returns a :class:`GradeResult`.

        Parse/resolution errors propagate as :class:`repro.errors.ReproError`.
        ``_prepared`` lets the batch grader pass the ``prepare()`` output it
        already computed for deduplication, skipping the second parse.

        ``deadline`` (a :class:`repro.service.deadline.Deadline`) bounds the
        pipeline run: on expiry the result is a *degraded* partial grade
        (``degraded=True``, coarse stage-level hint for the unfinished
        stage).  Degraded reports are not cached and witness generation is
        skipped for them.  A deadline that is already expired before the
        pipeline starts raises
        :class:`~repro.service.deadline.DeadlineExceeded` instead.

        With ``witness=True`` a wrong submission's result also carries an
        executor-verified counterexample instance (when one is found).
        Witnesses are cached in the same artifact cache as reports, keyed
        by ``("witness", canonical form)``, so duplicate and
        alpha-equivalent submissions share one generation run.

        With ``effort=True`` the result carries the solver-effort counter
        delta for serving this request (an artifact-cache hit burns no
        solver work, so its delta is all zeros).
        """
        start = time.perf_counter()
        sql = submission if isinstance(submission, str) else submission.to_sql()
        with TRACER.span("session.grade") as span, self.lock:
            effort_before = effort_snapshot(self.solver) if effort else None
            canonical, inverse = _prepared or self.prepare(submission)
            report = self.cache.get(canonical)
            cached = report is not None
            if not cached:
                report = self.grade_canonical(canonical, deadline=deadline)
                if not report.degraded:
                    # A degraded report is an artifact of *this* request's
                    # budget; caching it would serve the partial answer to
                    # well-budgeted duplicates forever.
                    self.cache.put(canonical, report)
            witness_obj = None
            if witness and not report.all_passed and not report.degraded:
                witness_obj = self.witness_canonical(canonical)
            effort_spent = (
                effort_delta(effort_before, effort_snapshot(self.solver))
                if effort
                else None
            )
            self.submissions += 1
            elapsed = time.perf_counter() - start
            self.elapsed_total += elapsed
            span.set(cached=cached, all_passed=report.all_passed)
            cached_label = "true" if cached else "false"
            _GRADE_SECONDS.observe(elapsed, cached=cached_label)
            _GRADE_TOTAL.inc(cached=cached_label)
        stage_hints = tuple(
            (
                stage.stage,
                stage.passed,
                tuple(_remap_hint(h, inverse) for h in stage.hints),
            )
            for stage in report.stages
        )
        final_query = rename_query_aliases(
            report.final_query,
            _disambiguate(inverse, report.final_query),
        )
        if witness_obj is not None:
            # Pinned-cell labels are in the canonical namespace; rewrite
            # them with the same inverse mapping the hints go through.
            witness_obj = remap_witness(
                witness_obj, lambda text: _remap_text(text, inverse)
            )
        return GradeResult(
            submission_sql=sql,
            all_passed=report.all_passed,
            stage_hints=stage_hints,
            final_sql=final_query.to_sql(),
            cached=cached,
            pipeline_elapsed=report.elapsed,
            elapsed=elapsed,
            witness=witness_obj,
            effort=effort_spent,
            degraded=report.degraded,
        )

    def witness_canonical(self, canonical):
        """Counterexample for an already-canonical query, via the cache.

        Returns the (canonical-namespace) witness or None; negative
        results are cached too, so a hopeless search runs once per form.
        """
        key = ("witness", canonical)
        entry = self.cache.get(key)
        if entry is None:
            entry = generate_witness(
                self.catalog,
                self.target,
                canonical,
                solver=self.solver,
                seed=self.witness_seed,
            )
            self.witness_runs += 1
            self.cache.put(key, entry if entry is not None else _NO_WITNESS)
        return None if entry == _NO_WITNESS else entry

    def grade_canonical(self, canonical, deadline=None):
        """Run the full pipeline on an already-canonical query (no cache)."""
        report = QrHint(
            self.catalog,
            self.target,
            canonical,
            max_sites=self.max_sites,
            optimized=self.optimized,
            solver=self.solver,
            deadline=deadline,
        ).run()
        self.pipeline_runs += 1
        self.pipeline_elapsed_total += report.elapsed
        return report

    def seed(self, canonical, report):
        """Install an externally computed report (batch workers use this)."""
        self.cache.put(canonical, report)

    # ------------------------------------------------------------------

    def solver_stats(self):
        """Solver counter deltas since this session was created."""
        snapshot = self.solver.stats_snapshot()
        delta = _counter_delta(snapshot, self._solver_baseline)
        lookups = delta.get("cache_hits", 0) + delta.get("sat_calls", 0)
        delta["cache_hit_rate"] = (
            delta.get("cache_hits", 0) / lookups if lookups else 0.0
        )
        return delta

    def stats(self):
        return {
            "assignment_id": self.assignment_id,
            "target_sql": " ".join(self.target_sql.split()),
            "submissions": self.submissions,
            "pipeline_runs": self.pipeline_runs,
            "witness_runs": self.witness_runs,
            "elapsed_total": self.elapsed_total,
            "pipeline_elapsed_total": self.pipeline_elapsed_total,
            "cache": self.cache.stats(),
            "solver": self.solver_stats(),
        }
