"""Stdlib HTTP JSON API over assignment sessions.

A :class:`HintService` is a registry of
:class:`~repro.service.session.AssignmentSession` objects; the handler
exposes it over three routes served by a ``ThreadingHTTPServer``:

* ``POST /assignments`` -- register a target query; body
  ``{"schema": {...}, "target_sql": "..."}`` (schema in the same format as
  the CLI schema file), returns ``{"assignment_id": "a1", ...}``.
* ``POST /grade`` -- grade a submission; body
  ``{"assignment_id": "a1", "sql": "...", "show_fixes": false,
  "witness": false, "effort": false}`` (``"witness": true`` adds an
  executor-verified counterexample instance to wrong submissions;
  ``"effort": true`` adds the solver-effort counter delta of serving the
  request).
* ``POST /witness`` -- just the counterexample; body
  ``{"assignment_id": "a1", "sql": "..."}``.
* ``GET /stats`` -- per-assignment cache/solver statistics plus
  process-level HTTP request/latency statistics (and the cache-spiller's
  ``spill`` block when one is attached).
* ``GET /metrics`` -- Prometheus text exposition (request counters and
  latency histograms, grade/stage histograms, per-route solver-effort
  counters, per-assignment solver and cache counters).
* ``GET /debug/journal?n=K`` -- the last K events of the process-wide
  flight recorder (``repro.obs.JOURNAL``) as JSON; the recorder is also
  dumped to stderr when a request dies with an unhandled exception.

Observability: every response increments ``repro_http_requests_total``
(and ``repro_http_errors_total`` for 4xx/5xx) and observes
``repro_http_request_seconds``, labeled by route (unknown paths collapse
into ``other`` to bound label cardinality).  A grade request carrying
``"trace": true`` returns its span tree in the response; starting the
server with ``slow_ms`` set wraps *every* request in a trace and logs the
rendered tree to stderr when handling exceeds the threshold.

Request hardening: bodies above ``MAX_BODY_BYTES`` are rejected with 413,
and POST requests whose ``Content-Length`` is absent or malformed get a
400 (both close the connection -- the body framing cannot be trusted).

Fault tolerance (see ``docs/service.md``): POST work routes run under an
:class:`AdmissionController` -- beyond ``max_inflight`` concurrent grades
plus a bounded wait queue, requests are shed with 503 + ``Retry-After``.
``read_timeout`` bounds how long a stalled client can hold a handler
thread (408 mid-body, silent close between requests).  ``timeout_ms`` on
``POST /grade`` (capped by the server's ``max_timeout_ms``) bounds one
grade: on expiry the response is a degraded-200 partial report, or 408
when the budget was spent before the pipeline started.  Shutdown drains:
new work is shed (``draining``) while admitted requests finish complete
responses, then the spiller takes its final flush.

Concurrency model: the threading server gives each request its own
thread; the registry is guarded by a service-level lock and each grade
takes its session's re-entrant lock, so concurrent submissions for the
same assignment are serialized (the solver is not concurrency-safe) while
different assignments grade in parallel.
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.catalog import Catalog
from repro.errors import ReproError
from repro.obs import JOURNAL, REGISTRY, TRACER
from repro.obs.effort import record_route_effort
from repro.obs.export import (
    KNOWN_ROUTES,
    bounded_route,
    service_metric_families,
)
from repro.obs.metrics import render_families
from repro.service.deadline import Deadline, DeadlineExceeded
from repro.service.faults import FAULTS
from repro.service.session import AssignmentSession

MAX_BODY_BYTES = 1_048_576

__all__ = [
    "AdmissionController",
    "CacheSpiller",
    "HintHTTPServer",
    "HintRequestHandler",
    "HintService",
    "KNOWN_ROUTES",  # re-exported from repro.obs.export (canonical home)
    "MAX_BODY_BYTES",
    "ServiceError",
    "bounded_route",
    "http_stats",
    "make_server",
    "serve",
]

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route and status.",
    ("route", "status"),
)
_HTTP_ERRORS = REGISTRY.counter(
    "repro_http_errors_total",
    "HTTP error responses (status >= 400), by route and status.",
    ("route", "status"),
)
_HTTP_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling wall time, by route.",
    ("route",),
)
_SHED = REGISTRY.counter(
    "repro_shed_total",
    "Requests shed by the fault-tolerance layer, by reason "
    "(queue_full, timeout, draining, read_timeout).",
    ("reason",),
)


class ServiceError(Exception):
    """An HTTP-mappable request error."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class AdmissionController:
    """Bounded in-flight admission with a small wait queue.

    The threading server otherwise accepts unbounded concurrent work: a
    burst of expensive grades piles up threads until every one of them is
    slow.  The controller admits at most ``max_inflight`` concurrent work
    requests; up to ``max_queue`` more wait (at most ``queue_timeout``
    seconds) for a slot, and everything beyond that is shed immediately
    with 503 + ``Retry-After`` so clients back off instead of queuing
    invisible seconds of latency.

    ``max_inflight=None`` means unbounded-but-tracked: nothing is ever
    shed for load, but in-flight accounting still works, which is what
    graceful drain (:meth:`HintHTTPServer.drain`) relies on -- so a
    controller is always attached, bounded or not.
    """

    def __init__(self, max_inflight=None, max_queue=0, queue_timeout=1.0):
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._cond = threading.Condition()
        self.inflight = 0
        self.waiting = 0
        self.draining = False
        self.admitted = 0
        self.shed = {"queue_full": 0, "timeout": 0, "draining": 0}

    def _slot_free(self):
        return self.max_inflight is None or self.inflight < self.max_inflight

    def acquire(self):
        """Try to admit one work request.

        Returns ``"admitted"`` (caller must :meth:`release`), or the shed
        reason: ``"queue_full"``, ``"timeout"`` (queued but no slot freed
        within ``queue_timeout``), or ``"draining"`` (shutdown underway).
        """
        with self._cond:
            if self.draining:
                self.shed["draining"] += 1
                return "draining"
            if self._slot_free():
                self.inflight += 1
                self.admitted += 1
                return "admitted"
            if self.waiting >= self.max_queue:
                self.shed["queue_full"] += 1
                return "queue_full"
            self.waiting += 1
            deadline = time.monotonic() + self.queue_timeout
            try:
                while True:
                    if self.draining:
                        self.shed["draining"] += 1
                        return "draining"
                    if self._slot_free():
                        self.inflight += 1
                        self.admitted += 1
                        return "admitted"
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.shed["timeout"] += 1
                        return "timeout"
                    self._cond.wait(remaining)
            finally:
                self.waiting -= 1

    def release(self):
        with self._cond:
            self.inflight -= 1
            self._cond.notify_all()

    def start_drain(self):
        """Refuse all future admissions (drain begins)."""
        with self._cond:
            self.draining = True
            self._cond.notify_all()

    def wait_idle(self, timeout):
        """Block until no admitted work is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self.inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def stats(self):
        """The ``admission`` block of ``GET /stats``."""
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "queue_timeout": self.queue_timeout,
                "inflight": self.inflight,
                "waiting": self.waiting,
                "admitted": self.admitted,
                "draining": self.draining,
                "shed": dict(self.shed),
            }


class HintService:
    """Registry of assignment sessions behind the HTTP front end."""

    def __init__(self):
        self._sessions = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.started_at = time.time()

    def create_assignment(
        self,
        catalog,
        target_sql,
        *,
        assignment_id=None,
        max_sites=2,
        cache_size=256,
    ):
        session = AssignmentSession(
            catalog,
            target_sql,
            max_sites=max_sites,
            cache_size=cache_size,
        )
        with self._lock:
            if assignment_id is None:
                assignment_id = f"a{next(self._ids)}"
            if assignment_id in self._sessions:
                raise ServiceError(
                    409, f"assignment {assignment_id!r} already exists"
                )
            session.assignment_id = assignment_id
            self._sessions[assignment_id] = session
        return session

    def session(self, assignment_id):
        with self._lock:
            session = self._sessions.get(assignment_id)
        if session is None:
            raise ServiceError(404, f"unknown assignment {assignment_id!r}")
        return session

    def stats(self):
        with self._lock:
            sessions = dict(self._sessions)
        return {
            "uptime": time.time() - self.started_at,
            "assignments": {
                aid: session.stats() for aid, session in sessions.items()
            },
        }


def http_stats():
    """Process-level HTTP request/latency statistics (``GET /stats``).

    Derived from the global registry's request counters and latency
    histograms, so counts span every server in the process; quantiles are
    bucket upper bounds (see :class:`repro.obs.Histogram`).
    """
    requests = {}
    for labels, value in _HTTP_REQUESTS.items():
        requests.setdefault(labels["route"], {})[labels["status"]] = value
    errors = {}
    for labels, value in _HTTP_ERRORS.items():
        errors[labels["route"]] = errors.get(labels["route"], 0) + value
    latency = {}
    for labels, value in _HTTP_LATENCY.items():
        route = labels["route"]
        latency[route] = {
            "count": value["count"],
            "mean_ms": round(
                value["sum"] / value["count"] * 1000.0, 3
            ) if value["count"] else 0.0,
            "p50_ms": round(
                _HTTP_LATENCY.quantile(0.5, route=route) * 1000.0, 3
            ),
            "p95_ms": round(
                _HTTP_LATENCY.quantile(0.95, route=route) * 1000.0, 3
            ),
            "p99_ms": round(
                _HTTP_LATENCY.quantile(0.99, route=route) * 1000.0, 3
            ),
        }
    return {"requests": requests, "errors": errors, "latency": latency}


class CacheSpiller:
    """Periodic background spill of an :class:`ArtifactCache` to disk.

    Until now the cache was load-at-start/save-at-shutdown only, so a
    crash lost every artifact computed since startup.  The spiller wakes
    every ``interval`` seconds and rewrites the spill file through
    :meth:`ArtifactCache.save`, whose temp-file + rename write is atomic:
    a crash mid-spill leaves the previous snapshot intact, and a restart
    loses at most one interval of work.

    Idle intervals are skipped via a cheap change marker -- every cache
    mutation in the serve path is preceded by a miss (and evictions move
    on overflow), so ``(size, misses, evictions)`` is a reliable
    dirtiness signal and an idle server never touches the disk.
    """

    def __init__(self, cache, path, interval):
        if interval <= 0:
            raise ValueError("spill interval must be positive")
        self.cache = cache
        self.path = path
        self.interval = interval
        self.spills = 0  # completed (non-skipped) spills
        self.skipped_idle = 0  # spills skipped because the cache was clean
        self.errors = 0  # spills that failed with OSError
        self.join_timeouts = 0  # stop() joins that abandoned a live thread
        self.last_duration_ms = 0.0
        self.last_bytes = 0
        self.last_entries = 0
        self._stop = threading.Event()
        self._last_marker = self._marker()
        self._thread = threading.Thread(
            target=self._run, name="cache-spill", daemon=True
        )

    def _marker(self):
        stats = self.cache.stats()
        return (stats["size"], stats["misses"], stats["evictions"])

    def start(self):
        self._thread.start()
        return self

    def stop(self, join_timeout=None):
        """Signal the loop, join it, then flush one final spill.

        Without the final flush, mutations landing after the last timer
        tick were lost on a clean shutdown -- and shutdown raced the
        background thread's in-flight spill against the server teardown.
        Joining first guarantees no concurrent writer; the flush itself
        is a no-op when the cache is clean (change-marker skip).

        When the join times out the spill thread is still live (e.g.
        wedged on stalled disk I/O).  That used to be silent; now it is
        counted (``join_timeouts``, surfaced in the ``spill`` stats
        block), journaled as ``spill.join_timeout``, and the final flush
        is *skipped* -- writing concurrently with the wedged thread's
        in-flight spill could interleave two writers on the same path.
        """
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(
                join_timeout if join_timeout is not None
                else self.interval + 30
            )
            if self._thread.is_alive():
                self.join_timeouts += 1
                JOURNAL.record(
                    "spill.join_timeout", join_timeouts=self.join_timeouts
                )
                return
        try:
            self.spill()
        except OSError as exc:  # pragma: no cover - disk trouble at shutdown
            self.errors += 1
            JOURNAL.record("spill.error", error=str(exc), at="stop")

    def _run(self):
        while not self._stop.wait(self.interval):
            try:
                self.spill()
            except OSError as exc:  # disk trouble; retry next interval
                self.errors += 1
                JOURNAL.record("spill.error", error=str(exc), at="loop")

    def spill(self):
        """Write a snapshot now (if dirty); returns entries written."""
        import os

        marker = self._marker()
        if marker == self._last_marker:
            self.skipped_idle += 1
            JOURNAL.record("spill.idle", skipped=self.skipped_idle)
            return 0
        JOURNAL.record("spill.start", size=marker[0])
        if FAULTS.enabled:  # chaos harness: stalled or failing spill I/O
            FAULTS.sleep("spill.stall")
            FAULTS.raise_io("spill.io")
        started = time.perf_counter()
        count = self.cache.save(self.path)
        self.last_duration_ms = round(
            (time.perf_counter() - started) * 1000.0, 3
        )
        try:
            self.last_bytes = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - racing file removal
            self.last_bytes = 0
        self.last_entries = count
        self._last_marker = marker
        self.spills += 1
        JOURNAL.record(
            "spill.end",
            entries=count,
            bytes=self.last_bytes,
            duration_ms=self.last_duration_ms,
        )
        return count

    def stats(self):
        """The ``spill`` block of ``GET /stats``."""
        return {
            "count": self.spills,
            "skipped_idle": self.skipped_idle,
            "errors": self.errors,
            "join_timeouts": self.join_timeouts,
            "last_duration_ms": self.last_duration_ms,
            "last_bytes": self.last_bytes,
            "last_entries": self.last_entries,
            "interval": self.interval,
            "path": str(self.path),
        }


class HintRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler; the service lives on ``self.server.service``."""

    protocol_version = "HTTP/1.1"
    quiet = True

    def log_message(self, fmt, *args):  # pragma: no cover - noise control
        if not self.quiet:
            super().log_message(fmt, *args)

    def setup(self):
        """Apply the server's socket read timeout before the first read.

        ``StreamRequestHandler.setup`` installs ``self.timeout`` on the
        connection, so a stalled client (headers or body trickling in, or
        an idle keep-alive socket) raises ``TimeoutError`` instead of
        pinning this handler thread forever.
        """
        read_timeout = getattr(self.server, "read_timeout", None)
        if read_timeout is not None:
            self.timeout = read_timeout
        super().setup()

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status, payload, extra_headers=None):
        body = json.dumps(payload).encode("utf-8")
        self._send_body(
            status, body, "application/json", extra_headers=extra_headers
        )

    def _send_body(self, status, body, content_type, extra_headers=None):
        """Single response exit point: writes the body, records metrics."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)
        route = getattr(self, "_route", "other")
        _HTTP_REQUESTS.inc(route=route, status=str(status))
        if status >= 400:
            _HTTP_ERRORS.inc(route=route, status=str(status))
        started = getattr(self, "_started", None)
        elapsed = (
            time.perf_counter() - started if started is not None else None
        )
        if elapsed is not None:
            _HTTP_LATENCY.observe(elapsed, route=route)
        JOURNAL.record(
            "http.finish",
            route=route,
            status=status,
            ms=round(elapsed * 1000.0, 3) if elapsed is not None else None,
        )
        if status >= 400:
            JOURNAL.record("http.error", route=route, status=status)

    def _content_length(self):
        """Parse Content-Length, or None when absent.

        A malformed (non-integer or negative) value is a 400: the body
        framing cannot be trusted, so the connection is dropped after the
        response instead of resynchronized.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise ServiceError(400, "malformed Content-Length header")
        if length < 0:
            self.close_connection = True
            raise ServiceError(400, "malformed Content-Length header")
        return length

    def _drain_body(self):
        """Consume an unread request body so keep-alive stays in sync.

        Responding without reading the body leaves its bytes on the
        socket, and the next request on the persistent connection would
        be parsed out of them.
        """
        try:
            length = self._content_length() or 0
        except ServiceError:
            return  # malformed framing; _content_length closed the connection
        try:
            while length > 0:
                chunk = self.rfile.read(min(length, 65536))
                if not chunk:
                    break
                length -= len(chunk)
        except TimeoutError:
            # Stalled client mid-body on a non-work route: nothing left to
            # salvage on this connection.
            self._record_read_timeout()

    def _read_json(self):
        length = self._content_length()
        if length is None:
            # No framing at all: nothing safe to read on a keep-alive
            # socket, so reject and drop the connection.
            self.close_connection = True
            raise ServiceError(400, "missing Content-Length header")
        if length > MAX_BODY_BYTES:
            # Too large to drain; drop the connection after responding.
            self.close_connection = True
            raise ServiceError(413, "request body too large")
        try:
            raw = self.rfile.read(length) if length else b""
        except TimeoutError:
            # The client declared a body it never finished sending; the
            # read timeout reclaims this thread instead of letting the
            # stall pin it.  408 + close (body framing is unrecoverable).
            self._record_read_timeout()
            raise ServiceError(408, "timed out reading request body")
        if not raw:
            raise ServiceError(400, "empty request body")
        try:
            payload = json.loads(raw)
        except ValueError:
            raise ServiceError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def _record_read_timeout(self):
        self.close_connection = True
        _SHED.inc(reason="read_timeout")
        JOURNAL.record(
            "http.read_timeout", route=getattr(self, "_route", "other")
        )

    def _require(self, payload, key, types=str):
        value = payload.get(key)
        if not isinstance(value, types):
            raise ServiceError(400, f"field {key!r} is required")
        return value

    def _dispatch(self, handler):
        try:
            status, payload = handler()
        except ServiceError as error:
            status, payload = error.status, {"error": str(error)}
        except DeadlineExceeded as error:
            # Only reachable when the budget was spent before the pipeline
            # started (mid-run expiry degrades to a partial 200 instead).
            status, payload = 408, {
                "error": str(error),
                "kind": "DeadlineExceeded",
            }
        except ReproError as error:
            status, payload = 400, {
                "error": str(error),
                "kind": type(error).__name__,
            }
        except Exception as error:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {error}"}
            # The flight recording explains the crash; dump it into the
            # server log next to where the traceback would land.
            JOURNAL.record(
                "http.exception",
                route=getattr(self, "_route", "other"),
                kind=type(error).__name__,
                error=str(error),
            )
            JOURNAL.dump(
                reason=f"unhandled {type(error).__name__} on "
                f"{getattr(self, '_route', 'other')}"
            )
        self._send_json(status, payload)

    def _admitted(self, handler):
        """Run a work-route handler under admission control.

        Shed requests get 503 + ``Retry-After`` without *grading*
        anything; the (bounded, usually already-buffered) request body is
        still drained first -- closing a socket with unread bytes sends a
        TCP RST that can destroy the in-flight 503 before the client
        reads it.  The connection is then closed to keep keep-alive
        framing honest.  GET routes bypass admission entirely --
        stats/metrics/health must answer precisely when the server is
        saturated.
        """
        admission = getattr(self.server, "admission", None)
        if admission is None:
            self._dispatch(handler)
            return
        verdict = admission.acquire()
        if verdict != "admitted":
            _SHED.inc(reason=verdict)
            JOURNAL.record(
                "admission.shed", route=self._route, reason=verdict
            )
            self._drain_body()
            self.close_connection = True
            retry_after = "5" if verdict == "draining" else "1"
            self._send_json(
                503,
                {"error": f"server busy ({verdict})", "reason": verdict},
                extra_headers={"Retry-After": retry_after},
            )
            return
        try:
            self._dispatch(handler)
        finally:
            admission.release()

    # -- routes ---------------------------------------------------------

    def do_POST(self):
        self._handle("POST")

    def do_GET(self):
        self._handle("GET")

    def _handle(self, method):
        """Per-request bookkeeping around routing.

        Stamps the latency start and the metric route label, and -- when
        the server was started with ``slow_ms`` -- wraps the whole request
        in a trace, logging the rendered span tree to stderr if handling
        exceeds the threshold.
        """
        self._started = time.perf_counter()
        # Cardinality guard: the metric/journal route label comes from the
        # bounded set, query string stripped, no matter what was requested.
        self._route = bounded_route(self.path)
        JOURNAL.record("http.start", method=method, route=self._route)
        slow_ms = getattr(self.server, "slow_ms", None)
        if slow_ms is None:
            self._route_request(method)
            return
        with TRACER.trace("http", method=method, path=self.path) as handle:
            self._route_request(method)
        if handle.duration_ms >= slow_ms:
            lines = [
                f"slow request: {method} {self.path} "
                f"took {handle.duration_ms:.1f}ms "
                f"(threshold {slow_ms:g}ms) trace={handle.trace_id}"
            ]
            lines.extend(f"  {line}" for line in handle.render())
            print("\n".join(lines), file=sys.stderr)
            JOURNAL.record(
                "http.slow",
                route=self._route,
                ms=round(handle.duration_ms, 3),
                trace_id=handle.trace_id,
                spans=len(handle.spans),
            )

    def _route_request(self, method):
        path, _, query = self.path.partition("?")
        if method == "POST":
            if path == "/assignments":
                self._admitted(self._post_assignment)
            elif path == "/grade":
                self._admitted(self._post_grade)
            elif path == "/witness":
                self._admitted(self._post_witness)
            else:
                self._drain_body()
                self._send_json(404, {"error": f"no such route {self.path}"})
        else:
            if path == "/stats":
                self._dispatch(self._get_stats)
            elif path == "/metrics":
                self._get_metrics()
            elif path == "/debug/journal":
                self._dispatch(lambda: self._get_journal(query))
            elif path == "/healthz":
                self._drain_body()
                self._send_json(200, {"ok": True})
            else:
                self._drain_body()
                self._send_json(404, {"error": f"no such route {self.path}"})

    def _post_assignment(self):
        payload = self._read_json()
        spec = self._require(payload, "schema", dict)
        target_sql = self._require(payload, "target_sql")
        try:
            catalog = Catalog.from_spec(spec)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(400, f"invalid schema: {error}")
        try:
            max_sites = int(payload.get("max_sites", 2))
            cache_size = int(payload.get("cache_size", 256))
        except (TypeError, ValueError):
            raise ServiceError(400, "max_sites/cache_size must be integers")
        session = self.server.service.create_assignment(
            catalog,
            target_sql,
            assignment_id=payload.get("assignment_id"),
            max_sites=max_sites,
            cache_size=cache_size,
        )
        return 201, {
            "assignment_id": session.assignment_id,
            "target_sql": " ".join(session.target_sql.split()),
        }

    def _post_grade(self):
        payload = self._read_json()
        assignment_id = self._require(payload, "assignment_id")
        sql = self._require(payload, "sql")
        show_fixes = bool(payload.get("show_fixes", False))
        witness_text = bool(payload.get("witness_text", False))
        # witness_text needs a witness to anchor to, so it implies one.
        witness = bool(payload.get("witness", False)) or witness_text
        want_trace = bool(payload.get("trace", False))
        want_effort = bool(payload.get("effort", False))
        deadline = self._request_deadline(payload)
        session = self.server.service.session(assignment_id)
        trace_dict = None
        # Effort is always measured (two counter-dict copies) so the
        # per-route /metrics aggregation sees every grade; the response
        # carries the delta only on "effort": true requests.
        if want_trace:
            with TRACER.trace("grade", assignment=assignment_id) as handle:
                result = session.grade(
                    sql, witness=witness, effort=True, deadline=deadline
                )
            trace_dict = handle.to_dict()
        else:
            result = session.grade(
                sql, witness=witness, effort=True, deadline=deadline
            )
        if result.degraded:
            JOURNAL.record(
                "grade.degraded",
                route=self._route,
                assignment=assignment_id,
            )
        record_route_effort(self._route, result.effort)
        body = result.to_dict(show_fixes=show_fixes)
        if not want_effort:
            body.pop("effort", None)
        body["assignment_id"] = assignment_id
        body["text"] = result.text(
            show_fixes=show_fixes, witness_text=witness_text
        )
        if trace_dict is not None:
            body["trace"] = trace_dict
        return 200, body

    def _request_deadline(self, payload):
        """Per-request ``timeout_ms`` -> :class:`Deadline`, server-capped.

        ``max_timeout_ms`` on the server both caps client-requested
        budgets and, when set, applies as the default for requests that
        did not ask for one -- so an operator can bound worst-case grade
        latency fleet-wide.
        """
        raw = payload.get("timeout_ms")
        cap = getattr(self.server, "max_timeout_ms", None)
        if raw is None:
            return Deadline.after_ms(cap) if cap is not None else None
        try:
            timeout_ms = float(raw)
        except (TypeError, ValueError):
            raise ServiceError(400, "timeout_ms must be a number")
        if timeout_ms <= 0:
            raise ServiceError(400, "timeout_ms must be positive")
        if cap is not None:
            timeout_ms = min(timeout_ms, cap)
        return Deadline.after_ms(timeout_ms)

    def _post_witness(self):
        from repro.witness import witness_to_dict

        payload = self._read_json()
        assignment_id = self._require(payload, "assignment_id")
        sql = self._require(payload, "sql")
        session = self.server.service.session(assignment_id)
        result = session.grade(sql, witness=True, effort=True)
        record_route_effort(self._route, result.effort)
        return 200, {
            "assignment_id": assignment_id,
            "all_passed": result.all_passed,
            "found": result.witness is not None,
            "witness": (
                witness_to_dict(result.witness)
                if result.witness is not None
                else None
            ),
        }

    def _get_stats(self):
        self._drain_body()
        stats = self.server.service.stats()
        stats["http"] = http_stats()
        spiller = getattr(self.server, "spiller", None)
        if spiller is not None:
            stats["spill"] = spiller.stats()
        admission = getattr(self.server, "admission", None)
        if admission is not None:
            stats["admission"] = admission.stats()
        return 200, stats

    def _get_journal(self, query):
        """``GET /debug/journal?n=K``: the flight recorder's tail as JSON."""
        self._drain_body()
        n = None
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == "n":
                try:
                    n = max(0, int(value))
                except ValueError:
                    raise ServiceError(400, "n must be an integer")
        return 200, {"journal": JOURNAL.stats(), "events": JOURNAL.tail(n)}

    def _get_metrics(self):
        """Prometheus text exposition: registry metrics plus the
        scrape-time per-assignment solver/cache/session families."""
        self._drain_body()
        try:
            text = REGISTRY.render() + render_families(
                service_metric_families(self.server.service)
            )
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {error}"})
            return
        self._send_body(
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )


class HintHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server with admission control and graceful drain."""

    daemon_threads = True
    # Overload must be shed at the application layer (503 + Retry-After),
    # not by the kernel: with socketserver's default backlog of 5, a
    # connect burst overflows the accept queue and Linux drops handshake
    # ACKs -- clients then see connection resets and retransmit stalls
    # instead of a clean shed.
    request_queue_size = 128

    def drain(self, timeout=10.0):
        """Graceful shutdown: stop accepting, finish in-flight work.

        Must be called from a thread other than the one running
        ``serve_forever`` (which it stops).  New work requests are shed
        with 503 (``draining``) the moment this starts; the call then
        blocks up to ``timeout`` seconds for admitted requests to finish
        writing their complete responses.  Returns True when the server
        drained fully, False when the timeout left work in flight.
        """
        JOURNAL.record("server.drain.start")
        admission = getattr(self, "admission", None)
        if admission is not None:
            admission.start_drain()
        self.shutdown()  # stop serve_forever; no new connections accepted
        drained = (
            admission.wait_idle(timeout) if admission is not None else True
        )
        JOURNAL.record("server.drain.end", drained=drained)
        return drained


def make_server(host="127.0.0.1", port=0, service=None, slow_ms=None,
                spiller=None, admission=None, read_timeout=None,
                max_timeout_ms=None):
    """Build (but do not start) the threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    ``server.server_address``.  ``slow_ms`` enables per-request tracing
    with slow-request logging (see :class:`HintRequestHandler._handle`).
    ``spiller`` is exposed on the server so ``GET /stats`` can report the
    ``spill`` block (the caller still owns start/stop).

    Fault-tolerance knobs (see ``docs/service.md``, "Fault tolerance"):
    ``admission`` is an :class:`AdmissionController` (one is always
    attached -- unbounded by default -- so graceful drain works);
    ``read_timeout`` puts a socket timeout on request reads so stalled
    clients get 408/disconnected instead of pinning handler threads;
    ``max_timeout_ms`` caps (and defaults) per-request ``timeout_ms``
    grade budgets.
    """
    server = HintHTTPServer((host, port), HintRequestHandler)
    server.service = service or HintService()
    server.slow_ms = slow_ms
    server.spiller = spiller
    server.admission = admission or AdmissionController()
    server.read_timeout = read_timeout
    server.max_timeout_ms = max_timeout_ms
    return server


def serve(host="127.0.0.1", port=8100, service=None, quiet=False,
          spiller=None, slow_ms=None, admission=None, read_timeout=None,
          max_timeout_ms=None, drain_timeout=10.0):
    """Run the API server until interrupted; returns the exit code.

    ``spiller`` (a :class:`CacheSpiller`) is started alongside the server
    and stopped -- after a final flush attempt -- on the way out.
    ``slow_ms`` logs any request slower than the threshold together with
    its rendered span tree.

    Shutdown is graceful: on interrupt the admission controller starts
    shedding (503 ``draining``), in-flight requests get up to
    ``drain_timeout`` seconds to finish their complete responses, and the
    spiller performs its final flush only after the drain -- so the spill
    file includes artifacts from requests that finished during it.
    """
    HintRequestHandler.quiet = quiet
    server = make_server(host, port, service, slow_ms=slow_ms,
                         spiller=spiller, admission=admission,
                         read_timeout=read_timeout,
                         max_timeout_ms=max_timeout_ms)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro hint service listening on http://{bound_host}:{bound_port}")
    print("routes: POST /assignments  POST /grade  POST /witness  "
          "GET /stats  GET /metrics  GET /healthz  GET /debug/journal")
    if spiller is not None:
        spiller.start()
        print(f"cache spill every {spiller.interval:g}s -> {spiller.path}")
    if slow_ms is not None:
        print(f"tracing requests; logging those slower than {slow_ms:g}ms")
    controller = server.admission
    if controller.max_inflight is not None:
        print(f"admission: {controller.max_inflight} in flight, "
              f"queue {controller.max_queue} "
              f"(wait {controller.queue_timeout:g}s)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("\nshutting down (draining in-flight requests)")
    finally:
        # serve_forever has exited, so no new connections are accepted;
        # shed queued/late work and let admitted requests finish.
        JOURNAL.record("server.drain.start")
        controller.start_drain()
        drained = controller.wait_idle(drain_timeout)
        JOURNAL.record("server.drain.end", drained=drained)
        if not drained:  # pragma: no cover - hung in-flight work
            print(f"drain timed out after {drain_timeout:g}s "
                  f"({controller.inflight} request(s) still in flight)")
        if spiller is not None:
            spiller.stop()
        server.server_close()
    return 0
