"""Stdlib HTTP JSON API over assignment sessions.

A :class:`HintService` is a registry of
:class:`~repro.service.session.AssignmentSession` objects; the handler
exposes it over three routes served by a ``ThreadingHTTPServer``:

* ``POST /assignments`` -- register a target query; body
  ``{"schema": {...}, "target_sql": "..."}`` (schema in the same format as
  the CLI schema file), returns ``{"assignment_id": "a1", ...}``.
* ``POST /grade`` -- grade a submission; body
  ``{"assignment_id": "a1", "sql": "...", "show_fixes": false,
  "witness": false}`` (``"witness": true`` adds an executor-verified
  counterexample instance to wrong submissions).
* ``POST /witness`` -- just the counterexample; body
  ``{"assignment_id": "a1", "sql": "..."}``.
* ``GET /stats`` -- per-assignment cache/solver statistics plus
  process-level HTTP request/latency statistics.
* ``GET /metrics`` -- Prometheus text exposition (request counters and
  latency histograms, grade/stage histograms, per-assignment solver and
  cache counters).

Observability: every response increments ``repro_http_requests_total``
(and ``repro_http_errors_total`` for 4xx/5xx) and observes
``repro_http_request_seconds``, labeled by route (unknown paths collapse
into ``other`` to bound label cardinality).  A grade request carrying
``"trace": true`` returns its span tree in the response; starting the
server with ``slow_ms`` set wraps *every* request in a trace and logs the
rendered tree to stderr when handling exceeds the threshold.

Request hardening: bodies above ``MAX_BODY_BYTES`` are rejected with 413,
and POST requests whose ``Content-Length`` is absent or malformed get a
400 (both close the connection -- the body framing cannot be trusted).

Concurrency model: the threading server gives each request its own
thread; the registry is guarded by a service-level lock and each grade
takes its session's re-entrant lock, so concurrent submissions for the
same assignment are serialized (the solver is not concurrency-safe) while
different assignments grade in parallel.
"""

from __future__ import annotations

import itertools
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.catalog import Catalog
from repro.errors import ReproError
from repro.obs import REGISTRY, TRACER
from repro.obs.export import service_metric_families
from repro.obs.metrics import render_families
from repro.service.session import AssignmentSession

MAX_BODY_BYTES = 1_048_576

#: Routes used as metric label values; anything else is labeled "other"
#: so arbitrary request paths cannot blow up label cardinality.
KNOWN_ROUTES = frozenset(
    {"/assignments", "/grade", "/witness", "/stats", "/healthz", "/metrics"}
)

_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by route and status.",
    ("route", "status"),
)
_HTTP_ERRORS = REGISTRY.counter(
    "repro_http_errors_total",
    "HTTP error responses (status >= 400), by route and status.",
    ("route", "status"),
)
_HTTP_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling wall time, by route.",
    ("route",),
)


class ServiceError(Exception):
    """An HTTP-mappable request error."""

    def __init__(self, status, message):
        super().__init__(message)
        self.status = status


class HintService:
    """Registry of assignment sessions behind the HTTP front end."""

    def __init__(self):
        self._sessions = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.started_at = time.time()

    def create_assignment(
        self,
        catalog,
        target_sql,
        *,
        assignment_id=None,
        max_sites=2,
        cache_size=256,
    ):
        session = AssignmentSession(
            catalog,
            target_sql,
            max_sites=max_sites,
            cache_size=cache_size,
        )
        with self._lock:
            if assignment_id is None:
                assignment_id = f"a{next(self._ids)}"
            if assignment_id in self._sessions:
                raise ServiceError(
                    409, f"assignment {assignment_id!r} already exists"
                )
            session.assignment_id = assignment_id
            self._sessions[assignment_id] = session
        return session

    def session(self, assignment_id):
        with self._lock:
            session = self._sessions.get(assignment_id)
        if session is None:
            raise ServiceError(404, f"unknown assignment {assignment_id!r}")
        return session

    def stats(self):
        with self._lock:
            sessions = dict(self._sessions)
        return {
            "uptime": time.time() - self.started_at,
            "assignments": {
                aid: session.stats() for aid, session in sessions.items()
            },
        }


def http_stats():
    """Process-level HTTP request/latency statistics (``GET /stats``).

    Derived from the global registry's request counters and latency
    histograms, so counts span every server in the process; quantiles are
    bucket upper bounds (see :class:`repro.obs.Histogram`).
    """
    requests = {}
    for labels, value in _HTTP_REQUESTS.items():
        requests.setdefault(labels["route"], {})[labels["status"]] = value
    errors = {}
    for labels, value in _HTTP_ERRORS.items():
        errors[labels["route"]] = errors.get(labels["route"], 0) + value
    latency = {}
    for labels, value in _HTTP_LATENCY.items():
        route = labels["route"]
        latency[route] = {
            "count": value["count"],
            "mean_ms": round(
                value["sum"] / value["count"] * 1000.0, 3
            ) if value["count"] else 0.0,
            "p50_ms": round(
                _HTTP_LATENCY.quantile(0.5, route=route) * 1000.0, 3
            ),
            "p95_ms": round(
                _HTTP_LATENCY.quantile(0.95, route=route) * 1000.0, 3
            ),
            "p99_ms": round(
                _HTTP_LATENCY.quantile(0.99, route=route) * 1000.0, 3
            ),
        }
    return {"requests": requests, "errors": errors, "latency": latency}


class CacheSpiller:
    """Periodic background spill of an :class:`ArtifactCache` to disk.

    Until now the cache was load-at-start/save-at-shutdown only, so a
    crash lost every artifact computed since startup.  The spiller wakes
    every ``interval`` seconds and rewrites the spill file through
    :meth:`ArtifactCache.save`, whose temp-file + rename write is atomic:
    a crash mid-spill leaves the previous snapshot intact, and a restart
    loses at most one interval of work.

    Idle intervals are skipped via a cheap change marker -- every cache
    mutation in the serve path is preceded by a miss (and evictions move
    on overflow), so ``(size, misses, evictions)`` is a reliable
    dirtiness signal and an idle server never touches the disk.
    """

    def __init__(self, cache, path, interval):
        if interval <= 0:
            raise ValueError("spill interval must be positive")
        self.cache = cache
        self.path = path
        self.interval = interval
        self.spills = 0  # completed (non-skipped) spills
        self._stop = threading.Event()
        self._last_marker = self._marker()
        self._thread = threading.Thread(
            target=self._run, name="cache-spill", daemon=True
        )

    def _marker(self):
        stats = self.cache.stats()
        return (stats["size"], stats["misses"], stats["evictions"])

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        """Signal the loop, join it, then flush one final spill.

        Without the final flush, mutations landing after the last timer
        tick were lost on a clean shutdown -- and shutdown raced the
        background thread's in-flight spill against the server teardown.
        Joining first guarantees no concurrent writer; the flush itself
        is a no-op when the cache is clean (change-marker skip).
        """
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=self.interval + 30)
        try:
            self.spill()
        except OSError:  # pragma: no cover - disk trouble at shutdown
            pass

    def _run(self):
        while not self._stop.wait(self.interval):
            try:
                self.spill()
            except OSError:  # pragma: no cover - disk trouble; retry later
                pass

    def spill(self):
        """Write a snapshot now (if dirty); returns entries written."""
        marker = self._marker()
        if marker == self._last_marker:
            return 0
        count = self.cache.save(self.path)
        self._last_marker = marker
        self.spills += 1
        return count


class HintRequestHandler(BaseHTTPRequestHandler):
    """JSON request handler; the service lives on ``self.server.service``."""

    protocol_version = "HTTP/1.1"
    quiet = True

    def log_message(self, fmt, *args):  # pragma: no cover - noise control
        if not self.quiet:
            super().log_message(fmt, *args)

    # -- plumbing -------------------------------------------------------

    def _send_json(self, status, payload):
        body = json.dumps(payload).encode("utf-8")
        self._send_body(status, body, "application/json")

    def _send_body(self, status, body, content_type):
        """Single response exit point: writes the body, records metrics."""
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        route = getattr(self, "_route", "other")
        _HTTP_REQUESTS.inc(route=route, status=str(status))
        if status >= 400:
            _HTTP_ERRORS.inc(route=route, status=str(status))
        started = getattr(self, "_started", None)
        if started is not None:
            _HTTP_LATENCY.observe(time.perf_counter() - started, route=route)

    def _content_length(self):
        """Parse Content-Length, or None when absent.

        A malformed (non-integer or negative) value is a 400: the body
        framing cannot be trusted, so the connection is dropped after the
        response instead of resynchronized.
        """
        raw = self.headers.get("Content-Length")
        if raw is None:
            return None
        try:
            length = int(raw)
        except ValueError:
            self.close_connection = True
            raise ServiceError(400, "malformed Content-Length header")
        if length < 0:
            self.close_connection = True
            raise ServiceError(400, "malformed Content-Length header")
        return length

    def _drain_body(self):
        """Consume an unread request body so keep-alive stays in sync.

        Responding without reading the body leaves its bytes on the
        socket, and the next request on the persistent connection would
        be parsed out of them.
        """
        try:
            length = self._content_length() or 0
        except ServiceError:
            return  # malformed framing; _content_length closed the connection
        while length > 0:
            chunk = self.rfile.read(min(length, 65536))
            if not chunk:
                break
            length -= len(chunk)

    def _read_json(self):
        length = self._content_length()
        if length is None:
            # No framing at all: nothing safe to read on a keep-alive
            # socket, so reject and drop the connection.
            self.close_connection = True
            raise ServiceError(400, "missing Content-Length header")
        if length > MAX_BODY_BYTES:
            # Too large to drain; drop the connection after responding.
            self.close_connection = True
            raise ServiceError(413, "request body too large")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ServiceError(400, "empty request body")
        try:
            payload = json.loads(raw)
        except ValueError:
            raise ServiceError(400, "request body is not valid JSON")
        if not isinstance(payload, dict):
            raise ServiceError(400, "request body must be a JSON object")
        return payload

    def _require(self, payload, key, types=str):
        value = payload.get(key)
        if not isinstance(value, types):
            raise ServiceError(400, f"field {key!r} is required")
        return value

    def _dispatch(self, handler):
        try:
            status, payload = handler()
        except ServiceError as error:
            status, payload = error.status, {"error": str(error)}
        except ReproError as error:
            status, payload = 400, {
                "error": str(error),
                "kind": type(error).__name__,
            }
        except Exception as error:  # pragma: no cover - defensive
            status, payload = 500, {"error": f"internal error: {error}"}
        self._send_json(status, payload)

    # -- routes ---------------------------------------------------------

    def do_POST(self):
        self._handle("POST")

    def do_GET(self):
        self._handle("GET")

    def _handle(self, method):
        """Per-request bookkeeping around routing.

        Stamps the latency start and the metric route label, and -- when
        the server was started with ``slow_ms`` -- wraps the whole request
        in a trace, logging the rendered span tree to stderr if handling
        exceeds the threshold.
        """
        self._started = time.perf_counter()
        self._route = self.path if self.path in KNOWN_ROUTES else "other"
        slow_ms = getattr(self.server, "slow_ms", None)
        if slow_ms is None:
            self._route_request(method)
            return
        with TRACER.trace("http", method=method, path=self.path) as handle:
            self._route_request(method)
        if handle.duration_ms >= slow_ms:
            lines = [
                f"slow request: {method} {self.path} "
                f"took {handle.duration_ms:.1f}ms "
                f"(threshold {slow_ms:g}ms) trace={handle.trace_id}"
            ]
            lines.extend(f"  {line}" for line in handle.render())
            print("\n".join(lines), file=sys.stderr)

    def _route_request(self, method):
        if method == "POST":
            if self.path == "/assignments":
                self._dispatch(self._post_assignment)
            elif self.path == "/grade":
                self._dispatch(self._post_grade)
            elif self.path == "/witness":
                self._dispatch(self._post_witness)
            else:
                self._drain_body()
                self._send_json(404, {"error": f"no such route {self.path}"})
        else:
            if self.path == "/stats":
                self._dispatch(self._get_stats)
            elif self.path == "/metrics":
                self._get_metrics()
            elif self.path == "/healthz":
                self._drain_body()
                self._send_json(200, {"ok": True})
            else:
                self._drain_body()
                self._send_json(404, {"error": f"no such route {self.path}"})

    def _post_assignment(self):
        payload = self._read_json()
        spec = self._require(payload, "schema", dict)
        target_sql = self._require(payload, "target_sql")
        try:
            catalog = Catalog.from_spec(spec)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(400, f"invalid schema: {error}")
        try:
            max_sites = int(payload.get("max_sites", 2))
            cache_size = int(payload.get("cache_size", 256))
        except (TypeError, ValueError):
            raise ServiceError(400, "max_sites/cache_size must be integers")
        session = self.server.service.create_assignment(
            catalog,
            target_sql,
            assignment_id=payload.get("assignment_id"),
            max_sites=max_sites,
            cache_size=cache_size,
        )
        return 201, {
            "assignment_id": session.assignment_id,
            "target_sql": " ".join(session.target_sql.split()),
        }

    def _post_grade(self):
        payload = self._read_json()
        assignment_id = self._require(payload, "assignment_id")
        sql = self._require(payload, "sql")
        show_fixes = bool(payload.get("show_fixes", False))
        witness_text = bool(payload.get("witness_text", False))
        # witness_text needs a witness to anchor to, so it implies one.
        witness = bool(payload.get("witness", False)) or witness_text
        want_trace = bool(payload.get("trace", False))
        session = self.server.service.session(assignment_id)
        trace_dict = None
        if want_trace:
            with TRACER.trace("grade", assignment=assignment_id) as handle:
                result = session.grade(sql, witness=witness)
            trace_dict = handle.to_dict()
        else:
            result = session.grade(sql, witness=witness)
        body = result.to_dict(show_fixes=show_fixes)
        body["assignment_id"] = assignment_id
        body["text"] = result.text(
            show_fixes=show_fixes, witness_text=witness_text
        )
        if trace_dict is not None:
            body["trace"] = trace_dict
        return 200, body

    def _post_witness(self):
        from repro.witness import witness_to_dict

        payload = self._read_json()
        assignment_id = self._require(payload, "assignment_id")
        sql = self._require(payload, "sql")
        session = self.server.service.session(assignment_id)
        result = session.grade(sql, witness=True)
        return 200, {
            "assignment_id": assignment_id,
            "all_passed": result.all_passed,
            "found": result.witness is not None,
            "witness": (
                witness_to_dict(result.witness)
                if result.witness is not None
                else None
            ),
        }

    def _get_stats(self):
        self._drain_body()
        stats = self.server.service.stats()
        stats["http"] = http_stats()
        return 200, stats

    def _get_metrics(self):
        """Prometheus text exposition: registry metrics plus the
        scrape-time per-assignment solver/cache/session families."""
        self._drain_body()
        try:
            text = REGISTRY.render() + render_families(
                service_metric_families(self.server.service)
            )
        except Exception as error:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {error}"})
            return
        self._send_body(
            200,
            text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )


def make_server(host="127.0.0.1", port=0, service=None, slow_ms=None):
    """Build (but do not start) the threading HTTP server.

    ``port=0`` binds an ephemeral port (tests); the bound address is on
    ``server.server_address``.  ``slow_ms`` enables per-request tracing
    with slow-request logging (see :class:`HintRequestHandler._handle`).
    """
    server = ThreadingHTTPServer((host, port), HintRequestHandler)
    server.daemon_threads = True
    server.service = service or HintService()
    server.slow_ms = slow_ms
    return server


def serve(host="127.0.0.1", port=8100, service=None, quiet=False,
          spiller=None, slow_ms=None):
    """Run the API server until interrupted; returns the exit code.

    ``spiller`` (a :class:`CacheSpiller`) is started alongside the server
    and stopped -- after a final flush attempt -- on the way out.
    ``slow_ms`` logs any request slower than the threshold together with
    its rendered span tree.
    """
    HintRequestHandler.quiet = quiet
    server = make_server(host, port, service, slow_ms=slow_ms)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro hint service listening on http://{bound_host}:{bound_port}")
    print("routes: POST /assignments  POST /grade  POST /witness  "
          "GET /stats  GET /metrics  GET /healthz")
    if spiller is not None:
        spiller.start()
        print(f"cache spill every {spiller.interval:g}s -> {spiller.path}")
    if slow_ms is not None:
        print(f"tracing requests; logging those slower than {slow_ms:g}ms")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("\nshutting down")
    finally:
        if spiller is not None:
            spiller.stop()
        server.server_close()
    return 0
