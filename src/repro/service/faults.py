"""Deterministic fault injection for the serving stack.

Production code is instrumented with *named fault points* -- e.g.
``FAULTS.on_task("batch.worker", ...)`` in the pool worker,
``FAULTS.sleep("solver.slow")`` in the DPLL(T) round loop,
``FAULTS.raise_io("spill.io")`` in the cache spiller -- that are
zero-cost no-ops unless the matching point has been activated.  Tests
(``tests/test_faults.py``) and the CI ``chaos-smoke`` job activate
points through :meth:`FaultRegistry.activate` or the ``REPRO_FAULTS``
environment variable, which survives ``fork`` into pool workers:

    REPRO_FAULTS="batch.worker:mode=exit,n=2;solver.slow:ms=50"

Every activation is deterministic: a point either always fires, fires on
the *n*-th hit of a process-wide counter, or fires when the task payload
matches a substring -- no randomness, so a failing chaos test replays
exactly.

Fault points (see ``docs/service.md``):

``batch.worker``
    In-worker crash/hang injection.  ``mode=exit`` calls ``os._exit(1)``
    (simulates a segfaulted/OOM-killed worker), ``mode=hang`` sleeps
    ``hang_s`` seconds (default 3600 -- practically forever; the parent's
    ``task_timeout`` recovery path must fire first).  Select the victim
    task with ``n=<k>`` (the k-th task gr aded by this process, 1-based)
    or ``match=<substr>`` (against the canonical SQL).
``solver.slow``
    Sleep ``ms`` milliseconds per DPLL(T) round -- makes any query
    arbitrarily slow so deadline/degradation paths can be exercised with
    real pipeline work.
``spill.io``
    Raise :class:`OSError` from the spiller's write path.
``spill.stall``
    Sleep ``s`` seconds inside the spill write -- lets tests pin the
    background spill thread to exercise the ``stop()`` join-timeout path.

This module must stay import-light (stdlib + ``repro.obs``) so the
solver facade can import it without cycles.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.obs import JOURNAL

__all__ = ["FaultRegistry", "FaultPoint", "FAULTS", "stalled_client_socket"]

#: Environment variable holding fault activations (inherited over fork).
ENV_VAR = "REPRO_FAULTS"


@dataclass
class FaultPoint:
    """One activated fault point and its deterministic trigger."""

    name: str
    params: dict[str, str] = field(default_factory=dict)
    hits: int = 0

    def int_param(self, key: str, default: int = 0) -> int:
        try:
            return int(self.params.get(key, default))
        except ValueError:
            return default

    def float_param(self, key: str, default: float = 0.0) -> float:
        try:
            return float(self.params.get(key, default))
        except ValueError:
            return default

    def should_fire(self, payload: str | None = None) -> bool:
        """Deterministic trigger: every hit, the ``n``-th hit, or a match.

        Increments the hit counter on every call (so ``n`` counts calls,
        not matches).
        """
        self.hits += 1
        match = self.params.get("match")
        if match is not None:
            return payload is not None and match in payload
        nth = self.int_param("n", 0)
        if nth:
            return self.hits == nth
        return True


class FaultRegistry:
    """Process-wide registry of activated fault points.

    ``enabled`` is a plain attribute checked before any other work so
    production hot paths pay a single attribute load when no faults are
    active (the common case, including all benchmarks).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._points: dict[str, FaultPoint] = {}
        self._lock = threading.Lock()
        self.load_env()

    # -- activation ----------------------------------------------------

    def activate(self, name: str, **params: object) -> None:
        with self._lock:
            self._points[name] = FaultPoint(
                name, {k: str(v) for k, v in params.items()}
            )
            self.enabled = True

    def deactivate(self, name: str) -> None:
        with self._lock:
            self._points.pop(name, None)
            self.enabled = bool(self._points)

    def clear(self) -> None:
        with self._lock:
            self._points.clear()
            self.enabled = False

    def active(self, name: str) -> FaultPoint | None:
        if not self.enabled:
            return None
        return self._points.get(name)

    def load_env(self, spec: str | None = None) -> None:
        """Parse ``REPRO_FAULTS`` (``point:k=v,k=v;point2:...``).

        Called at import so pool workers spawned with any start method
        inherit activations through the environment.
        """
        if spec is None:
            spec = os.environ.get(ENV_VAR, "")
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, rest = chunk.partition(":")
            params: dict[str, str] = {}
            for pair in rest.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, _, value = pair.partition("=")
                params[key.strip()] = value.strip()
            self.activate(name.strip(), **params)

    # -- injection hooks (called from production code) -----------------

    def sleep(self, name: str) -> None:
        """Sleep ``ms`` (or ``s``) at an activated slow point; no-op otherwise."""
        point = self.active(name)
        if point is None:
            return
        point.hits += 1
        seconds = point.float_param("s", point.float_param("ms") / 1000.0)
        if seconds > 0:
            time.sleep(seconds)

    def raise_io(self, name: str) -> None:
        """Raise :class:`OSError` at an activated IO-error point."""
        point = self.active(name)
        if point is None:
            return
        if point.should_fire():
            JOURNAL.record("fault.fired", point=name)
            raise OSError(f"injected fault: {name}")

    def on_task(self, name: str, payload: str | None = None) -> None:
        """Crash or hang the current process at a worker fault point.

        ``mode=exit`` hard-exits (bypassing ``finally`` blocks, like a
        real segfault); ``mode=hang`` sleeps ``hang_s`` seconds.
        """
        point = self.active(name)
        if point is None:
            return
        if not point.should_fire(payload):
            return
        mode = point.params.get("mode", "exit")
        JOURNAL.record("fault.fired", point=name, mode=mode, pid=os.getpid())
        if mode == "hang":
            time.sleep(point.float_param("hang_s", 3600.0))
        else:
            os._exit(1)


#: The process-wide registry, seeded from ``REPRO_FAULTS`` at import.
FAULTS = FaultRegistry()


def stalled_client_socket(
    host: str, port: int, path: str, body_len: int = 512
) -> socket.socket:
    """Open a raw connection that sends headers then stalls mid-body.

    Declares ``Content-Length: body_len`` but writes nothing after the
    header block -- the server's read timeout must reclaim the handler
    thread (408 / connection close) instead of letting the client pin it.
    Returns the open socket; the caller closes it.
    """
    sock = socket.create_connection((host, port), timeout=30)
    request = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {body_len}\r\n"
        "\r\n"
    )
    sock.sendall(request.encode("ascii"))
    return sock
