"""Multiprocessing batch grader: shard unique submissions across workers.

Classroom piles are duplicate-heavy, so the batch grader splits grading
into a cheap front half and an expensive back half:

1. the parent parses + canonicalizes every submission (sub-millisecond
   each) and groups them by canonical form;
2. only the *unique* canonical queries are graded -- sharded across a
   process pool, each worker holding a persistent
   :class:`~repro.service.session.AssignmentSession` (one target parse,
   one warm solver per worker);
3. the parent seeds its own session cache with the worker reports and
   serves every submission from it, so per-submission results come out in
   input order, in each submitter's alias namespace, and byte-identical
   to a sequential run.

Per-worker solver counter deltas are merged into the batch statistics.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.obs import REGISTRY, TRACER, snapshot_delta
from repro.obs.effort import EFFORT_KEYS, effort_delta, effort_snapshot
from repro.service.session import AssignmentSession, _counter_delta


@dataclass(frozen=True)
class GradeError:
    """A submission that failed to parse/resolve; grading was skipped."""

    submission_sql: str
    error: str
    kind: str  # exception class name, e.g. "ParseError"

# Worker-process state, created once per worker by ``_init_worker``.
_WORKER_SESSION = None
_WORKER_WITNESS = False
_WORKER_TRACE = False


def _init_worker(catalog, target, max_sites, optimized,
                 witness_seed=0, witness=False, trace=False):
    global _WORKER_SESSION, _WORKER_WITNESS, _WORKER_TRACE
    _WORKER_SESSION = AssignmentSession(
        catalog, target, max_sites=max_sites, optimized=optimized,
        witness_seed=witness_seed,
    )
    _WORKER_WITNESS = witness
    _WORKER_TRACE = trace


def _grade_unique(canonical):
    """Grade one canonical query in a worker.

    Returns ``(report_or_None, error_or_None, solver_delta,
    witness_cache_entry_or_None, metrics_delta, trace_dict_or_None)``.
    Pipeline failures (e.g. ``RepairError`` when no viable repair exists
    under the site cap) are captured per-submission, never raised: one
    unrepairable query must not abort the rest of the pile.

    The worker's registry metrics (stage/grade histograms) are shipped
    back as a :func:`snapshot_delta` for the parent to merge, and with
    ``trace=True`` the whole run is captured as a serialized span tree
    for the parent to re-parent -- the same delta-merge discipline as the
    solver counter snapshot.

    When the pool was initialized with ``witness=True``, a wrong report's
    counterexample is generated here too -- the expensive half of witness
    construction rides the same shards as grading instead of serializing
    in the parent afterwards.  The raw cache entry (witness object, or
    the cached-negative sentinel) is returned so the parent can seed its
    cache with it verbatim; witnesses are deterministic per seed, so the
    output is byte-identical to a serial run.
    """
    session = _WORKER_SESSION
    before = session.solver.stats_snapshot()
    metrics_before = REGISTRY.snapshot()
    report, error, witness_entry, trace_dict = None, None, None, None
    handle = (
        TRACER.trace("grade", sql=canonical.to_sql())
        if _WORKER_TRACE
        else None
    )
    try:
        if handle is not None:
            handle.__enter__()
        try:
            report = session.grade_canonical(canonical)
            if _WORKER_WITNESS and not report.all_passed:
                session.witness_canonical(canonical)
                witness_entry = session.cache.get(("witness", canonical))
        finally:
            if handle is not None:
                handle.__exit__(None, None, None)
                trace_dict = handle.to_dict()
    except ReproError as exc:
        error = (str(exc), type(exc).__name__)
    after = session.solver.stats_snapshot()
    metrics_delta = snapshot_delta(metrics_before, REGISTRY.snapshot())
    return (
        report,
        error,
        _counter_delta(after, before),
        witness_entry,
        metrics_delta,
        trace_dict,
    )


def _merge_counters(total, delta):
    for key, value in delta.items():
        if isinstance(value, int):
            total[key] = total.get(key, 0) + value


@dataclass
class BatchResult:
    """Outcome of one batch grading run."""

    results: list  # GradeResult | GradeError per submission, input order
    elapsed: float
    unique: int  # distinct canonical forms attempted
    processes: int
    unique_failed: int = 0  # canonical forms whose pipeline run failed
    solver_stats: dict = field(default_factory=dict)
    cache_stats: dict = field(default_factory=dict)
    #: With ``trace=True``: one serialized span tree (the
    #: :meth:`TraceHandle.to_dict` shape) per successfully graded unique
    #: canonical form.
    traces: list = field(default_factory=list)

    @property
    def submissions(self):
        return len(self.results)

    @property
    def errors(self):
        return sum(1 for r in self.results if isinstance(r, GradeError))

    @property
    def throughput(self):
        return self.submissions / self.elapsed if self.elapsed else 0.0

    @property
    def cache_hit_rate(self):
        """Share of graded submissions served without a pipeline run.

        Only *successfully* graded forms count on either side: failed
        forms appear in ``unique`` but none of their submissions are
        graded, so they must not skew the ratio.
        """
        graded = self.submissions - self.errors
        if not graded:
            return 0.0
        return max(0.0, 1.0 - (self.unique - self.unique_failed) / graded)

    def stats(self):
        return {
            "submissions": self.submissions,
            "unique": self.unique,
            "errors": self.errors,
            "processes": self.processes,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "cache_hit_rate": self.cache_hit_rate,
            "cache": self.cache_stats,
            "solver": self.solver_stats,
        }


def _pool_context():
    # fork keeps the parsed catalog shared copy-on-write where available.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def grade_batch(
    catalog,
    target,
    submissions,
    *,
    processes=None,
    max_sites=2,
    optimized=True,
    session=None,
    witness=False,
    trace=False,
    effort=False,
):
    """Grade ``submissions`` (SQL strings) against one shared ``target``.

    ``processes=None`` picks ``min(cpu_count, unique forms)``; ``0`` or
    ``1`` grades serially in-process (same results, no pool).  Pass an
    existing ``session`` to reuse its cache across batches.

    ``trace=True`` captures one span tree per graded unique form on
    ``BatchResult.traces`` -- serialized in the worker processes and
    re-parented into the parent's active trace (when one is open).

    ``witness=True`` attaches an executor-verified counterexample to every
    wrong result.  Witness construction for the unique forms is sharded
    over the same worker pool as grading (generation is deterministic per
    seed, so the output matches a serial run byte for byte); forms already
    cached by a caller-supplied session fall back to generation in the
    serve loop.

    ``effort=True`` attaches the solver-effort counter delta of grading
    each unique canonical form to every result served from it.  The
    per-form deltas the workers already ship back for the solver-stats
    merge double as the attribution source, so effort costs nothing
    extra in the pool path; forms served from a pre-warmed cache carry
    an all-zero delta (no solver work was done for them in this batch).
    """
    start = time.perf_counter()
    if session is None:
        session = AssignmentSession(
            catalog, target, max_sites=max_sites, optimized=optimized,
            cache_size=max(256, 2 * len(submissions) + 1),
        )

    # Front half: dedupe by canonical form (cheap, stays in the parent).
    prepared = []
    unique = {}
    for sql in submissions:
        try:
            canonical, inverse = session.prepare(sql)
        except ReproError as error:
            prepared.append(GradeError(sql, str(error), type(error).__name__))
            continue
        prepared.append((canonical, inverse))
        if canonical not in unique and canonical not in session.cache:
            unique[canonical] = None
    # A caller-supplied session may have a smaller cache than this pile
    # has forms; grow it so every form referenced here (seeded now or
    # already cached) survives until the serve loop.  With witnesses each
    # wrong form occupies a second slot under ("witness", canonical).
    distinct_forms = {
        entry[0] for entry in prepared if not isinstance(entry, GradeError)
    }
    session.cache.maxsize = max(
        session.cache.maxsize,
        (2 if witness else 1) * len(distinct_forms) + 16,
    )

    pending = list(unique)
    if processes is None:
        processes = min(os.cpu_count() or 1, max(1, len(pending)))
    solver_stats = {}
    failed = {}  # canonical form -> (message, kind) for unrepairable piles
    traces = []
    form_efforts = {}  # canonical form -> effort delta of grading it

    # Back half: grade unique forms, sharded across workers when it pays.
    if processes > 1 and len(pending) > 1:
        ctx = _pool_context()
        chunksize = max(1, len(pending) // (processes * 4))
        with ctx.Pool(
            processes=min(processes, len(pending)),
            initializer=_init_worker,
            initargs=(session.catalog, session.target,
                      session.max_sites, session.optimized,
                      session.witness_seed, witness, trace),
        ) as pool:
            graded = pool.map(_grade_unique, pending, chunksize=chunksize)
        for canonical, (
            report, error, delta, witness_entry, metrics_delta, trace_dict
        ) in zip(pending, graded):
            _merge_counters(solver_stats, delta)
            REGISTRY.merge(metrics_delta)
            if trace_dict is not None:
                traces.append(trace_dict)
                # Graft the worker's spans into the parent's trace, when
                # one is open (e.g. corpus eval under --trace-jsonl).
                TRACER.adopt(trace_dict)
            if error is not None:
                failed[canonical] = error
                continue
            if effort:
                # The worker's solver delta for this form, re-keyed into
                # the stable EFFORT_KEYS reporting order.
                form_efforts[canonical] = effort_delta({}, delta)
            session.seed(canonical, report)
            session.pipeline_runs += 1
            session.pipeline_elapsed_total += report.elapsed
            if witness_entry is not None:
                # Seed the worker's witness (or cached-negative sentinel)
                # so the serve loop never regenerates it.
                session.cache.put(("witness", canonical), witness_entry)
                session.witness_runs += 1
    else:
        before = session.solver.stats_snapshot()
        for canonical in pending:
            form_before = effort_snapshot(session.solver) if effort else None
            handle = (
                TRACER.trace("grade", sql=canonical.to_sql())
                if trace
                else None
            )
            try:
                if handle is not None:
                    handle.__enter__()
                try:
                    report = session.grade_canonical(canonical)
                finally:
                    if handle is not None:
                        handle.__exit__(None, None, None)
                        traces.append(handle.to_dict())
                session.seed(canonical, report)
                if effort:
                    form_efforts[canonical] = effort_delta(
                        form_before, effort_snapshot(session.solver)
                    )
            except ReproError as exc:
                failed[canonical] = (str(exc), type(exc).__name__)
        _merge_counters(
            solver_stats,
            _counter_delta(session.solver.stats_snapshot(), before),
        )

    # Serve every submission from the warm cache, preserving input order.
    results = []
    for sql, entry in zip(submissions, prepared):
        if isinstance(entry, GradeError):
            results.append(entry)
            continue
        canonical, _ = entry
        if canonical in failed:
            message, kind = failed[canonical]
            results.append(GradeError(sql, message, kind))
            continue
        outcome = session.grade(sql, witness=witness, _prepared=entry)
        if effort:
            outcome = replace(
                outcome,
                effort=form_efforts.get(
                    canonical, dict.fromkeys(EFFORT_KEYS, 0)
                ),
            )
        results.append(outcome)
    return BatchResult(
        results=results,
        elapsed=time.perf_counter() - start,
        unique=len(pending),
        processes=processes,
        unique_failed=len(failed),
        solver_stats=solver_stats,
        cache_stats=session.cache.stats(),
        traces=traces,
    )
