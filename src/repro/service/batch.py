"""Multiprocessing batch grader: shard unique submissions across workers.

Classroom piles are duplicate-heavy, so the batch grader splits grading
into a cheap front half and an expensive back half:

1. the parent parses + canonicalizes every submission (sub-millisecond
   each) and groups them by canonical form;
2. only the *unique* canonical queries are graded -- sharded across a
   process pool, each worker holding a persistent
   :class:`~repro.service.session.AssignmentSession` (one target parse,
   one warm solver per worker);
3. the parent seeds its own session cache with the worker reports and
   serves every submission from it, so per-submission results come out in
   input order, in each submitter's alias namespace, and byte-identical
   to a sequential run.

Per-worker solver counter deltas are merged into the batch statistics.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace

from repro.errors import ReproError
from repro.obs import JOURNAL, REGISTRY, TRACER, snapshot_delta
from repro.obs.effort import EFFORT_KEYS, effort_delta, effort_snapshot
from repro.service.faults import FAULTS
from repro.service.session import AssignmentSession, _counter_delta

_WORKER_RECOVERIES = REGISTRY.counter(
    "repro_worker_recoveries_total",
    "Batch worker fault-recovery events, by kind "
    "(crash, hang, retry_ok, gave_up).",
    ("kind",),
)


@dataclass(frozen=True)
class GradeError:
    """A submission that could not be graded (parse/resolve/pipeline/worker).

    ``detail`` carries the innermost traceback frame of worker-side
    failures so batch errors are diagnosable from the parent without
    re-running the form; empty for parse-stage errors raised in the
    parent (the message is the whole story there).
    """

    submission_sql: str
    error: str
    kind: str  # exception class name, e.g. "ParseError"
    detail: str = ""

# Worker-process state, created once per worker by ``_init_worker``.
_WORKER_SESSION = None
_WORKER_WITNESS = False
_WORKER_TRACE = False


def _init_worker(catalog, target, max_sites, optimized,
                 witness_seed=0, witness=False, trace=False):
    global _WORKER_SESSION, _WORKER_WITNESS, _WORKER_TRACE
    _WORKER_SESSION = AssignmentSession(
        catalog, target, max_sites=max_sites, optimized=optimized,
        witness_seed=witness_seed,
    )
    _WORKER_WITNESS = witness
    _WORKER_TRACE = trace


def _grade_unique(canonical):
    """Grade one canonical query in a worker.

    Returns ``(report_or_None, error_or_None, solver_delta,
    witness_cache_entry_or_None, metrics_delta, trace_dict_or_None)``.
    Pipeline failures (e.g. ``RepairError`` when no viable repair exists
    under the site cap) are captured per-submission, never raised: one
    unrepairable query must not abort the rest of the pile.

    The worker's registry metrics (stage/grade histograms) are shipped
    back as a :func:`snapshot_delta` for the parent to merge, and with
    ``trace=True`` the whole run is captured as a serialized span tree
    for the parent to re-parent -- the same delta-merge discipline as the
    solver counter snapshot.

    When the pool was initialized with ``witness=True``, a wrong report's
    counterexample is generated here too -- the expensive half of witness
    construction rides the same shards as grading instead of serializing
    in the parent afterwards.  The raw cache entry (witness object, or
    the cached-negative sentinel) is returned so the parent can seed its
    cache with it verbatim; witnesses are deterministic per seed, so the
    output is byte-identical to a serial run.
    """
    session = _WORKER_SESSION
    if FAULTS.enabled:  # chaos harness: crash/hang this worker on demand
        FAULTS.on_task("batch.worker", payload=canonical.to_sql())
    before = session.solver.stats_snapshot()
    metrics_before = REGISTRY.snapshot()
    report, error, witness_entry, trace_dict = None, None, None, None
    handle = (
        TRACER.trace("grade", sql=canonical.to_sql())
        if _WORKER_TRACE
        else None
    )
    try:
        if handle is not None:
            handle.__enter__()
        try:
            report = session.grade_canonical(canonical)
            if _WORKER_WITNESS and not report.all_passed:
                session.witness_canonical(canonical)
                witness_entry = session.cache.get(("witness", canonical))
        finally:
            if handle is not None:
                handle.__exit__(None, None, None)
                trace_dict = handle.to_dict()
    except Exception as exc:
        # Any failure -- expected ReproErrors and unexpected bugs alike --
        # is captured per-form rather than raised: one bad query must not
        # abort the pile, and the parent needs enough context (class name
        # plus the innermost frame) to diagnose without re-running.
        error = (str(exc), type(exc).__name__, _innermost_frame())
    after = session.solver.stats_snapshot()
    metrics_delta = snapshot_delta(metrics_before, REGISTRY.snapshot())
    return (
        report,
        error,
        _counter_delta(after, before),
        witness_entry,
        metrics_delta,
        trace_dict,
    )


def _innermost_frame():
    """The deepest ``File "...", line N, in f`` frame of the active traceback."""
    for line in reversed(traceback.format_exc().splitlines()):
        if line.lstrip().startswith("File "):
            return line.strip()
    return ""


def _merge_counters(total, delta):
    for key, value in delta.items():
        if isinstance(value, int):
            total[key] = total.get(key, 0) + value


@dataclass
class BatchResult:
    """Outcome of one batch grading run."""

    results: list  # GradeResult | GradeError per submission, input order
    elapsed: float
    unique: int  # distinct canonical forms attempted
    processes: int
    unique_failed: int = 0  # canonical forms whose pipeline run failed
    solver_stats: dict = field(default_factory=dict)
    cache_stats: dict = field(default_factory=dict)
    #: With ``trace=True``: one serialized span tree (the
    #: :meth:`TraceHandle.to_dict` shape) per successfully graded unique
    #: canonical form.
    traces: list = field(default_factory=list)
    #: Worker fault-recovery tallies for this run: ``crashes`` (pool
    #: rounds broken by a dead worker), ``hangs`` (no-progress windows
    #: that tripped ``task_timeout``), ``retried_ok`` (forms recovered by
    #: an isolation retry), ``gave_up`` (forms recorded as
    #: :class:`GradeError` after exhausting retries).
    recoveries: dict = field(default_factory=dict)

    @property
    def submissions(self):
        return len(self.results)

    @property
    def errors(self):
        return sum(1 for r in self.results if isinstance(r, GradeError))

    @property
    def throughput(self):
        return self.submissions / self.elapsed if self.elapsed else 0.0

    @property
    def cache_hit_rate(self):
        """Share of graded submissions served without a pipeline run.

        Only *successfully* graded forms count on either side: failed
        forms appear in ``unique`` but none of their submissions are
        graded, so they must not skew the ratio.
        """
        graded = self.submissions - self.errors
        if not graded:
            return 0.0
        return max(0.0, 1.0 - (self.unique - self.unique_failed) / graded)

    def stats(self):
        return {
            "submissions": self.submissions,
            "unique": self.unique,
            "errors": self.errors,
            "processes": self.processes,
            "elapsed": self.elapsed,
            "throughput": self.throughput,
            "cache_hit_rate": self.cache_hit_rate,
            "cache": self.cache_stats,
            "solver": self.solver_stats,
            "recoveries": dict(self.recoveries),
        }


def _pool_context():
    # fork keeps the parsed catalog shared copy-on-write where available.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def _kill_executor(executor):
    """Tear down an executor that may hold hung or dead workers.

    ``shutdown`` alone would join hung workers forever; terminate the
    processes first, then reap them with a bounded join.
    """
    processes = list(getattr(executor, "_processes", {}).values())
    for proc in processes:
        if proc.is_alive():
            proc.terminate()
    executor.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.join(timeout=5)


def _pool_round(indices, pending, initargs, workers, task_timeout, graded):
    """One shared-pool grading round over ``indices`` into ``pending``.

    Completed forms land in ``graded`` (index -> worker result tuple).
    Returns ``(leftover_indices, reason)``: forms not completed because a
    worker died (``BrokenProcessPool`` fails every outstanding future) or
    because no future completed within a ``task_timeout`` window (a hung
    worker; only detected when a timeout was given).  ``reason`` is None
    on a clean round, else ``"crash"`` / ``"hang"``.
    """
    executor = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=initargs,
    )
    futures = {
        executor.submit(_grade_unique, pending[i]): i for i in indices
    }
    outstanding = set(futures)
    reason = None
    try:
        while outstanding:
            done, not_done = wait(
                outstanding, timeout=task_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # A full no-progress window: some worker is hung.  Every
                # outstanding form is handed to isolation retries (the
                # hung one will hang again solo and be blamed precisely).
                reason = "hang"
                break
            for future in done:
                try:
                    graded[futures[future]] = future.result()
                except Exception:
                    # The worker died (BrokenProcessPool / lost result).
                    # All remaining futures fail the same way, so stop the
                    # round rather than churning through them.
                    reason = "crash"
            outstanding = not_done
            if reason is not None:
                break
    finally:
        if reason is None:
            executor.shutdown(wait=True)
        else:
            _kill_executor(executor)
    leftovers = sorted(
        futures[f] for f in futures
        if futures[f] not in graded
    )
    return leftovers, reason


def _isolate_form(canonical, initargs, task_timeout, max_retries):
    """Grade one leftover form alone, retrying on a fresh single worker.

    Shared-pool failures cannot assign blame (a crashed worker fails every
    outstanding future); grading each leftover solo does: an innocent
    collateral form succeeds on the first isolation attempt, the culprit
    keeps failing and is recorded as an error tuple after ``max_retries``
    attempts with linear backoff.  Returns the worker result tuple on
    success, else ``(message, kind, detail)``.
    """
    sql = canonical.to_sql()
    failure = ("worker failed before reporting", "WorkerCrashError", "")
    for attempt in range(1, max_retries + 1):
        executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=_pool_context(),
            initializer=_init_worker,
            initargs=initargs,
        )
        future = executor.submit(_grade_unique, canonical)
        try:
            result = future.result(timeout=task_timeout)
            executor.shutdown(wait=True)
            if attempt > 1:
                _WORKER_RECOVERIES.inc(kind="retry_ok")
            JOURNAL.record("batch.retry_ok", sql=sql, attempt=attempt)
            return result
        except FuturesTimeoutError:
            failure = (
                f"worker hung grading this form (> {task_timeout:g}s)",
                "WorkerTimeoutError",
                "",
            )
        except BrokenProcessPool:
            failure = (
                "worker process died grading this form",
                "WorkerCrashError",
                "",
            )
        except Exception as exc:  # e.g. an unpicklable result
            failure = (str(exc), type(exc).__name__, "")
        _kill_executor(executor)
        JOURNAL.record(
            "batch.retry", sql=sql, attempt=attempt, error=failure[1]
        )
        if attempt < max_retries:
            time.sleep(0.05 * attempt)  # linear backoff before respawn
    _WORKER_RECOVERIES.inc(kind="gave_up")
    JOURNAL.record("batch.gave_up", sql=sql, error=failure[1])
    return failure


def grade_batch(
    catalog,
    target,
    submissions,
    *,
    processes=None,
    max_sites=2,
    optimized=True,
    session=None,
    witness=False,
    trace=False,
    effort=False,
    task_timeout=None,
    max_retries=2,
):
    """Grade ``submissions`` (SQL strings) against one shared ``target``.

    ``processes=None`` picks ``min(cpu_count, unique forms)``; ``0`` or
    ``1`` grades serially in-process (same results, no pool).  Pass an
    existing ``session`` to reuse its cache across batches.

    ``trace=True`` captures one span tree per graded unique form on
    ``BatchResult.traces`` -- serialized in the worker processes and
    re-parented into the parent's active trace (when one is open).

    ``witness=True`` attaches an executor-verified counterexample to every
    wrong result.  Witness construction for the unique forms is sharded
    over the same worker pool as grading (generation is deterministic per
    seed, so the output matches a serial run byte for byte); forms already
    cached by a caller-supplied session fall back to generation in the
    serve loop.

    ``effort=True`` attaches the solver-effort counter delta of grading
    each unique canonical form to every result served from it.  The
    per-form deltas the workers already ship back for the solver-stats
    merge double as the attribution source, so effort costs nothing
    extra in the pool path; forms served from a pre-warmed cache carry
    an all-zero delta (no solver work was done for them in this batch).

    The pool path is crash-tolerant: a worker that dies (or, with
    ``task_timeout`` set, makes no progress for a full window) fails only
    its own round -- completed results are kept, and every unfinished
    form is re-graded alone on a fresh single worker, up to
    ``max_retries`` attempts with backoff.  Forms that keep failing are
    recorded as per-submission :class:`GradeError`\\s
    (``WorkerCrashError`` / ``WorkerTimeoutError``) instead of aborting
    the pile.  ``task_timeout=None`` (the default) disables hang
    detection; crash detection is always on.
    """
    start = time.perf_counter()
    if session is None:
        session = AssignmentSession(
            catalog, target, max_sites=max_sites, optimized=optimized,
            cache_size=max(256, 2 * len(submissions) + 1),
        )

    # Front half: dedupe by canonical form (cheap, stays in the parent).
    prepared = []
    unique = {}
    for sql in submissions:
        try:
            canonical, inverse = session.prepare(sql)
        except ReproError as error:
            prepared.append(GradeError(sql, str(error), type(error).__name__))
            continue
        prepared.append((canonical, inverse))
        if canonical not in unique and canonical not in session.cache:
            unique[canonical] = None
    # A caller-supplied session may have a smaller cache than this pile
    # has forms; grow it so every form referenced here (seeded now or
    # already cached) survives until the serve loop.  With witnesses each
    # wrong form occupies a second slot under ("witness", canonical).
    distinct_forms = {
        entry[0] for entry in prepared if not isinstance(entry, GradeError)
    }
    session.cache.maxsize = max(
        session.cache.maxsize,
        (2 if witness else 1) * len(distinct_forms) + 16,
    )

    pending = list(unique)
    if processes is None:
        processes = min(os.cpu_count() or 1, max(1, len(pending)))
    solver_stats = {}
    failed = {}  # canonical form -> (message, kind) for unrepairable piles
    traces = []
    form_efforts = {}  # canonical form -> effort delta of grading it

    recoveries = {"crashes": 0, "hangs": 0, "retried_ok": 0, "gave_up": 0}

    # Back half: grade unique forms, sharded across workers when it pays.
    if processes > 1 and len(pending) > 1:
        initargs = (session.catalog, session.target,
                    session.max_sites, session.optimized,
                    session.witness_seed, witness, trace)
        graded_by_index = {}
        leftovers, reason = _pool_round(
            list(range(len(pending))), pending, initargs,
            min(processes, len(pending)), task_timeout, graded_by_index,
        )
        if reason is not None:
            recoveries["crashes" if reason == "crash" else "hangs"] += 1
            _WORKER_RECOVERIES.inc(kind=reason)
            JOURNAL.record(
                "batch.pool_broken", reason=reason, leftovers=len(leftovers)
            )
        for index in leftovers:
            outcome = _isolate_form(
                pending[index], initargs, task_timeout, max_retries
            )
            if len(outcome) == 3:  # (message, kind, detail) failure tuple
                failed[pending[index]] = outcome
                continue
            recoveries["retried_ok"] += 1
            graded_by_index[index] = outcome
        recoveries["gave_up"] = len(failed)
        graded = [graded_by_index.get(i) for i in range(len(pending))]
        for canonical, entry in zip(pending, graded):
            if entry is None:  # recorded in ``failed`` by isolation retries
                continue
            (
                report, error, delta, witness_entry, metrics_delta,
                trace_dict,
            ) = entry
            _merge_counters(solver_stats, delta)
            REGISTRY.merge(metrics_delta)
            if trace_dict is not None:
                traces.append(trace_dict)
                # Graft the worker's spans into the parent's trace, when
                # one is open (e.g. corpus eval under --trace-jsonl).
                TRACER.adopt(trace_dict)
            if error is not None:
                failed[canonical] = error
                continue
            if effort:
                # The worker's solver delta for this form, re-keyed into
                # the stable EFFORT_KEYS reporting order.
                form_efforts[canonical] = effort_delta({}, delta)
            session.seed(canonical, report)
            session.pipeline_runs += 1
            session.pipeline_elapsed_total += report.elapsed
            if witness_entry is not None:
                # Seed the worker's witness (or cached-negative sentinel)
                # so the serve loop never regenerates it.
                session.cache.put(("witness", canonical), witness_entry)
                session.witness_runs += 1
    else:
        before = session.solver.stats_snapshot()
        for canonical in pending:
            form_before = effort_snapshot(session.solver) if effort else None
            handle = (
                TRACER.trace("grade", sql=canonical.to_sql())
                if trace
                else None
            )
            try:
                if handle is not None:
                    handle.__enter__()
                try:
                    report = session.grade_canonical(canonical)
                finally:
                    if handle is not None:
                        handle.__exit__(None, None, None)
                        traces.append(handle.to_dict())
                session.seed(canonical, report)
                if effort:
                    form_efforts[canonical] = effort_delta(
                        form_before, effort_snapshot(session.solver)
                    )
            except ReproError as exc:
                failed[canonical] = (
                    str(exc), type(exc).__name__, _innermost_frame()
                )
        _merge_counters(
            solver_stats,
            _counter_delta(session.solver.stats_snapshot(), before),
        )

    # Serve every submission from the warm cache, preserving input order.
    results = []
    for sql, entry in zip(submissions, prepared):
        if isinstance(entry, GradeError):
            results.append(entry)
            continue
        canonical, _ = entry
        if canonical in failed:
            message, kind, detail = failed[canonical]
            results.append(GradeError(sql, message, kind, detail))
            continue
        outcome = session.grade(sql, witness=witness, _prepared=entry)
        if effort:
            outcome = replace(
                outcome,
                effort=form_efforts.get(
                    canonical, dict.fromkeys(EFFORT_KEYS, 0)
                ),
            )
        results.append(outcome)
    return BatchResult(
        results=results,
        elapsed=time.perf_counter() - start,
        unique=len(pending),
        processes=processes,
        unique_failed=len(failed),
        solver_stats=solver_stats,
        cache_stats=session.cache.stats(),
        traces=traces,
        recoveries=recoveries,
    )
