"""JSON codecs for cache artifacts: exact structural round-trips.

The artifact cache stores pipeline :class:`~repro.core.pipeline.Report`
objects and :class:`~repro.witness.build.Witness` instances keyed by
canonical :class:`~repro.query.ResolvedQuery` forms.  Spilling it to disk
(``ArtifactCache.save`` / ``load``) needs a serialization that
reconstructs *equal* objects -- the restored canonical query must hash and
compare identically to a freshly canonicalized submission, and a restored
report must render byte-identical hints -- so these codecs encode the full
term/formula/query structure rather than SQL text (re-parsing would need a
catalog and could normalize away tree shape).

Values are tagged: ``Fraction`` as ``{"f": [num, den]}``, floats as
``{"fl": x}``, strings and booleans natively (a bare string is always a
string *value*).
"""

from __future__ import annotations

from fractions import Fraction

from repro.catalog import SqlType
from repro.core.hints import Hint
from repro.core.pipeline import Report, StageResult
from repro.logic.formulas import And, BoolConst, Comparison, Not, Or
from repro.logic.terms import AggCall, Arith, Const, Neg, Var
from repro.query import FromEntry, ResolvedQuery
from repro.witness.build import Witness


# ----------------------------------------------------------------------
# Scalars
# ----------------------------------------------------------------------


def value_to_obj(value):
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, Fraction):
        return {"f": [value.numerator, value.denominator]}
    if isinstance(value, int):
        return {"f": [value, 1]}
    if isinstance(value, float):
        return {"fl": value}
    raise TypeError(f"cannot serialize value {value!r}")


def obj_to_value(obj):
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if "f" in obj:
        num, den = obj["f"]
        return Fraction(num, den)
    return obj["fl"]


# ----------------------------------------------------------------------
# Terms / formulas / queries
# ----------------------------------------------------------------------


def term_to_obj(term):
    if isinstance(term, Var):
        return {"t": "var", "n": term.name, "y": term.vtype.value}
    if isinstance(term, Const):
        return {"t": "const", "y": term.vtype.value, "v": value_to_obj(term.value)}
    if isinstance(term, Arith):
        return {
            "t": "arith",
            "op": term.op,
            "l": term_to_obj(term.left),
            "r": term_to_obj(term.right),
        }
    if isinstance(term, Neg):
        return {"t": "neg", "c": term_to_obj(term.child)}
    if isinstance(term, AggCall):
        return {
            "t": "agg",
            "f": term.func,
            "a": term_to_obj(term.arg) if term.arg is not None else None,
            "d": term.distinct,
        }
    raise TypeError(f"cannot serialize term {term!r}")


def obj_to_term(obj):
    tag = obj["t"]
    if tag == "var":
        return Var(obj["n"], SqlType[obj["y"]])
    if tag == "const":
        return Const(obj_to_value(obj["v"]), SqlType[obj["y"]])
    if tag == "arith":
        return Arith(obj["op"], obj_to_term(obj["l"]), obj_to_term(obj["r"]))
    if tag == "neg":
        return Neg(obj_to_term(obj["c"]))
    if tag == "agg":
        arg = obj_to_term(obj["a"]) if obj["a"] is not None else None
        return AggCall(obj["f"], arg, obj["d"])
    raise ValueError(f"unknown term tag {tag!r}")


def formula_to_obj(formula):
    if isinstance(formula, BoolConst):
        return {"t": "bool", "v": formula.value}
    if isinstance(formula, Comparison):
        return {
            "t": "cmp",
            "op": formula.op,
            "l": term_to_obj(formula.left),
            "r": term_to_obj(formula.right),
        }
    if isinstance(formula, Not):
        return {"t": "not", "c": formula_to_obj(formula.child)}
    if isinstance(formula, (And, Or)):
        return {
            "t": "and" if isinstance(formula, And) else "or",
            "c": [formula_to_obj(c) for c in formula.operands],
        }
    raise TypeError(f"cannot serialize formula {formula!r}")


def obj_to_formula(obj):
    tag = obj["t"]
    if tag == "bool":
        return BoolConst(obj["v"])
    if tag == "cmp":
        return Comparison(obj["op"], obj_to_term(obj["l"]), obj_to_term(obj["r"]))
    if tag == "not":
        return Not(obj_to_formula(obj["c"]))
    if tag in ("and", "or"):
        cls = And if tag == "and" else Or
        return cls(tuple(obj_to_formula(c) for c in obj["c"]))
    raise ValueError(f"unknown formula tag {tag!r}")


def query_to_obj(query):
    return {
        "t": "query",
        "from": [[e.table, e.alias] for e in query.from_entries],
        "where": formula_to_obj(query.where),
        "group": [term_to_obj(t) for t in query.group_by],
        "having": formula_to_obj(query.having),
        "select": [term_to_obj(t) for t in query.select],
        "aliases": list(query.select_aliases),
        "distinct": query.distinct,
    }


def obj_to_query(obj):
    return ResolvedQuery(
        from_entries=tuple(FromEntry(t, a) for t, a in obj["from"]),
        where=obj_to_formula(obj["where"]),
        group_by=tuple(obj_to_term(t) for t in obj["group"]),
        having=obj_to_formula(obj["having"]),
        select=tuple(obj_to_term(t) for t in obj["select"]),
        select_aliases=tuple(obj["aliases"]),
        distinct=obj["distinct"],
    )


# ----------------------------------------------------------------------
# Reports / witnesses
# ----------------------------------------------------------------------


def _hint_to_obj(hint):
    return {
        "stage": hint.stage,
        "kind": hint.kind,
        "message": hint.message,
        "site": hint.site,
        "fix": hint.fix,
    }


def _obj_to_hint(obj):
    return Hint(
        stage=obj["stage"],
        kind=obj["kind"],
        message=obj["message"],
        site=obj["site"],
        fix=obj["fix"],
    )


def report_to_obj(report):
    return {
        "t": "report",
        "stages": [
            {
                "stage": s.stage,
                "passed": s.passed,
                "hints": [_hint_to_obj(h) for h in s.hints],
                "cost": value_to_obj(s.repair_cost),
                "elapsed": s.elapsed,
            }
            for s in report.stages
        ],
        "final": query_to_obj(report.final_query),
        "target": query_to_obj(report.target_query),
        "elapsed": report.elapsed,
    }


def obj_to_report(obj):
    stages = []
    for item in obj["stages"]:
        # query_after is a per-run intermediate no report consumer reads
        # back out of the cache; it is not spilled.
        stages.append(
            StageResult(
                stage=item["stage"],
                passed=item["passed"],
                hints=tuple(_obj_to_hint(h) for h in item["hints"]),
                repair_cost=obj_to_value(item["cost"]),
                elapsed=item["elapsed"],
            )
        )
    return Report(
        stages=tuple(stages),
        final_query=obj_to_query(obj["final"]),
        target_query=obj_to_query(obj["target"]),
        elapsed=obj["elapsed"],
    )


def witness_to_obj(witness):
    return {
        "t": "witness",
        "tables": [
            [name, list(columns), [[value_to_obj(v) for v in row] for row in rows]]
            for name, columns, rows in witness.tables
        ],
        "wrong": [[value_to_obj(v) for v in row] for row in witness.wrong_result],
        "target": [[value_to_obj(v) for v in row] for row in witness.target_result],
        "stage": witness.stage,
        "source": witness.source,
        "assignments": list(witness.assignments),
        "elapsed": witness.elapsed,
    }


def obj_to_witness(obj):
    return Witness(
        tables=tuple(
            (
                name,
                tuple(columns),
                tuple(tuple(obj_to_value(v) for v in row) for row in rows),
            )
            for name, columns, rows in obj["tables"]
        ),
        wrong_result=tuple(
            tuple(obj_to_value(v) for v in row) for row in obj["wrong"]
        ),
        target_result=tuple(
            tuple(obj_to_value(v) for v in row) for row in obj["target"]
        ),
        stage=obj["stage"],
        source=obj["source"],
        assignments=tuple(obj["assignments"]),
        elapsed=obj["elapsed"],
    )


# ----------------------------------------------------------------------
# Cache entries (keys + artifacts)
# ----------------------------------------------------------------------


def key_to_obj(key):
    """Cache keys: a canonical query, or a ``(tag, query)`` composite."""
    if isinstance(key, ResolvedQuery):
        return query_to_obj(key)
    if (
        isinstance(key, tuple)
        and len(key) == 2
        and isinstance(key[0], str)
        and isinstance(key[1], ResolvedQuery)
    ):
        return {"t": "composite", "tag": key[0], "q": query_to_obj(key[1])}
    raise TypeError(f"cannot serialize cache key {key!r}")


def obj_to_key(obj):
    if obj["t"] == "composite":
        return (obj["tag"], obj_to_query(obj["q"]))
    return obj_to_query(obj)


def artifact_to_obj(artifact):
    """Cache artifacts: reports, witnesses, and string sentinels."""
    if isinstance(artifact, Report):
        return report_to_obj(artifact)
    if isinstance(artifact, Witness):
        return witness_to_obj(artifact)
    if isinstance(artifact, str):
        return {"t": "str", "v": artifact}
    raise TypeError(f"cannot serialize cache artifact {artifact!r}")


def obj_to_artifact(obj):
    tag = obj["t"]
    if tag == "report":
        return obj_to_report(obj)
    if tag == "witness":
        return obj_to_witness(obj)
    if tag == "str":
        return obj["v"]
    raise ValueError(f"unknown artifact tag {tag!r}")
