"""Service layer: long-lived grading sessions, caching, batching, HTTP.

The paper's headline use case is classroom grading: many students submit
wrong queries against the *same* reference query.  The one-shot CLI pays
full parse/resolve/solver cost per submission; this package amortizes it:

* :mod:`repro.service.session` -- an :class:`AssignmentSession` parses the
  target once and reuses one persistent :class:`~repro.solver.Solver`
  (learned clauses, literal caches) across every submission.
* :mod:`repro.service.cache` -- a bounded LRU artifact cache keyed by the
  canonical (alias-renamed) form of the submission, so identical and
  alpha-equivalent wrong answers are served memoized reports.
* :mod:`repro.service.batch` -- a multiprocessing batch grader that shards
  the *unique* canonical submissions across workers and merges solver
  statistics.
* :mod:`repro.service.server` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /assignments``, ``POST /grade``, ``POST /witness``,
  ``GET /stats``).

Wrong submissions can additionally be served a *counterexample witness*
(``witness=True`` / ``POST /witness``): a tiny executor-verified database
instance on which the submission and the reference query visibly disagree
(see :mod:`repro.witness`), cached alongside the hint reports by
canonical form.
"""

from repro.service.batch import BatchResult, GradeError, grade_batch
from repro.service.cache import ArtifactCache, canonical_key, canonicalize
from repro.service.session import AssignmentSession, GradeResult, format_report
from repro.service.server import (
    HintRequestHandler,
    HintService,
    make_server,
    serve,
)

__all__ = [
    "ArtifactCache",
    "AssignmentSession",
    "BatchResult",
    "GradeError",
    "GradeResult",
    "HintRequestHandler",
    "HintService",
    "canonical_key",
    "canonicalize",
    "format_report",
    "grade_batch",
    "make_server",
    "serve",
]
