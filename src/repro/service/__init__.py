"""Service layer: long-lived grading sessions, caching, batching, HTTP.

The paper's headline use case is classroom grading: many students submit
wrong queries against the *same* reference query.  The one-shot CLI pays
full parse/resolve/solver cost per submission; this package amortizes it:

* :mod:`repro.service.session` -- an :class:`AssignmentSession` parses the
  target once and reuses one persistent :class:`~repro.solver.Solver`
  (learned clauses, literal caches) across every submission.
* :mod:`repro.service.cache` -- a bounded LRU artifact cache keyed by the
  canonical (alias-renamed) form of the submission, so identical and
  alpha-equivalent wrong answers are served memoized reports.
* :mod:`repro.service.batch` -- a multiprocessing batch grader that shards
  the *unique* canonical submissions across workers, merges solver
  statistics, and survives worker crashes/hangs via per-form isolation
  retries.
* :mod:`repro.service.server` -- a stdlib ``ThreadingHTTPServer`` JSON API
  (``POST /assignments``, ``POST /grade``, ``POST /witness``,
  ``GET /stats``) with admission control, read timeouts, and graceful
  drain.
* :mod:`repro.service.deadline` / :mod:`repro.service.faults` -- the
  fault-tolerance substrate: cooperative time budgets threaded through
  the pipeline and solver, and deterministic named fault points for
  chaos testing (see ``docs/service.md``, "Fault tolerance").

Wrong submissions can additionally be served a *counterexample witness*
(``witness=True`` / ``POST /witness``): a tiny executor-verified database
instance on which the submission and the reference query visibly disagree
(see :mod:`repro.witness`), cached alongside the hint reports by
canonical form.

Attribute access is lazy (PEP 562): ``deadline``/``faults`` are imported
by :mod:`repro.core.pipeline` and the solver facade, and resolving them
must not drag in the heavy session/server modules (which import the
pipeline back -- an import cycle otherwise).
"""

from __future__ import annotations

# name -> submodule that defines it; resolved on first attribute access.
_EXPORTS = {
    "ArtifactCache": "cache",
    "AssignmentSession": "session",
    "BatchResult": "batch",
    "Deadline": "deadline",
    "DeadlineExceeded": "deadline",
    "FAULTS": "faults",
    "FaultRegistry": "faults",
    "GradeError": "batch",
    "GradeResult": "session",
    "HintRequestHandler": "server",
    "HintService": "server",
    "canonical_key": "cache",
    "canonicalize": "cache",
    "format_report": "session",
    "grade_batch": "batch",
    "make_server": "server",
    "serve": "server",
    "stalled_client_socket": "faults",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
