"""Cooperative time budgets for the grading pipeline.

A :class:`Deadline` is a wall-clock budget created at request entry
(HTTP ``timeout_ms``, CLI ``--timeout-ms``) and threaded down through
:class:`repro.core.pipeline.QrHint`, the MinFix truth-table search, and
the DPLL(T) solver loops.  The deep layers poll it at cheap checkpoints
(once per solver round / every few hundred DFS nodes) via
:meth:`Deadline.check`, which raises :class:`DeadlineExceeded` once the
budget is spent.  The pipeline catches the exception at stage
granularity and returns a best-effort *partial* report (stages graded so
far plus a coarse stage-level hint for the stage that ran out of time)
instead of hanging -- see ``docs/service.md`` ("Fault tolerance").

Design constraints:

* polls must be cheap: ``expired()`` is one ``monotonic()`` call and a
  compare, no locks, no allocation;
* this module must stay import-light (stdlib + ``repro.errors`` only) so
  the core pipeline and solver can import it without dragging the whole
  service package -- ``repro/service/__init__.py`` is lazy for the same
  reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(ReproError):
    """Raised by a checkpoint poll once a :class:`Deadline` has expired."""


@dataclass(frozen=True, slots=True)
class Deadline:
    """A wall-clock budget expressed as an absolute ``time.monotonic()`` instant.

    Immutable so it can be shared freely across pipeline stages, the
    solver facade, and worker threads without synchronisation.
    """

    #: Absolute ``time.monotonic()`` instant after which the budget is spent.
    expires_at: float

    @classmethod
    def after_ms(cls, budget_ms: float) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from now."""
        return cls(expires_at=time.monotonic() + budget_ms / 1000.0)

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def remaining_ms(self) -> float:
        """Milliseconds left on the budget; ``0.0`` once expired."""
        return max(0.0, (self.expires_at - time.monotonic()) * 1000.0)

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        ``where`` names the checkpoint (``"solver"``, ``"minfix"``, a
        stage name) and is carried in the exception message so degraded
        reports can say which layer ran out of time.
        """
        if time.monotonic() >= self.expires_at:
            raise DeadlineExceeded(
                f"deadline exceeded at {where}" if where else "deadline exceeded"
            )
