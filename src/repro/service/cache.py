"""Bounded LRU artifact cache keyed by canonical submission form.

Classroom submission piles are duplicate-heavy: the same wrong answer is
handed in dozens of times, differing only in whitespace, keyword case, or
the spelling of table aliases.  Two submissions whose *resolved* queries
are equal up to a consistent renaming of FROM aliases (alpha-equivalence)
get identical hints modulo that renaming, so the cache keys every
submission by its canonical form: the resolved query with aliases renamed
positionally (``_s0``, ``_s1``, ... in FROM order).

The canonical :class:`~repro.query.ResolvedQuery` is a frozen dataclass of
frozen dataclasses, hence hashable, and is used directly as the cache key.
Derived artifacts ride in the same cache under composite keys: witness
instances are stored as ``("witness", canonical)`` (with a sentinel for
cached negative results), so hint reports and their counterexamples share
one LRU budget and eviction policy.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import replace

from repro.logic.formulas import And, BoolConst, Comparison, Not, Or
from repro.logic.substitute import substitute_term
from repro.logic.terms import Term, Var
from repro.obs import JOURNAL, TRACER
from repro.query import FromEntry

#: Prefix for canonical alias names.  Deliberately not a legal student
#: alias style (leading underscore) so remapping back to the submitter's
#: aliases can use plain word-boundary matching on hint text.
CANON_ALIAS_PREFIX = "_s"


def _rename_formula(formula, var_mapping):
    """Structure-preserving variable rename (no And/Or flattening).

    :func:`repro.logic.substitute.substitute` rebuilds formulas through the
    ``conj``/``disj`` smart constructors, which flatten nested connectives.
    Cache canonicalization must be an *exact* inverse-renamable image of
    the submission -- the pipeline's repaired output is rendered back to
    the submitter -- so the tree shape is preserved node for node.
    """
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Comparison):
        return Comparison(
            formula.op,
            substitute_term(formula.left, var_mapping),
            substitute_term(formula.right, var_mapping),
        )
    if isinstance(formula, Not):
        return Not(_rename_formula(formula.child, var_mapping))
    if isinstance(formula, (And, Or)):
        return type(formula)(
            tuple(_rename_formula(c, var_mapping) for c in formula.operands)
        )
    raise TypeError(f"not a formula: {formula!r}")


def rename_query_aliases(query, mapping):
    """Like :meth:`ResolvedQuery.rename_aliases`, but structure-preserving."""
    var_mapping = {}
    for obj in [query.where, query.having, *query.group_by, *query.select]:
        for var in obj.variables():
            alias, _, column = var.name.partition(".")
            if alias in mapping:
                var_mapping[var] = Var(f"{mapping[alias]}.{column}", var.vtype)
    return replace(
        query,
        from_entries=tuple(
            FromEntry(e.table, mapping.get(e.alias, e.alias))
            for e in query.from_entries
        ),
        where=_rename_formula(query.where, var_mapping),
        group_by=tuple(
            substitute_term(t, var_mapping) for t in query.group_by
        ),
        having=_rename_formula(query.having, var_mapping),
        select=tuple(substitute_term(t, var_mapping) for t in query.select),
    )


def canonicalize(query):
    """Return ``(canonical_query, alias_mapping)`` for a resolved query.

    ``alias_mapping`` maps each original alias to its canonical name.
    Renaming is simultaneous, so pre-existing ``_sN`` aliases cannot chain.
    """
    mapping = {
        entry.alias: f"{CANON_ALIAS_PREFIX}{i}"
        for i, entry in enumerate(query.from_entries)
    }
    return rename_query_aliases(query, mapping), mapping


def canonical_key(query):
    """The cache key for a resolved query: its canonical form."""
    canonical, _ = canonicalize(query)
    return canonical


class ArtifactCache:
    """Thread-safe bounded LRU mapping of canonical queries to artifacts.

    A hit refreshes recency; inserting beyond ``maxsize`` evicts the least
    recently used entry.  ``hits`` / ``misses`` / ``evictions`` counters
    feed the session and server statistics endpoints.
    """

    def __init__(self, maxsize=256):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        """Return the cached artifact or None, updating LRU order."""
        with TRACER.span("cache.get") as span:
            with self._lock:
                if key not in self._entries:
                    self.misses += 1
                    span.set(hit=False)
                    JOURNAL.record("cache.miss", misses=self.misses)
                    return None
                self.hits += 1
                self._entries.move_to_end(key)
                span.set(hit=True)
                JOURNAL.record("cache.hit", hits=self.hits)
                return self._entries[key]

    def put(self, key, artifact):
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = artifact
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            JOURNAL.record(
                "cache.evict", evicted=evicted, evictions=self.evictions
            )

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries

    def clear(self):
        with self._lock:
            self._entries.clear()

    # -- disk spill -----------------------------------------------------

    def save(self, path):
        """Spill every cached entry to a JSON file; returns the count.

        Entries are written oldest-first, so a later :meth:`load`
        reproduces the LRU order exactly.  Artifacts the structural codecs
        do not understand (see :mod:`repro.service.serialize`) are skipped
        rather than failing the spill.  The write is atomic (temp file +
        rename), so a crash mid-save never truncates an existing spill.
        """
        import os

        from repro.service.serialize import artifact_to_obj, key_to_obj

        with self._lock:
            entries = list(self._entries.items())
        payload = []
        for key, artifact in entries:
            try:
                payload.append(
                    {
                        "key": key_to_obj(key),
                        "artifact": artifact_to_obj(artifact),
                    }
                )
            except TypeError:
                continue
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w") as handle:
                json.dump({"version": 1, "entries": payload}, handle)
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
        return len(payload)

    def load(self, path):
        """Restore entries saved by :meth:`save`; returns the count.

        Restored entries go through :meth:`put`, so the cache bound and
        eviction policy apply as if they had just been computed.  The
        restored canonical keys compare equal to freshly canonicalized
        submissions, which is what makes cross-restart reuse work.
        """
        from repro.service.serialize import obj_to_artifact, obj_to_key

        with open(path) as handle:
            payload = json.load(handle)
        count = 0
        for item in payload.get("entries", []):
            self.put(obj_to_key(item["key"]), obj_to_artifact(item["artifact"]))
            count += 1
        return count

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self):
        with self._lock:
            size = len(self._entries)
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
