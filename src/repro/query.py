"""Resolved query intermediate representation.

A :class:`ResolvedQuery` is the typed, name-resolved form of a single-block
SPJ/SPJA query: FROM is a list of (table, alias) pairs, and WHERE / GROUP BY
/ HAVING / SELECT are logic-level formulas and terms whose variables are
fully qualified ``alias.column`` references.  Every Qr-Hint stage operates
on this representation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

from repro.logic.formulas import Formula, TRUE
from repro.logic.substitute import rename_variables
from repro.logic.terms import Term


@dataclass(frozen=True)
class FromEntry:
    """One FROM-clause entry: a base table under an alias."""

    table: str  # canonical (catalog) table name
    alias: str  # lower-cased alias; defaults to the table name

    def __str__(self):
        if self.alias == self.table.lower():
            return self.table
        return f"{self.table} {self.alias}"


@dataclass(frozen=True)
class ResolvedQuery:
    """A resolved single-block query."""

    from_entries: tuple[FromEntry, ...]
    where: Formula = TRUE
    group_by: tuple[Term, ...] = ()
    having: Formula = TRUE
    select: tuple[Term, ...] = ()
    select_aliases: tuple = ()
    distinct: bool = False

    # -- structure queries ---------------------------------------------

    @property
    def is_spja(self):
        """True if the query has grouping, aggregation, or DISTINCT."""
        if self.group_by or self.distinct:
            return True
        if self.having != TRUE:
            return True
        return any(term.has_aggregate() for term in self.select)

    def tables_multiset(self):
        """``Tables(Q)``: the multiset of FROM tables (Section 4)."""
        return Counter(entry.table.lower() for entry in self.from_entries)

    def aliases(self):
        """``Aliases(Q)``: the set of FROM aliases."""
        return [entry.alias for entry in self.from_entries]

    def aliases_of(self, table):
        """``Aliases(Q, T)``: aliases associated with ``table``."""
        lowered = table.lower()
        return [e.alias for e in self.from_entries if e.table.lower() == lowered]

    def table_of(self, alias):
        """``Table(Q, t)``: the table an alias refers to, or None."""
        for entry in self.from_entries:
            if entry.alias == alias:
                return entry.table
        return None

    # -- transformation -------------------------------------------------

    def rename_aliases(self, mapping):
        """Rename FROM aliases and all ``alias.column`` variable references.

        ``mapping`` maps old alias -> new alias.  Used to unify the target
        query with the working query under a table mapping (Definition 1).
        """
        new_entries = tuple(
            FromEntry(e.table, mapping.get(e.alias, e.alias))
            for e in self.from_entries
        )
        var_rename = {}
        for obj in [self.where, self.having, *self.group_by, *self.select]:
            for var in obj.variables():
                alias, _, column = var.name.partition(".")
                if alias in mapping:
                    var_rename[var.name] = f"{mapping[alias]}.{column}"
        return replace(
            self,
            from_entries=new_entries,
            where=rename_variables(self.where, var_rename),
            group_by=tuple(rename_variables(t, var_rename) for t in self.group_by),
            having=rename_variables(self.having, var_rename),
            select=tuple(rename_variables(t, var_rename) for t in self.select),
        )

    # -- rendering --------------------------------------------------------

    def to_sql(self):
        """Render back to SQL text (for hints and examples)."""
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        items = []
        for term, alias in zip(self.select, self.select_aliases or [None] * len(self.select)):
            items.append(f"{term} AS {alias}" if alias else str(term))
        parts.append(", ".join(items))
        parts.append("FROM " + ", ".join(str(e) for e in self.from_entries))
        if self.where != TRUE:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(t) for t in self.group_by))
        if self.having != TRUE:
            parts.append(f"HAVING {self.having}")
        return " ".join(parts)

    def __str__(self):
        return self.to_sql()
