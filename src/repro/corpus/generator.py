"""Corpus generation: fan whole-query mutations across bundled schemas.

:class:`CorpusGenerator` turns the reference queries of the bundled schema
sources into a pool of ground-truth-labeled wrong queries.  Every entry is
produced from its own derived seed (``"{seed}:{schema}:{qid}:{index}"``),
so any single corpus entry can be regenerated in isolation; the pool is
deduplicated by the service layer's canonical alias-renamed form, which is
exactly the unit the artifact cache grades once, so corpus size == the
number of genuinely distinct grading problems.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.mutations import mutate_query, stages_of
from repro.corpus.schemas import bundled_sources
from repro.errors import ReproError
from repro.service.cache import canonical_key
from repro.sqlparser.rewrite import parse_query_extended

#: Probability of a 2-error entry (when ``max_errors`` allows it).
_TWO_ERROR_RATE = 0.4
#: Probability of restricting an entry's mutations to one focus stage,
#: keeping rare stages (GROUP BY, HAVING, FROM) represented in the mix.
_FOCUS_RATE = 0.35


@dataclass(frozen=True)
class CorpusEntry:
    """One generated wrong query with its ground truth and provenance."""

    schema: str
    qid: str
    target_sql: str
    wrong_sql: str
    mutations: tuple  # MutationRecord, in application order
    difficulty: int  # mutation count x stage mix
    seed: str  # the derived per-entry seed (regenerates this entry alone)

    @property
    def stages(self):
        return stages_of(self.mutations)

    def to_dict(self):
        return {
            "schema": self.schema,
            "qid": self.qid,
            "target_sql": " ".join(self.target_sql.split()),
            "wrong_sql": self.wrong_sql,
            "mutations": [m.to_dict() for m in self.mutations],
            "difficulty": self.difficulty,
            "seed": self.seed,
        }


class CorpusGenerator:
    """Generates a deduplicated corpus of wrong queries with ground truth."""

    def __init__(self, schemas=None, seed=0, max_errors=2):
        self.sources = bundled_sources(schemas)
        self.seed = seed
        self.max_errors = max_errors
        self.duplicates = 0  # mutants dropped by canonical-form dedup
        self.failures = 0  # derived seeds that produced no usable mutant

    # ------------------------------------------------------------------

    def _focus_stages(self, query, rng):
        """Occasionally pin an entry to one stage so the mix stays broad."""
        if rng.random() >= _FOCUS_RATE:
            return None
        applicable = ["SELECT", "FROM"]
        if query.where.atoms():
            applicable.append("WHERE")
        if query.group_by:
            applicable.append("GROUP BY")
        if query.having.atoms():
            applicable.append("HAVING")
        return (rng.choice(applicable),)

    def entry_for(self, source, qid, target_sql, index):
        """The corpus entry a derived seed produces, or None.

        Pure function of ``(generator seed, schema, qid, index)``; the
        dedup bookkeeping lives in :meth:`generate`.
        """
        try:
            target = parse_query_extended(target_sql, source.catalog())
        except ReproError:
            return None
        entry, _ = self._entry(source, qid, target, target_sql, index)
        return entry

    def _entry(self, source, qid, target, target_sql, index):
        """``(CorpusEntry, canonical wrong form)`` for one derived seed.

        Takes the already-resolved ``target`` so :meth:`generate` parses
        each reference query once, not once per seed.
        """
        seed_str = f"{self.seed}:{source.name}:{qid}:{index}"
        rng = random.Random(seed_str)
        num_errors = 1
        if self.max_errors > 1 and rng.random() < _TWO_ERROR_RATE:
            num_errors = min(2, self.max_errors)
        catalog = source.catalog()
        stages = self._focus_stages(target, rng)
        mutant = mutate_query(
            target, catalog, num_errors=num_errors, rng=rng, stages=stages
        )
        if mutant is None and stages is not None:
            mutant = mutate_query(target, catalog, num_errors=num_errors, rng=rng)
        if mutant is None:
            return None, None
        entry = CorpusEntry(
            schema=source.name,
            qid=qid,
            target_sql=target_sql,
            wrong_sql=mutant.wrong.to_sql(),
            mutations=mutant.mutations,
            difficulty=mutant.difficulty,
            seed=seed_str,
        )
        return entry, canonical_key(mutant.wrong)

    def generate(self, per_query=20):
        """Yield deduplicated corpus entries, ``per_query`` seeds per target.

        Deduplication is by ``(schema, canonical target, canonical wrong)``
        using the service's alias-renamed canonical form, so two mutants
        differing only in formatting or alias spelling count once.
        """
        seen = set()
        for source in self.sources:
            catalog = source.catalog()
            for qid, target_sql in source.targets:
                try:
                    target = parse_query_extended(target_sql, catalog)
                except ReproError:
                    continue
                target_key = canonical_key(target)
                for index in range(per_query):
                    entry, wrong_key = self._entry(
                        source, qid, target, target_sql, index
                    )
                    if entry is None:
                        self.failures += 1
                        continue
                    key = (source.name, target_key, wrong_key)
                    if key in seen:
                        self.duplicates += 1
                        continue
                    seen.add(key)
                    yield entry

    def generate_pool(self, per_query=20):
        """The deduplicated corpus as a list."""
        return list(self.generate(per_query=per_query))


def stage_mix(entries):
    """Histogram of touched stages across corpus entries."""
    mix = {}
    for entry in entries:
        for stage in entry.stages:
            mix[stage] = mix.get(stage, 0) + 1
    return mix
