"""Corpus-scale evaluation: push a generated pool through the batch grader.

For every ``(schema, target)`` group the harness runs
:func:`repro.service.batch.grade_batch` (the production batch path:
canonical-form dedup, optional multiprocessing, warm per-worker solvers)
and folds the per-entry outcomes into corpus-level metrics:

* **grade success rate** -- share of entries graded without a pipeline
  error (parse failures and ``RepairError`` both count as errors);
* **hint coverage** -- share of graded entries flagged wrong (every
  flagged entry carries at least one hint by construction; un-flagged
  mutants are *benign*: the mutation accidentally preserved semantics,
  and ``by_kind`` attributes each benign entry to its mutation kinds so
  every miss is accounted for.  The two benign classes in the bundled
  corpus: qualification-only mutations, where the recorded
  extra/missing/wrong-column edit merely toggled ``col`` <-> ``table.col``
  spelling, and join-equality column swaps, where the swapped column is
  equated with the original by a WHERE join predicate -- see the
  ``TestBenignMutants`` regression tests);
* **ground-truth agreement** -- per flagged entry, the hinted stages are
  compared against the mutated stages (mean recall + exact-match rate);
* **witness coverage** -- optionally, counterexample generation over a
  deterministic subsample of the flagged entries;
* **throughput** -- graded entries per second of batch-grading time;
* **repair-cost attribution** -- per mutation kind, the mean and p95
  pipeline time of the entries carrying that kind (``grade_ms_mean`` /
  ``grade_ms_p95`` in ``by_kind``), so expensive-to-grade mutation
  classes are visible in the report and in ``BENCH_corpus.json``;
* **solver-effort attribution** -- per mutation kind, the mean solver
  counter deltas (SAT calls, propagations, conflicts, theory rounds,
  learned clauses, cores, ...) of grading the entries carrying that kind
  (the ``effort`` block inside ``by_kind``): wall time says a kind is
  slow, effort says *why* -- which mutation classes actually burn solver
  work rather than pipeline bookkeeping.

With ``trace_jsonl=PATH`` the batch grader also captures one span tree
per unique graded form (serialized in the workers, re-parented in the
parent) and writes them as JSON lines.
"""

from __future__ import annotations

import json
import math
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.corpus.schemas import bundled_sources
from repro.errors import ReproError
from repro.obs.effort import mean_effort
from repro.service.batch import GradeError, grade_batch
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import generate_witness


@dataclass
class CorpusEvalResult:
    """Corpus-level metrics plus the raw per-entry outcomes."""

    total: int = 0
    graded: int = 0
    errors: int = 0
    flagged: int = 0  # graded entries with at least one hint
    benign: int = 0  # graded entries the pipeline found equivalent
    stage_recall_sum: float = 0.0
    stage_exact: int = 0
    witness_attempted: int = 0
    witness_found: int = 0
    grade_elapsed: float = 0.0
    witness_elapsed: float = 0.0
    processes: int = 0
    by_schema: dict = field(default_factory=dict)
    by_kind: dict = field(default_factory=dict)
    #: ``(entry, GradeResult | GradeError)`` in corpus order.
    outcomes: list = field(default_factory=list)

    # -- derived metrics ------------------------------------------------

    @property
    def grade_success_rate(self):
        return self.graded / self.total if self.total else 0.0

    @property
    def hint_coverage(self):
        return self.flagged / self.graded if self.graded else 0.0

    @property
    def stage_recall(self):
        return self.stage_recall_sum / self.flagged if self.flagged else 0.0

    @property
    def stage_exact_rate(self):
        return self.stage_exact / self.flagged if self.flagged else 0.0

    @property
    def witness_coverage(self):
        if not self.witness_attempted:
            return 0.0
        return self.witness_found / self.witness_attempted

    @property
    def throughput(self):
        return self.graded / self.grade_elapsed if self.grade_elapsed else 0.0

    def to_dict(self):
        return {
            "total": self.total,
            "graded": self.graded,
            "errors": self.errors,
            "flagged": self.flagged,
            "benign": self.benign,
            "grade_success_rate": round(self.grade_success_rate, 4),
            "hint_coverage": round(self.hint_coverage, 4),
            "stage_recall": round(self.stage_recall, 4),
            "stage_exact_rate": round(self.stage_exact_rate, 4),
            "witness_attempted": self.witness_attempted,
            "witness_found": self.witness_found,
            "witness_coverage": round(self.witness_coverage, 4),
            "grade_elapsed": round(self.grade_elapsed, 3),
            "witness_elapsed": round(self.witness_elapsed, 3),
            "throughput": round(self.throughput, 3),
            "processes": self.processes,
            "by_schema": self.by_schema,
            "by_kind": self.by_kind,
        }


def _hinted_stages(result):
    return {stage for stage, passed, _ in result.stage_hints if not passed}


def _p95(values):
    """The 95th-percentile value (nearest-rank) of a non-empty list."""
    ordered = sorted(values)
    rank = max(1, math.ceil(0.95 * len(ordered)))
    return ordered[rank - 1]


def evaluate_corpus(
    entries,
    *,
    schemas=None,
    processes=None,
    max_sites=2,
    witness=False,
    witness_limit=40,
    witness_seed=0,
    trace_jsonl=None,
):
    """Grade every corpus entry and aggregate a :class:`CorpusEvalResult`.

    ``entries`` is any iterable of :class:`~repro.corpus.generator
    .CorpusEntry`.  ``processes`` is forwarded to :func:`grade_batch`
    per ``(schema, target)`` group (``0``/``1`` grades serially).  With
    ``witness=True`` the first ``witness_limit`` flagged entries (in
    corpus order) also get a counterexample-generation attempt.  With
    ``trace_jsonl`` set, one span tree per unique graded form is written
    to that path as JSON lines (``{"schema", "target_sql", "trace"}``).
    """
    entries = list(entries)
    sources = {s.name: s for s in bundled_sources(schemas)}
    result = CorpusEvalResult(total=len(entries))

    groups = OrderedDict()
    for entry in entries:
        groups.setdefault((entry.schema, entry.target_sql), []).append(entry)

    outcomes = []
    trace_records = []
    for (schema, target_sql), group in groups.items():
        catalog = sources[schema].catalog()
        start = time.perf_counter()
        # A pool per tiny group costs more than it saves (worker startup
        # re-parses the target); grade those serially in-process.
        group_processes = 1 if len(group) < 4 else processes
        batch = grade_batch(
            catalog,
            target_sql,
            [e.wrong_sql for e in group],
            processes=group_processes,
            max_sites=max_sites,
            trace=trace_jsonl is not None,
            effort=True,
        )
        result.grade_elapsed += time.perf_counter() - start
        result.processes = max(result.processes, batch.processes)
        outcomes.extend(zip(group, batch.results))
        for trace in batch.traces:
            trace_records.append(
                {"schema": schema, "target_sql": target_sql, "trace": trace}
            )

    if trace_jsonl is not None:
        with open(trace_jsonl, "w") as handle:
            for record in trace_records:
                handle.write(json.dumps(record) + "\n")

    kind_elapsed = {}  # mutation kind -> pipeline seconds of its entries
    kind_effort = {}  # mutation kind -> effort deltas of its entries
    for entry, outcome in outcomes:
        schema_stats = result.by_schema.setdefault(
            entry.schema, {"total": 0, "graded": 0, "flagged": 0}
        )
        schema_stats["total"] += 1
        for record in entry.mutations:
            kind_stats = result.by_kind.setdefault(
                record.kind, {"count": 0, "flagged": 0, "benign": 0}
            )
            kind_stats["count"] += 1
        if isinstance(outcome, GradeError):
            result.errors += 1
            continue
        result.graded += 1
        schema_stats["graded"] += 1
        for record in entry.mutations:
            kind_elapsed.setdefault(record.kind, []).append(
                outcome.pipeline_elapsed
            )
            if outcome.effort is not None:
                kind_effort.setdefault(record.kind, []).append(
                    outcome.effort
                )
        if outcome.all_passed:
            result.benign += 1
            for record in entry.mutations:
                result.by_kind[record.kind]["benign"] += 1
            continue
        result.flagged += 1
        schema_stats["flagged"] += 1
        for record in entry.mutations:
            result.by_kind[record.kind]["flagged"] += 1
        truth = set(entry.stages)
        hinted = _hinted_stages(outcome)
        if truth:
            result.stage_recall_sum += len(truth & hinted) / len(truth)
        if truth == hinted:
            result.stage_exact += 1

    # Repair-cost attribution: latency of the pipeline runs carrying each
    # mutation kind (multi-mutation entries count toward every kind).
    for kind, stats in result.by_kind.items():
        elapsed = kind_elapsed.get(kind)
        if elapsed:
            stats["grade_ms_mean"] = round(
                sum(elapsed) / len(elapsed) * 1000.0, 3
            )
            stats["grade_ms_p95"] = round(_p95(elapsed) * 1000.0, 3)
        else:
            stats["grade_ms_mean"] = 0.0
            stats["grade_ms_p95"] = 0.0
        # Solver-effort attribution: the mean counter deltas of grading
        # the forms these entries mapped to (every submission of a form
        # carries the form's grading delta, so the mean is per
        # *submission*, matching grade_ms_mean above).
        stats["effort"] = mean_effort(kind_effort.get(kind, []))

    if witness:
        _measure_witness_coverage(
            result, outcomes, sources, witness_limit, witness_seed
        )

    result.outcomes = outcomes
    return result


def _measure_witness_coverage(result, outcomes, sources, limit, seed):
    """Counterexample generation over the first ``limit`` flagged entries."""
    solvers = {}
    start = time.perf_counter()
    for entry, outcome in outcomes:
        if result.witness_attempted >= limit:
            break
        if isinstance(outcome, GradeError) or outcome.all_passed:
            continue
        catalog = sources[entry.schema].catalog()
        solver = solvers.setdefault(entry.schema, Solver())
        try:
            target = parse_query_extended(entry.target_sql, catalog)
            wrong = parse_query_extended(entry.wrong_sql, catalog)
            found = generate_witness(
                catalog, target, wrong, solver=solver, seed=seed
            )
        except ReproError:
            found = None
        result.witness_attempted += 1
        if found is not None:
            result.witness_found += 1
    result.witness_elapsed = time.perf_counter() - start
