"""Typed whole-query mutation operators with by-construction ground truth.

Each operator takes a correct :class:`~repro.query.ResolvedQuery` and
produces a *wrong* variant plus a :class:`MutationRecord` naming the stage,
the mutation kind, and the textual before/after of the ground-truth repair
site -- so the optimality of the pipeline's hints is checkable by
construction, exactly as the paper's Section 9 WHERE-only injection, but
for every stage the repair pipeline handles.

Operators are deterministic functions of the supplied ``random.Random``;
:func:`mutate_query` composes them sequentially (later mutations apply to
the already-mutated query), re-resolving the rendered SQL after every step
so each emitted mutant is guaranteed to be a well-formed query of the
supported fragment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.errors import ReproError
from repro.logic.formulas import And, Comparison, TRUE, conj
from repro.logic.paths import all_paths, replace_at
from repro.logic.terms import AggCall, Var
from repro.query import FromEntry, ResolvedQuery
from repro.service.cache import canonical_key
from repro.sqlparser.rewrite import parse_query_extended
from repro.workloads.inject import inject_errors

#: Stages a mutation can target, in pipeline order.
STAGES = ("FROM", "WHERE", "GROUP BY", "HAVING", "SELECT")


@dataclass(frozen=True)
class MutationRecord:
    """Ground truth for one injected error.

    ``site`` is the textual content the *wrong* query now carries at the
    repair site; ``original`` is what the correct query had there.  For
    additive errors (extra table/column/grouping) ``original`` is the
    marker ``"(absent)"``; for dropped content ``site`` is the clause that
    must be extended.
    """

    stage: str  # FROM | WHERE | GROUP BY | HAVING | SELECT
    kind: str  # e.g. "operator-flip", "aggregate-swap", "wrong-table"
    site: str
    original: str

    def to_dict(self):
        return {
            "stage": self.stage,
            "kind": self.kind,
            "site": self.site,
            "original": self.original,
        }


def stages_of(mutations):
    """Distinct stages touched by ``mutations``, in pipeline order."""
    touched = {m.stage for m in mutations}
    return tuple(s for s in STAGES if s in touched)


@dataclass(frozen=True)
class MutatedQuery:
    """A wrong query plus its by-construction ground truth."""

    correct: ResolvedQuery
    wrong: ResolvedQuery
    mutations: tuple  # MutationRecord, in application order

    @property
    def stages(self):
        return stages_of(self.mutations)

    @property
    def difficulty(self):
        """Mutation count x stage mix (how spread-out the errors are)."""
        return len(self.mutations) * len(self.stages)


# ----------------------------------------------------------------------
# Scope helpers
# ----------------------------------------------------------------------


def _scope_vars(query, catalog):
    """Every ``alias.column`` variable the FROM clause puts in scope."""
    out = []
    for entry in query.from_entries:
        table = catalog.table(entry.table)
        if table is None:
            continue
        for column in table.columns:
            out.append(Var(f"{entry.alias}.{column.name.lower()}", column.type))
    return out


def _fresh_alias(table, used):
    base = table.lower()
    if base not in used:
        return base
    index = 2
    while f"{base}_{index}" in used:
        index += 1
    return f"{base}_{index}"


def _referenced_columns(query, alias):
    """The (column, type) pairs referenced through ``alias``."""
    prefix = alias + "."
    out = set()
    for obj in [query.where, query.having, *query.group_by, *query.select]:
        for var in obj.variables():
            if var.name.startswith(prefix):
                out.add((var.name[len(prefix):], var.vtype))
    return out


def _render_terms(terms):
    return ", ".join(str(t) for t in terms)


# ----------------------------------------------------------------------
# WHERE / HAVING (predicate) operators
# ----------------------------------------------------------------------


def _mutate_where(query, rng, catalog):
    if query.where == TRUE:
        return None
    try:
        injected = inject_errors(
            query.where, 1, seed=rng.randrange(1 << 30),
            allow_operator_swap=True,
        )
    except ValueError:
        return None
    inj = injected.injections[0]
    mutated = replace(query, where=injected.wrong)
    return mutated, MutationRecord(
        "WHERE", inj.kind, str(inj.mutated), str(inj.original)
    )


def _drop_where_conjunct(query, rng, catalog):
    if not isinstance(query.where, And):
        return None
    operands = list(query.where.operands)
    dropped = operands.pop(rng.randrange(len(operands)))
    remaining = conj(*operands)
    mutated = replace(query, where=remaining)
    return mutated, MutationRecord(
        "WHERE", "missing-condition", str(remaining), str(query.where)
    )


def _mutate_having(query, rng, catalog):
    if query.having == TRUE:
        return None
    # Column swaps could reference non-grouped columns (invalid HAVING in
    # the supported fragment); stick to operator/constant mutations.
    try:
        injected = inject_errors(
            query.having, 1, seed=rng.randrange(1 << 30),
            allow_operator_swap=True,
            kinds=("operator-flip", "operator-weaken", "constant"),
        )
    except ValueError:
        return None
    inj = injected.injections[0]
    mutated = replace(query, having=injected.wrong)
    return mutated, MutationRecord(
        "HAVING", inj.kind, str(inj.mutated), str(inj.original)
    )


def _alias_confusion(query, rng, catalog):
    """Self-join confusion: one WHERE atom uses the wrong alias of a table."""
    by_table = {}
    for entry in query.from_entries:
        by_table.setdefault(entry.table.lower(), []).append(entry.alias)
    shared = {t: a for t, a in by_table.items() if len(a) >= 2}
    if not shared or query.where == TRUE:
        return None
    sites = []
    for path, node in all_paths(query.where):
        if not isinstance(node, Comparison):
            continue
        for side_name, side in (("left", node.left), ("right", node.right)):
            if not isinstance(side, Var):
                continue
            alias, _, column = side.name.partition(".")
            table = query.table_of(alias)
            if table is None:
                continue
            aliases = shared.get(table.lower())
            if not aliases:
                continue
            others = [a for a in aliases if a != alias]
            if others:
                sites.append((path, node, side_name, side, others))
    if not sites:
        return None
    path, node, side_name, var, others = rng.choice(sites)
    _, _, column = var.name.partition(".")
    new_var = Var(f"{rng.choice(others)}.{column}", var.vtype)
    if side_name == "left":
        new_node = Comparison(node.op, new_var, node.right)
    else:
        new_node = Comparison(node.op, node.left, new_var)
    if new_node == node:
        return None
    mutated = replace(
        query, where=replace_at(query.where, {path: new_node})
    )
    return mutated, MutationRecord(
        "WHERE", "alias-confusion", str(new_node), str(node)
    )


# ----------------------------------------------------------------------
# SELECT operators
# ----------------------------------------------------------------------


def _select_column_swap(query, rng, catalog):
    indices = [i for i, t in enumerate(query.select) if isinstance(t, Var)]
    if not indices:
        return None
    scope = _scope_vars(query, catalog)
    rng.shuffle(indices)
    for i in indices:
        current = query.select[i]
        candidates = [
            v for v in scope if v.vtype == current.vtype and v != current
        ]
        if not candidates:
            continue
        new_var = rng.choice(candidates)
        select = list(query.select)
        select[i] = new_var
        mutated = replace(
            query, select=tuple(select), select_aliases=()
        )
        return mutated, MutationRecord(
            "SELECT", "wrong-column", str(new_var), str(current)
        )
    return None


#: Aggregate rewrites students actually make: multiplicity confusion
#: (COUNT vs COUNT(DISTINCT)), statistic confusion (SUM vs AVG), and
#: extremum flips (MIN vs MAX).
def _agg_alternatives(agg):
    out = []
    if agg.func == "COUNT":
        if agg.arg is None:
            pass  # COUNT(*) alternatives need an argument; added by caller
        elif agg.distinct:
            out.append(AggCall("COUNT", agg.arg, distinct=False))
            out.append(AggCall("COUNT"))
        else:
            out.append(AggCall("COUNT", agg.arg, distinct=True))
            out.append(AggCall("COUNT"))
    elif agg.func in ("SUM", "AVG"):
        other = "AVG" if agg.func == "SUM" else "SUM"
        out.append(AggCall(other, agg.arg, agg.distinct))
        out.append(AggCall(agg.func, agg.arg, not agg.distinct))
    elif agg.func in ("MIN", "MAX"):
        other = "MAX" if agg.func == "MIN" else "MIN"
        out.append(AggCall(other, agg.arg, agg.distinct))
    return out


def _select_agg_swap(query, rng, catalog):
    indices = [i for i, t in enumerate(query.select) if isinstance(t, AggCall)]
    if not indices:
        return None
    rng.shuffle(indices)
    for i in indices:
        current = query.select[i]
        alternatives = _agg_alternatives(current)
        if current.func == "COUNT" and current.arg is None:
            scope = _scope_vars(query, catalog)
            if scope:
                alternatives.append(
                    AggCall("COUNT", rng.choice(scope), distinct=True)
                )
        if not alternatives:
            continue
        new_agg = rng.choice(alternatives)
        select = list(query.select)
        select[i] = new_agg
        mutated = replace(
            query, select=tuple(select), select_aliases=()
        )
        return mutated, MutationRecord(
            "SELECT", "aggregate-swap", str(new_agg), str(current)
        )
    return None


def _select_drop(query, rng, catalog):
    if len(query.select) < 2:
        return None
    select = list(query.select)
    dropped = select.pop(rng.randrange(len(select)))
    mutated = replace(query, select=tuple(select), select_aliases=())
    return mutated, MutationRecord(
        "SELECT", "missing-column", _render_terms(select), str(dropped)
    )


def _select_extra(query, rng, catalog):
    scope = [v for v in _scope_vars(query, catalog) if v not in query.select]
    if not scope:
        return None
    if query.group_by:
        # Keep the mutant well-formed for execution: only grouped columns
        # may join an aggregate SELECT list.
        grouped = set()
        for term in query.group_by:
            grouped |= term.variables()
        scope = [v for v in scope if v in grouped]
        if not scope:
            return None
    extra = rng.choice(scope)
    position = rng.randrange(len(query.select) + 1)
    select = list(query.select)
    select.insert(position, extra)
    mutated = replace(query, select=tuple(select), select_aliases=())
    return mutated, MutationRecord(
        "SELECT", "extra-column", str(extra), "(absent)"
    )


def _distinct_toggle(query, rng, catalog):
    if query.group_by:
        # DISTINCT over grouped output is almost always a no-op; skip to
        # keep mutants wrong-by-construction.
        return None
    mutated = replace(query, distinct=not query.distinct)
    if query.distinct:
        record = MutationRecord("SELECT", "distinct", "SELECT", "SELECT DISTINCT")
    else:
        record = MutationRecord("SELECT", "distinct", "SELECT DISTINCT", "SELECT")
    return mutated, record


# ----------------------------------------------------------------------
# GROUP BY operators
# ----------------------------------------------------------------------


def _groupby_drop(query, rng, catalog):
    if len(query.group_by) < 2:
        return None
    referenced = set()
    for obj in [query.having, *query.select]:
        referenced |= obj.variables()
    droppable = [
        i for i, term in enumerate(query.group_by)
        if not (term.variables() & referenced)
    ]
    if not droppable:
        return None
    index = rng.choice(droppable)
    group_by = list(query.group_by)
    dropped = group_by.pop(index)
    mutated = replace(query, group_by=tuple(group_by))
    return mutated, MutationRecord(
        "GROUP BY", "missing-grouping", _render_terms(group_by), str(dropped)
    )


def _groupby_extra(query, rng, catalog):
    if not query.group_by:
        return None
    scope = [
        v for v in _scope_vars(query, catalog) if v not in query.group_by
    ]
    if not scope:
        return None
    extra = rng.choice(scope)
    group_by = list(query.group_by)
    group_by.append(extra)
    mutated = replace(query, group_by=tuple(group_by))
    return mutated, MutationRecord(
        "GROUP BY", "extra-grouping", str(extra), "(absent)"
    )


# ----------------------------------------------------------------------
# FROM operators
# ----------------------------------------------------------------------


def _from_extra_table(query, rng, catalog):
    tables = sorted(t.name for t in catalog)
    if not tables:
        return None
    table = rng.choice(tables)
    used = {e.alias for e in query.from_entries}
    alias = _fresh_alias(table, used)
    entries = list(query.from_entries)
    entries.append(FromEntry(table, alias))
    mutated = replace(query, from_entries=tuple(entries))
    return mutated, MutationRecord(
        "FROM", "extra-table", f"{table} {alias}", "(absent)"
    )


def _from_duplicate_table(query, rng, catalog):
    if not query.from_entries:
        return None
    entry = rng.choice(list(query.from_entries))
    used = {e.alias for e in query.from_entries}
    alias = _fresh_alias(entry.table, used)
    entries = list(query.from_entries)
    entries.append(FromEntry(entry.table, alias))
    mutated = replace(query, from_entries=tuple(entries))
    return mutated, MutationRecord(
        "FROM", "duplicate-table", f"{entry.table} {alias}", "(absent)"
    )


def _from_table_swap(query, rng, catalog):
    """Swap one FROM table for a different table that still resolves.

    Realistic join-table confusion (conference_paper vs journal_paper):
    the replacement must carry every column the query references through
    the alias, with identical types, so the mutant stays well-formed.
    """
    entries = list(query.from_entries)
    order = list(range(len(entries)))
    rng.shuffle(order)
    for index in order:
        entry = entries[index]
        needed = _referenced_columns(query, entry.alias)
        candidates = []
        for table in catalog:
            if table.name.lower() == entry.table.lower():
                continue
            columns = {
                (c.name.lower(), c.type) for c in table.columns
            }
            if needed <= columns:
                candidates.append(table.name)
        if not candidates:
            continue
        new_table = rng.choice(sorted(candidates))
        swapped = list(entries)
        swapped[index] = FromEntry(new_table, entry.alias)
        mutated = replace(query, from_entries=tuple(swapped))
        return mutated, MutationRecord(
            "FROM", "wrong-table",
            f"{new_table} {entry.alias}", f"{entry.table} {entry.alias}",
        )
    return None


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------


#: The operator registry: (stage, operator) in a stable order.  The stage
#: label is the *primary* repair stage of the error (alias confusion lives
#: in FROM conceptually but is repaired by the WHERE stage, so it is
#: registered under WHERE).
OPERATORS = (
    ("WHERE", _mutate_where),
    ("WHERE", _drop_where_conjunct),
    ("WHERE", _alias_confusion),
    ("HAVING", _mutate_having),
    ("SELECT", _select_column_swap),
    ("SELECT", _select_agg_swap),
    ("SELECT", _select_drop),
    ("SELECT", _select_extra),
    ("SELECT", _distinct_toggle),
    ("GROUP BY", _groupby_drop),
    ("GROUP BY", _groupby_extra),
    ("FROM", _from_extra_table),
    ("FROM", _from_duplicate_table),
    ("FROM", _from_table_swap),
)


def mutate_query(query, catalog, num_errors=1, seed=0, rng=None, stages=None,
                 max_attempts=40):
    """Inject ``num_errors`` whole-query errors; returns a
    :class:`MutatedQuery` or None.

    Mutations are applied sequentially (each operator sees the previous
    mutant); every intermediate result is rendered back to SQL and
    re-resolved against ``catalog``, so operators whose output would fall
    outside the supported fragment are discarded and retried.  ``stages``
    optionally restricts the operator pool to the given stage labels.
    Deterministic for a given ``seed`` (or caller-supplied ``rng``).
    """
    rng = rng if rng is not None else random.Random(seed)
    pool = [
        (stage, fn) for stage, fn in OPERATORS
        if stages is None or stage in stages
    ]
    if not pool:
        return None
    current = query
    records = []
    for _ in range(max_attempts):
        if len(records) >= num_errors:
            break
        _, fn = rng.choice(pool)
        result = fn(current, rng, catalog)
        if result is None:
            continue
        mutated, record = result
        try:
            parse_query_extended(mutated.to_sql(), catalog)
        except (ReproError, ValueError):
            continue
        current = mutated
        records.append(record)
    if len(records) < num_errors:
        return None
    if canonical_key(current) == canonical_key(query):
        return None  # the mutations cancelled out syntactically
    return MutatedQuery(correct=query, wrong=current, mutations=tuple(records))
