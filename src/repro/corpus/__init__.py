"""Corpus subsystem: whole-query error injection at corpus scale.

The paper validates hint quality on a 4-query user study plus WHERE-only
synthetic injection; this package manufactures *thousands* of realistic,
ground-truth-labeled wrong queries across every bundled schema so the
service, solver, and witness layers can be measured (and regressed) far
beyond the user-study pool.

* :mod:`repro.corpus.mutations` -- typed mutation operators over every
  stage the repair pipeline handles (SELECT column/aggregate swaps,
  GROUP BY key drops/additions, HAVING predicate mutations, FROM
  join-table/alias errors, and the WHERE operator/constant/column
  mutations of :mod:`repro.workloads.inject`), each recording its
  ground-truth repair site.
* :mod:`repro.corpus.schemas`   -- the registry of bundled schema sources
  (tpch, beers, brass, dblp, userstudy) with their reference queries.
* :mod:`repro.corpus.generator` -- :class:`CorpusGenerator`: fans
  mutations across the sources with per-mutation seeds, dedupes by the
  service's canonical alias-renamed form, and tags each entry with a
  difficulty score.
* :mod:`repro.corpus.evaluate`  -- pushes a generated pool through the
  batch grader and reports hint coverage, ground-truth-repair agreement,
  witness coverage, and throughput.
"""

from repro.corpus.evaluate import CorpusEvalResult, evaluate_corpus
from repro.corpus.generator import CorpusEntry, CorpusGenerator
from repro.corpus.mutations import MutatedQuery, MutationRecord, mutate_query
from repro.corpus.schemas import bundled_sources

__all__ = [
    "CorpusEntry",
    "CorpusEvalResult",
    "CorpusGenerator",
    "MutatedQuery",
    "MutationRecord",
    "bundled_sources",
    "evaluate_corpus",
    "mutate_query",
]
