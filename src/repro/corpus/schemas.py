"""Registry of bundled schema sources for corpus generation.

A :class:`SchemaSource` names a bundled schema, its catalog factory, and
the reference (correct) queries that mutations fan out from:

* ``tpch``      -- the Section 9 TPC-H predicates workload (9 queries);
* ``beers``     -- the classroom drinkers/bars questions (Example 1);
* ``brass``     -- the Brass & Goldberg reference queries on the beers
  schema (Table 5 examples);
* ``dblp``      -- the four DBLP user-study reference queries;
* ``userstudy`` -- the same four questions as an independent mutation
  pool (per-entry seeds differ by source, so its mutants are disjoint
  from ``dblp``'s even where the targets coincide).

Catalogs are constructed lazily and cached per source name so one corpus
run resolves every target against a single catalog instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SchemaSource:
    """One bundled schema plus its reference queries."""

    name: str
    catalog_factory: object  # () -> Catalog
    targets: tuple  # ((qid, sql), ...)
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def catalog(self):
        if "catalog" not in self._cache:
            self._cache["catalog"] = self.catalog_factory()
        return self._cache["catalog"]


def _tpch_source():
    from repro.workloads import tpch

    return SchemaSource(
        "tpch",
        tpch.catalog,
        tuple((q.name, q.sql) for q in tpch.ALL_QUERIES),
    )


def _beers_source():
    from repro.workloads import beers

    return SchemaSource(
        "beers",
        beers.catalog,
        tuple(
            (qid, solution)
            for qid, (_, solution) in sorted(beers.QUESTIONS.items())
        ),
    )


def _brass_source():
    from repro.workloads import beers, brass

    seen = set()
    targets = []
    for issue in brass.supported_issues():
        sql = issue.reference_sql
        if sql is None or sql in seen:
            continue
        seen.add(sql)
        targets.append((f"issue{issue.number}", sql))
    return SchemaSource("brass", beers.catalog, tuple(targets))


def _dblp_source():
    from repro.workloads import dblp

    return SchemaSource(
        "dblp",
        dblp.catalog,
        tuple((q.qid, q.correct_sql) for q in dblp.QUESTIONS),
    )


def _userstudy_source():
    from repro.workloads import dblp

    return SchemaSource(
        "userstudy",
        dblp.catalog,
        tuple((f"US-{q.qid}", q.correct_sql) for q in dblp.QUESTIONS),
    )


_FACTORIES = {
    "tpch": _tpch_source,
    "beers": _beers_source,
    "brass": _brass_source,
    "dblp": _dblp_source,
    "userstudy": _userstudy_source,
}

SCHEMA_NAMES = tuple(sorted(_FACTORIES))


def bundled_sources(names=None):
    """The requested :class:`SchemaSource` objects, sorted by name.

    ``names=None`` selects every bundled schema.  Unknown names raise
    ``ValueError`` listing the available ones.
    """
    if names is None:
        names = SCHEMA_NAMES
    sources = []
    for name in sorted(set(names)):
        factory = _FACTORIES.get(name)
        if factory is None:
            known = ", ".join(SCHEMA_NAMES)
            raise ValueError(f"unknown schema {name!r} (have: {known})")
        sources.append(factory())
    return sources
