"""Normal forms: NNF and DNF conversion for formulas."""

from __future__ import annotations

import itertools

from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
    conj,
    disj,
    neg,
)


def to_nnf(formula):
    """Negation normal form: NOT appears only above atoms (then folded in)."""
    if isinstance(formula, (BoolConst, Comparison)):
        return formula
    if isinstance(formula, And):
        return conj(*(to_nnf(c) for c in formula.operands))
    if isinstance(formula, Or):
        return disj(*(to_nnf(c) for c in formula.operands))
    if isinstance(formula, Not):
        child = formula.child
        if isinstance(child, BoolConst):
            return FALSE if child.value else TRUE
        if isinstance(child, Comparison):
            return child.negated()
        if isinstance(child, Not):
            return to_nnf(child.child)
        if isinstance(child, And):
            return disj(*(to_nnf(neg(c)) for c in child.operands))
        if isinstance(child, Or):
            return conj(*(to_nnf(neg(c)) for c in child.operands))
    raise TypeError(f"not a formula: {formula!r}")


def to_dnf(formula, max_clauses=4096):
    """Disjunctive normal form via NNF + distribution.

    Raises ``ValueError`` if the DNF would exceed ``max_clauses`` clauses
    (the callers that need DNF only ever see small predicates).
    """
    nnf = to_nnf(formula)
    clauses = _dnf_clauses(nnf, max_clauses)
    return disj(*(conj(*clause) for clause in clauses))


def _dnf_clauses(formula, max_clauses):
    if isinstance(formula, BoolConst):
        return [[]] if formula.value else []
    if isinstance(formula, Comparison):
        return [[formula]]
    if isinstance(formula, Or):
        out = []
        for child in formula.operands:
            out.extend(_dnf_clauses(child, max_clauses))
            if len(out) > max_clauses:
                raise ValueError("DNF blow-up")
        return out
    if isinstance(formula, And):
        parts = [_dnf_clauses(child, max_clauses) for child in formula.operands]
        total = 1
        for p in parts:
            total *= max(len(p), 1)
            if total > max_clauses:
                raise ValueError("DNF blow-up")
        out = []
        for combo in itertools.product(*parts):
            merged = []
            for clause in combo:
                merged.extend(clause)
            out.append(merged)
        return out
    raise TypeError(f"unexpected node in NNF: {formula!r}")
