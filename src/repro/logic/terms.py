"""Value-level terms of the logic used throughout Qr-Hint.

Terms model SQL scalar expressions: column references (:class:`Var`),
literals (:class:`Const`), arithmetic (:class:`Arith`, :class:`Neg`) and
aggregate calls (:class:`AggCall`).  All terms are immutable and hashable so
they can be used as dictionary keys, cached, and structurally compared.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.catalog import SqlType

ARITH_OPS = ("+", "-", "*", "/")
AGG_FUNCS = ("SUM", "AVG", "COUNT", "MIN", "MAX")


class Term:
    """Base class for all value-level terms."""

    __slots__ = ()

    @property
    def type(self):
        raise NotImplementedError

    def children(self):
        """Direct sub-terms, as a tuple."""
        return ()

    def size(self):
        """Number of nodes in the term's syntax tree."""
        return 1 + sum(c.size() for c in self.children())

    def variables(self):
        """Set of :class:`Var` instances occurring in the term."""
        out = set()
        _collect_vars(self, out)
        return out

    def aggregates(self):
        """Set of :class:`AggCall` instances occurring in the term."""
        out = set()
        _collect_aggs(self, out)
        return out

    def has_aggregate(self):
        return bool(self.aggregates())


def _collect_vars(term, out):
    if isinstance(term, Var):
        out.add(term)
    for child in term.children():
        _collect_vars(child, out)


def _collect_aggs(term, out):
    if isinstance(term, AggCall):
        out.add(term)
        return  # variables inside an aggregate belong to the aggregate
    for child in term.children():
        _collect_aggs(child, out)


@dataclass(frozen=True)
class Var(Term):
    """A free variable (typically a resolved column reference ``alias.col``)."""

    name: str
    vtype: SqlType

    @property
    def type(self):
        return self.vtype

    def __str__(self):
        return self.name

    def __repr__(self):
        return f"Var({self.name}:{self.vtype.value})"


@dataclass(frozen=True)
class Const(Term):
    """A literal constant.  Numeric values are stored as :class:`Fraction`."""

    value: object
    vtype: SqlType

    @staticmethod
    def of(value):
        """Build a constant from a Python value, inferring the SQL type."""
        if isinstance(value, bool):
            return Const(value, SqlType.BOOL)
        if isinstance(value, int):
            return Const(Fraction(value), SqlType.INT)
        if isinstance(value, float):
            return Const(Fraction(value).limit_denominator(10**9), SqlType.FLOAT)
        if isinstance(value, Fraction):
            vtype = SqlType.INT if value.denominator == 1 else SqlType.FLOAT
            return Const(value, vtype)
        if isinstance(value, str):
            return Const(value, SqlType.STRING)
        raise TypeError(f"cannot build Const from {value!r}")

    @property
    def type(self):
        return self.vtype

    def __str__(self):
        if self.vtype == SqlType.STRING:
            escaped = str(self.value).replace("'", "''")
            return f"'{escaped}'"
        if isinstance(self.value, Fraction) and self.value.denominator == 1:
            return str(self.value.numerator)
        return str(self.value)

    def __repr__(self):
        return f"Const({self})"


@dataclass(frozen=True)
class Arith(Term):
    """A binary arithmetic expression ``left op right``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self):
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")

    @property
    def type(self):
        if self.op == "/":
            return SqlType.FLOAT
        return self.left.type.join(self.right.type)

    def children(self):
        return (self.left, self.right)

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Neg(Term):
    """Unary arithmetic negation ``-child``."""

    child: Term

    @property
    def type(self):
        return self.child.type

    def children(self):
        return (self.child,)

    def __str__(self):
        return f"(-{self.child})"


@dataclass(frozen=True)
class AggCall(Term):
    """An aggregate function call, e.g. ``SUM(price * 2)``.

    ``arg`` is ``None`` for ``COUNT(*)``.  ``distinct`` marks
    ``AGG(DISTINCT ...)``.
    """

    func: str
    arg: Term | None = None
    distinct: bool = False

    def __post_init__(self):
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}")
        if self.func == "COUNT" and self.arg is None and self.distinct:
            raise ValueError("COUNT(DISTINCT *) is not valid SQL")

    @property
    def type(self):
        if self.func == "COUNT":
            return SqlType.INT
        if self.func == "AVG":
            return SqlType.FLOAT
        return self.arg.type

    def children(self):
        return (self.arg,) if self.arg is not None else ()

    def size(self):
        # An aggregate call counts as a single syntactic node plus its
        # argument, matching the node-count cost model of the paper.
        return 1 + (self.arg.size() if self.arg is not None else 0)

    def __str__(self):
        inner = "*" if self.arg is None else str(self.arg)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


def add(left, right):
    return Arith("+", left, right)


def sub(left, right):
    return Arith("-", left, right)


def mul(left, right):
    return Arith("*", left, right)


def div(left, right):
    return Arith("/", left, right)


def const(value):
    return Const.of(value)


def intvar(name):
    return Var(name, SqlType.INT)


def floatvar(name):
    return Var(name, SqlType.FLOAT)


def strvar(name):
    return Var(name, SqlType.STRING)
