"""Concrete evaluation of terms and formulas over variable assignments.

Used by the relational engine to execute WHERE/HAVING/SELECT, and by tests
to brute-force-check solver verdicts on small domains.
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.logic.formulas import And, BoolConst, Comparison, Not, Or
from repro.logic.terms import AggCall, Arith, Const, Neg, Var


class EvaluationError(Exception):
    """Raised when evaluation fails (unbound variable, div by zero, ...)."""


def like_to_regex(pattern):
    """Compile a SQL LIKE pattern (``%`` and ``_`` wildcards) to a regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def sql_like(value, pattern):
    return like_to_regex(pattern).match(str(value)) is not None


def eval_term(term, env):
    """Evaluate ``term`` under ``env`` mapping variable names to values.

    Aggregate calls must be pre-bound in ``env`` under their string form
    (the engine computes them per group before evaluating HAVING/SELECT).
    """
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name not in env:
            raise EvaluationError(f"unbound variable {term.name!r}")
        return env[term.name]
    if isinstance(term, AggCall):
        key = str(term)
        if key not in env:
            raise EvaluationError(f"unbound aggregate {key!r}")
        return env[key]
    if isinstance(term, Neg):
        return -eval_term(term.child, env)
    if isinstance(term, Arith):
        left = eval_term(term.left, env)
        right = eval_term(term.right, env)
        if term.op == "+":
            return left + right
        if term.op == "-":
            return left - right
        if term.op == "*":
            return left * right
        if term.op == "/":
            if right == 0:
                raise EvaluationError("division by zero")
            return Fraction(left) / Fraction(right)
    raise EvaluationError(f"cannot evaluate {term!r}")


def eval_formula(formula, env):
    """Evaluate ``formula`` to a Python bool under ``env``."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Comparison):
        left = eval_term(formula.left, env)
        right = eval_term(formula.right, env)
        op = formula.op
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "LIKE":
            return sql_like(left, str(right))
        if op == "NOT LIKE":
            return not sql_like(left, str(right))
    if isinstance(formula, Not):
        return not eval_formula(formula.child, env)
    if isinstance(formula, And):
        return all(eval_formula(c, env) for c in formula.operands)
    if isinstance(formula, Or):
        return any(eval_formula(c, env) for c in formula.operands)
    raise EvaluationError(f"cannot evaluate {formula!r}")
