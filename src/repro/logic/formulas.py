"""Boolean formulas (SQL predicates) as immutable syntax trees.

A formula is one of: the constants :data:`TRUE` / :data:`FALSE`, an atomic
comparison (:class:`Comparison`), or a logical combination (:class:`And`,
:class:`Or`, :class:`Not`).  Following the paper (Section 5), internal nodes
carry ``AND``/``OR``/``NOT`` and leaves are atomic predicates; repairs are
defined over subtrees of this representation, and all sizes/costs count
syntax-tree nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.terms import Term

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=", "LIKE", "NOT LIKE")

NEGATED_OP = {
    "=": "<>",
    "<>": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
    "LIKE": "NOT LIKE",
    "NOT LIKE": "LIKE",
}

FLIPPED_OP = {
    "=": "=",
    "<>": "<>",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


class Formula:
    """Base class for all formulas."""

    __slots__ = ()

    def children(self):
        return ()

    def size(self):
        """Number of nodes in the syntax tree (atoms count as one node)."""
        raise NotImplementedError

    def is_atomic(self):
        return False

    def variables(self):
        out = set()
        _collect_vars(self, out)
        return out

    def atoms(self):
        """All atomic :class:`Comparison` leaves, in left-to-right order."""
        out = []
        _collect_atoms(self, out)
        return out

    def aggregates(self):
        out = set()
        for atom in self.atoms():
            out |= atom.left.aggregates()
            out |= atom.right.aggregates()
        return out

    def has_aggregate(self):
        return bool(self.aggregates())

    def __and__(self, other):
        return conj(self, other)

    def __or__(self, other):
        return disj(self, other)

    def __invert__(self):
        return neg(self)


def _collect_vars(formula, out):
    if isinstance(formula, Comparison):
        out |= formula.left.variables()
        out |= formula.right.variables()
    for child in formula.children():
        _collect_vars(child, out)


def _collect_atoms(formula, out):
    if isinstance(formula, Comparison):
        out.append(formula)
    for child in formula.children():
        _collect_atoms(child, out)


@dataclass(frozen=True)
class BoolConst(Formula):
    """The constant TRUE or FALSE."""

    value: bool

    def size(self):
        return 1

    def __str__(self):
        return "TRUE" if self.value else "FALSE"

    def __repr__(self):
        return str(self)


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Comparison(Formula):
    """An atomic predicate ``left op right``."""

    op: str
    left: Term
    right: Term

    def __post_init__(self):
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def is_atomic(self):
        return True

    def size(self):
        # The paper's cost model (Definition 3, Example 6) counts each atomic
        # predicate as a single syntax-tree node.
        return 1

    def negated(self):
        """The complementary atom, e.g. ``a < b`` -> ``a >= b``."""
        return Comparison(NEGATED_OP[self.op], self.left, self.right)

    def flipped(self):
        """The same atom with sides swapped, e.g. ``a < b`` -> ``b > a``."""
        if self.op not in FLIPPED_OP:
            return self
        return Comparison(FLIPPED_OP[self.op], self.right, self.left)

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"

    def __repr__(self):
        return str(self)


@dataclass(frozen=True)
class Not(Formula):
    """Logical negation with exactly one child."""

    child: Formula

    def children(self):
        return (self.child,)

    def size(self):
        return 1 + self.child.size()

    def __str__(self):
        return f"NOT ({self.child})"

    def __repr__(self):
        return str(self)


class _NaryOp(Formula):
    """Common behaviour of AND/OR nodes (>= 2 children)."""

    __slots__ = ()

    def children(self):
        return self.operands

    def size(self):
        return 1 + sum(c.size() for c in self.operands)

    def __str__(self):
        sep = f" {self.NAME} "
        return "(" + sep.join(str(c) for c in self.operands) + ")"

    def __repr__(self):
        return str(self)


@dataclass(frozen=True)
class And(_NaryOp):
    """Logical conjunction over two or more children."""

    operands: tuple[Formula, ...]

    NAME = "AND"

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ValueError("And requires at least two operands")


@dataclass(frozen=True)
class Or(_NaryOp):
    """Logical disjunction over two or more children."""

    operands: tuple[Formula, ...]

    NAME = "OR"

    def __post_init__(self):
        if len(self.operands) < 2:
            raise ValueError("Or requires at least two operands")


def conj(*formulas):
    """Smart AND: flattens nested ANDs and simplifies TRUE/FALSE."""
    flat = []
    for f in formulas:
        if f is TRUE or f == TRUE:
            continue
        if f is FALSE or f == FALSE:
            return FALSE
        if isinstance(f, And):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas):
    """Smart OR: flattens nested ORs and simplifies TRUE/FALSE."""
    flat = []
    for f in formulas:
        if f is FALSE or f == FALSE:
            continue
        if f is TRUE or f == TRUE:
            return TRUE
        if isinstance(f, Or):
            flat.extend(f.operands)
        else:
            flat.append(f)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(formula):
    """Smart NOT: simplifies constants, double negation, and atoms."""
    if formula == TRUE:
        return FALSE
    if formula == FALSE:
        return TRUE
    if isinstance(formula, Not):
        return formula.child
    if isinstance(formula, Comparison):
        return formula.negated()
    return Not(formula)


def implies(antecedent, consequent):
    return disj(neg(antecedent), consequent)


def iff(left, right):
    return conj(implies(left, right), implies(right, left))


def xor(left, right):
    return disj(conj(left, neg(right)), conj(neg(left), right))
