"""Tree addressing for formulas.

Repair sites (Definition 2) are subtrees of a predicate's syntax tree.  A
*path* is a tuple of child indices from the root; ``()`` addresses the root
itself.  This module provides subtree lookup, enumeration, disjointness
tests, and subtree replacement -- the plumbing used by ``RepairWhere``,
``CreateBounds``, and ``DeriveFixes``.
"""

from __future__ import annotations

from repro.logic.formulas import And, Comparison, Formula, Not, Or


def node_at(formula, path):
    """Return the subtree of ``formula`` addressed by ``path``."""
    node = formula
    for index in path:
        node = node.children()[index]
    return node


def all_paths(formula):
    """All (path, subtree) pairs in pre-order."""
    out = []

    def walk(node, path):
        out.append((path, node))
        for i, child in enumerate(node.children()):
            walk(child, path + (i,))

    walk(formula, ())
    return out


def is_prefix(short, long):
    """True if ``short`` is a (non-strict) prefix of ``long``."""
    return len(short) <= len(long) and long[: len(short)] == short


def paths_disjoint(paths):
    """True if no path in the collection is an ancestor of another."""
    ordered = sorted(paths)
    for i in range(len(ordered) - 1):
        if is_prefix(ordered[i], ordered[i + 1]):
            return False
    return True


def paths_under(paths, prefix):
    """The subset of ``paths`` inside the subtree at ``prefix``, re-rooted."""
    return [p[len(prefix):] for p in paths if is_prefix(prefix, p)]


def replace_at(formula, replacements):
    """Replace each addressed subtree: ``replacements`` maps path -> Formula.

    Paths must be pairwise disjoint.  The surrounding tree structure is
    rebuilt verbatim (no flattening), so node identities outside the
    replaced sites are preserved.
    """
    if not paths_disjoint(replacements):
        raise ValueError("replacement paths must be disjoint")

    def rebuild(node, path):
        if path in replacements:
            return replacements[path]
        if not any(is_prefix(path, p) for p in replacements):
            return node
        if isinstance(node, Not):
            return Not(rebuild(node.child, path + (0,)))
        if isinstance(node, (And, Or)):
            new_children = tuple(
                rebuild(child, path + (i,))
                for i, child in enumerate(node.children())
            )
            return type(node)(new_children)
        raise ValueError(f"path descends into a leaf at {path}")

    return rebuild(formula, ())


def repairable_paths(formula):
    """Candidate repair-site paths: every node of the tree.

    The root is included (replacing the whole predicate is the trivial
    single-site repair of Example 6).
    """
    return [path for path, _ in all_paths(formula)]


def disjoint_path_sets(paths, size):
    """Yield all sets (tuples) of ``size`` pairwise-disjoint paths.

    Paths are emitted in lexicographic combination order, matching the
    deterministic exploration order of ``RepairWhere``.
    """
    ordered = sorted(paths)

    def extend(start, chosen):
        if len(chosen) == size:
            yield tuple(chosen)
            return
        for i in range(start, len(ordered)):
            candidate = ordered[i]
            if any(
                is_prefix(existing, candidate) or is_prefix(candidate, existing)
                for existing in chosen
            ):
                continue
            chosen.append(candidate)
            yield from extend(i + 1, chosen)
            chosen.pop()

    yield from extend(0, [])
