"""Substitution and renaming over terms and formulas."""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    BoolConst,
    Comparison,
    Formula,
    Not,
    Or,
    conj,
    disj,
    neg,
)
from repro.logic.terms import AggCall, Arith, Neg, Term, Var


def substitute_term(term, mapping):
    """Replace variables in ``term`` per ``mapping`` ({Var: Term}).

    Substitution descends into aggregate arguments as well, which is what
    table-alias unification (Section 4) requires.
    """
    if isinstance(term, Var):
        return mapping.get(term, term)
    if isinstance(term, Arith):
        return Arith(
            term.op,
            substitute_term(term.left, mapping),
            substitute_term(term.right, mapping),
        )
    if isinstance(term, Neg):
        return Neg(substitute_term(term.child, mapping))
    if isinstance(term, AggCall):
        if term.arg is None:
            return term
        return AggCall(term.func, substitute_term(term.arg, mapping), term.distinct)
    return term


def substitute(formula, mapping):
    """Replace variables in ``formula`` per ``mapping`` ({Var: Term})."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Comparison):
        return Comparison(
            formula.op,
            substitute_term(formula.left, mapping),
            substitute_term(formula.right, mapping),
        )
    if isinstance(formula, Not):
        return neg(substitute(formula.child, mapping))
    if isinstance(formula, And):
        return conj(*(substitute(c, mapping) for c in formula.operands))
    if isinstance(formula, Or):
        return disj(*(substitute(c, mapping) for c in formula.operands))
    raise TypeError(f"not a formula: {formula!r}")


def rename_variables(obj, rename):
    """Rename variables via a name->name mapping, preserving types."""
    if isinstance(obj, Term):
        mapping = {
            v: Var(rename[v.name], v.vtype)
            for v in obj.variables()
            if v.name in rename
        }
        return substitute_term(obj, mapping)
    mapping = {
        v: Var(rename[v.name], v.vtype) for v in obj.variables() if v.name in rename
    }
    return substitute(obj, mapping)


def instantiate(obj, suffix):
    """Rename every variable ``v`` to ``v{suffix}`` (tuple instantiation).

    Used by the GROUP BY stage (Algorithm 4) where a formula must be
    evaluated over two distinct tuples ``t1`` and ``t2``.
    """
    rename = {v.name: f"{v.name}{suffix}" for v in obj.variables()}
    return rename_variables(obj, rename)
