"""Linearization of numeric terms.

A :class:`LinExpr` is a normalized linear combination ``sum(coeff_i * v_i) +
constant`` over variables (or other opaque numeric terms treated as atoms,
e.g. aggregate calls).  Linearization is the bridge between SQL arithmetic
syntax and the Fourier-Motzkin arithmetic theory solver, and it also yields
cheap structural canonical forms for atoms (``a + 1 = b + 1`` and ``a = b``
linearize identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

from repro.catalog import SqlType
from repro.logic.terms import AggCall, Arith, Const, Neg, Term, Var


class NonLinearError(Exception):
    """Raised when a term has no linear form (e.g. ``x * y``)."""


@dataclass(frozen=True)
class LinExpr:
    """An immutable linear expression over opaque numeric base terms."""

    coeffs: tuple[tuple[Term, Fraction], ...]  # sorted by repr, no zeros
    constant: Fraction = Fraction(0)

    @staticmethod
    def build(coeffs, constant):
        items = [(t, c) for t, c in coeffs.items() if c != 0]
        items.sort(key=lambda item: str(item[0]))
        return LinExpr(tuple(items), Fraction(constant))

    @staticmethod
    def of_const(value):
        return LinExpr((), Fraction(value))

    @staticmethod
    def of_term(term):
        return LinExpr(((term, Fraction(1)),), Fraction(0))

    def coeff_dict(self):
        return dict(self.coeffs)

    @property
    def is_constant(self):
        return not self.coeffs

    def terms(self):
        return [t for t, _ in self.coeffs]

    def scale(self, factor):
        factor = Fraction(factor)
        if factor == 0:
            return LinExpr((), Fraction(0))
        return LinExpr(
            tuple((t, c * factor) for t, c in self.coeffs), self.constant * factor
        )

    def add(self, other):
        coeffs = self.coeff_dict()
        for t, c in other.coeffs:
            coeffs[t] = coeffs.get(t, Fraction(0)) + c
        return LinExpr.build(coeffs, self.constant + other.constant)

    def sub(self, other):
        return self.add(other.scale(-1))

    def negate(self):
        return self.scale(-1)

    def is_integral(self):
        """True if all coefficients and the constant are integers."""
        return self.constant.denominator == 1 and all(
            c.denominator == 1 for _, c in self.coeffs
        )

    def all_int_typed(self):
        """True if every base term is INT-typed (enables integer tightening)."""
        return all(t.type == SqlType.INT for t, _ in self.coeffs)

    def __str__(self):
        if not self.coeffs:
            return str(self.constant)
        parts = []
        for t, c in self.coeffs:
            if c == 1:
                parts.append(str(t))
            else:
                parts.append(f"{c}*{t}")
        out = " + ".join(parts)
        if self.constant != 0:
            out += f" + {self.constant}"
        return out


def linearize(term):
    """Convert a numeric term into a :class:`LinExpr`.

    Aggregate calls and other non-arithmetic leaves are kept as opaque base
    terms.  Raises :class:`NonLinearError` for products/quotients of two
    non-constant expressions.
    """
    if isinstance(term, Const):
        if not isinstance(term.value, Fraction):
            raise NonLinearError(f"non-numeric constant {term!r}")
        return LinExpr.of_const(term.value)
    if isinstance(term, (Var, AggCall)):
        return LinExpr.of_term(term)
    if isinstance(term, Neg):
        return linearize(term.child).negate()
    if isinstance(term, Arith):
        left = linearize(term.left)
        right = linearize(term.right)
        if term.op == "+":
            return left.add(right)
        if term.op == "-":
            return left.sub(right)
        if term.op == "*":
            if left.is_constant:
                return right.scale(left.constant)
            if right.is_constant:
                return left.scale(right.constant)
            raise NonLinearError(f"non-linear product: {term}")
        if term.op == "/":
            if right.is_constant and right.constant != 0:
                return left.scale(Fraction(1) / right.constant)
            raise NonLinearError(f"non-linear quotient: {term}")
    raise NonLinearError(f"cannot linearize {term!r}")


def try_linearize(term):
    """Like :func:`linearize` but returns None instead of raising."""
    try:
        return linearize(term)
    except NonLinearError:
        return None


def linexpr_to_term(expr):
    """Convert a :class:`LinExpr` back into a readable :class:`Term`."""
    result = None
    for base, coeff in expr.coeffs:
        if coeff == 1:
            piece = base
        elif coeff == -1:
            piece = Neg(base)
        else:
            piece = Arith("*", Const.of(coeff), base)
        result = piece if result is None else Arith("+", result, piece)
    if expr.constant != 0 or result is None:
        const = Const.of(expr.constant)
        result = const if result is None else Arith("+", result, const)
    return result
