"""Always-on bounded flight recorder of structured events.

A :class:`Journal` is the black-box recorder production SQL services
keep: a fixed-capacity ring buffer of small structured events that is
*always on*, so when a request goes sideways the last few thousand
things the process did are already in memory -- no re-run, no flag to
remember to set.  The process-wide instance is ``repro.obs.JOURNAL``.

Event sources (see ``docs/observability.md``):

* the HTTP server -- request start/finish (status + latency), error
  responses, slow-request trace summaries, unhandled exceptions;
* the artifact cache -- hits, misses, evictions;
* the cache spiller -- spill start/end (entries, bytes, duration) and
  skipped-idle ticks;
* the SAT core -- restarts, learned-DB reductions, and sampled
  chronological-backtrack progress (every
  :data:`CHRONO_SAMPLE` backtracks, so enumeration-bound solves stay
  visible without a per-backtrack record);
* witness generation -- guided-search fallbacks (the solver model path
  failed and the luck-dependent search ran).

Recording discipline: :meth:`Journal.record` is one ``enabled`` check,
one ``time.time()`` call, one small dict, and one GIL-atomic
``deque.append`` -- cheap enough to leave in rare-event call sites of
hot loops (the CI gate bounds the journal-enabled overhead on the
``sat_conjunctive`` kernel at < 2%, next to the tracer's gate).  The
buffer is bounded (default 2048 events), so sustained traffic can never
grow it; old events fall off the far end.

The journal is **per process**: batch workers record into their own
buffers, which die with the worker.  That is the flight-recorder trade
-- the serving process, where debugging happens, is the one whose
history matters.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from collections import deque

#: One sampled ``solver.chrono`` event per this many chronological
#: backtracks (power of two: the sample check is a mask, not a modulo).
CHRONO_SAMPLE = 4096


class Journal:
    """Thread-safe bounded ring buffer of structured events.

    ``record`` relies on the GIL-atomicity of ``deque.append`` (with
    ``maxlen`` set, the displacing append is a single bytecode-level
    operation) and an :class:`itertools.count` sequence, so the hot path
    takes no lock; ``tail``/``clear`` take a lock only to snapshot or
    reset consistently.
    """

    def __init__(self, capacity=2048):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        #: Plain-attribute hot-path guard, same discipline as
        #: ``TRACER.enabled`` -- instrumentation sites check this before
        #: building the event.  On (always-on) by default.
        self.enabled = True
        self._events = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.dropped = 0  # events displaced off the ring (approximate)

    def record(self, kind, **fields):
        """Append one event; returns its sequence number.

        ``fields`` must be JSON-safe scalars (the journal is dumped as
        JSON verbatim).  No-op (returns 0) while ``enabled`` is False.
        """
        if not self.enabled:
            return 0
        seq = next(self._seq)
        if len(self._events) >= self.capacity:
            self.dropped += 1  # approximate under races; monotone enough
        self._events.append((seq, time.time(), kind, fields))
        return seq

    def __len__(self):
        return len(self._events)

    def tail(self, n=None):
        """The most recent ``n`` events (all, if None), oldest first.

        Each event is a JSON-safe dict: ``{"seq", "ts", "kind", ...}``
        with the recorded fields inlined (fields never shadow the three
        reserved keys -- ``record`` callers use dotted kinds instead).
        """
        with self._lock:
            events = list(self._events)
        if n is not None and n >= 0:
            events = events[-n:] if n else []
        return [
            {"seq": seq, "ts": ts, "kind": kind, **fields}
            for seq, ts, kind, fields in events
        ]

    def clear(self):
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def stats(self):
        return {
            "capacity": self.capacity,
            "size": len(self._events),
            "dropped": self.dropped,
            "enabled": self.enabled,
        }

    # -- rendering ------------------------------------------------------

    def render(self, n=None):
        """One line per event, oldest first (CLI / stderr dumps)."""
        lines = []
        for event in self.tail(n):
            ts = time.strftime(
                "%H:%M:%S", time.localtime(event["ts"])
            ) + f".{int(event['ts'] * 1000) % 1000:03d}"
            fields = " ".join(
                f"{key}={event[key]}"
                for key in sorted(event)
                if key not in ("seq", "ts", "kind")
            )
            line = f"{event['seq']:>6}  {ts}  {event['kind']}"
            if fields:
                line += f"  {fields}"
            lines.append(line)
        return lines

    def dump(self, stream=None, n=200, reason=None):
        """Write the last ``n`` events to ``stream`` (default stderr).

        The unhandled-exception path of the HTTP server calls this so
        the flight recording lands in the server log next to the
        traceback it explains.
        """
        stream = stream if stream is not None else sys.stderr
        header = f"--- journal (last {min(n, len(self._events))} events"
        if reason:
            header += f"; {reason}"
        header += ") ---"
        print(header, file=stream)
        for line in self.render(n):
            print(line, file=stream)
        print("--- end journal ---", file=stream)


#: The process-wide flight recorder every instrumentation point uses.
JOURNAL = Journal()
