"""Observability: span tracing, a metrics registry, and exposition.

Three pieces (see ``docs/observability.md``):

* :data:`TRACER` -- the process-wide span tracer.  Disabled by default;
  ``TRACER.span(...)`` then returns a shared no-op span, and hot paths
  guard with ``TRACER.enabled``.  A trace is opened per request/CLI run
  with ``with TRACER.trace("grade") as handle:``.
* :data:`REGISTRY` -- the process-wide :class:`MetricsRegistry` holding
  service-level counters/gauges/histograms; snapshots are JSON-safe and
  mergeable (batch workers ship deltas back via :func:`snapshot_delta`).
* :mod:`repro.obs.export` -- Prometheus text rendering of scrape-time
  families (the existing solver/session/cache counters, re-homed without
  renaming their public keys) and a text-format validator.

The second generation (see ISSUE 8) adds:

* :data:`JOURNAL` -- the process-wide always-on bounded flight recorder
  (:mod:`repro.obs.journal`);
* :mod:`repro.obs.effort` -- per-request solver-effort attribution via
  counter snapshot/deltas;
* :mod:`repro.obs.baseline` -- the unified perf-regression sentinel over
  the committed ``BENCH_*.json`` files (``repro perfdiff``).
"""

from repro.obs.export import (
    KNOWN_ROUTES,
    bounded_route,
    parse_prometheus_text,
    service_metric_families,
)
from repro.obs.journal import CHRONO_SAMPLE, JOURNAL, Journal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BUCKETS,
    log_buckets,
    render_families,
    snapshot_delta,
)
from repro.obs.trace import TRACER, Span, Trace, TraceHandle, Tracer

#: The process-wide registry all service-level metrics register into.
REGISTRY = MetricsRegistry()

# Effort helpers import lazily from this package (record_route_effort
# resolves REGISTRY at call time), so this import must follow REGISTRY.
from repro.obs.effort import (  # noqa: E402
    EFFORT_KEYS,
    EffortMeter,
    effort_delta,
    effort_snapshot,
    mean_effort,
    merge_effort,
    record_route_effort,
)

__all__ = [
    "TRACER",
    "REGISTRY",
    "JOURNAL",
    "Journal",
    "CHRONO_SAMPLE",
    "EFFORT_KEYS",
    "EffortMeter",
    "effort_snapshot",
    "effort_delta",
    "mean_effort",
    "merge_effort",
    "record_route_effort",
    "KNOWN_ROUTES",
    "bounded_route",
    "Tracer",
    "Trace",
    "TraceHandle",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "log_buckets",
    "render_families",
    "snapshot_delta",
    "parse_prometheus_text",
    "service_metric_families",
]
