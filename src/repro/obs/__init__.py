"""Observability: span tracing, a metrics registry, and exposition.

Three pieces (see ``docs/observability.md``):

* :data:`TRACER` -- the process-wide span tracer.  Disabled by default;
  ``TRACER.span(...)`` then returns a shared no-op span, and hot paths
  guard with ``TRACER.enabled``.  A trace is opened per request/CLI run
  with ``with TRACER.trace("grade") as handle:``.
* :data:`REGISTRY` -- the process-wide :class:`MetricsRegistry` holding
  service-level counters/gauges/histograms; snapshots are JSON-safe and
  mergeable (batch workers ship deltas back via :func:`snapshot_delta`).
* :mod:`repro.obs.export` -- Prometheus text rendering of scrape-time
  families (the existing solver/session/cache counters, re-homed without
  renaming their public keys) and a text-format validator.
"""

from repro.obs.export import parse_prometheus_text, service_metric_families
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_TIME_BUCKETS,
    log_buckets,
    render_families,
    snapshot_delta,
)
from repro.obs.trace import TRACER, Span, Trace, TraceHandle, Tracer

#: The process-wide registry all service-level metrics register into.
REGISTRY = MetricsRegistry()

__all__ = [
    "TRACER",
    "REGISTRY",
    "Tracer",
    "Trace",
    "TraceHandle",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "log_buckets",
    "render_families",
    "snapshot_delta",
    "parse_prometheus_text",
    "service_metric_families",
]
