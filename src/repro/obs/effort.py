"""Per-request solver-effort attribution: counter snapshot/delta plumbing.

Wall-clock latency says a grade was slow; *effort* says why: how many
SAT solves, propagations, conflicts, theory rounds, learned/deleted
clauses, and unsat cores the solver burned serving it.  This module
snapshots the existing ``Solver.stats_snapshot()`` counters around a
unit of work and reports the delta -- the exact discipline the batch
workers already use to ship solver counters back to the parent, applied
at request and pipeline-stage granularity:

* ``session.grade(..., effort=True)`` attaches the per-request delta to
  the :class:`~repro.service.session.GradeResult` (HTTP ``"effort":
  true`` returns it in the response body);
* each ``stage.<NAME>`` pipeline span carries the stage's nonzero
  counter deltas as an ``effort`` attribute while a trace is active;
* the HTTP server aggregates every grade's delta per route into the
  ``repro_solver_effort_total{route,counter}`` family on ``/metrics``;
* ``corpus.evaluate`` aggregates per-mutation-kind means into the
  ``effort`` block of ``by_kind`` (the ROADMAP's open solver-effort
  attribution dimension).

Snapshots are plain dicts of ints -- JSON-safe, mergeable, and cheap
(one dict copy per boundary), so always-on per-route aggregation costs
two copies per request.
"""

from __future__ import annotations

#: The attribution counters, in reporting order.  A stable subset of
#: ``Solver.stats_snapshot()``: every int counter that measures *work*
#: (cache_hit_rate is derived, so it is excluded).
EFFORT_KEYS = (
    "sat_calls",
    "propagations",
    "conflicts",
    "theory_calls",
    "theory_cache_hits",
    "cache_hits",
    "learned_clauses",
    "clauses_deleted",
    "restarts",
    "chrono_backtracks",
    "saved_trail_literals",
    "literals_minimized",
    "unsat_cores",
    "unsat_core_literals",
    "core_pruned_subtrees",
)


def effort_snapshot(solver):
    """Point-in-time copy of the solver's effort counters (ints only)."""
    snapshot = solver.stats_snapshot()
    return {
        key: value
        for key, value in snapshot.items()
        if isinstance(value, int)
    }


def effort_delta(before, after):
    """``after - before`` per counter; keys ordered as EFFORT_KEYS first."""
    out = {}
    for key in EFFORT_KEYS:
        if key in after:
            out[key] = after[key] - before.get(key, 0)
    for key, value in after.items():
        if key not in out:
            out[key] = value - before.get(key, 0)
    return out


def nonzero(delta):
    """The nonzero entries of a delta (span attributes, compact JSON)."""
    return {key: value for key, value in delta.items() if value}


class EffortMeter:
    """Context manager capturing one unit of work's counter delta.

    ::

        with EffortMeter(solver) as meter:
            session.grade(sql)
        meter.delta  # {"sat_calls": 3, "propagations": 120, ...}
    """

    def __init__(self, solver):
        self._solver = solver
        self._before = None
        self.delta = {}

    def __enter__(self):
        self._before = effort_snapshot(self._solver)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.delta = effort_delta(
            self._before, effort_snapshot(self._solver)
        )
        return False


def merge_effort(total, delta):
    """Fold one delta into a running total (in place); returns the total."""
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value
    return total


def mean_effort(deltas, keys=EFFORT_KEYS, digits=1):
    """Per-counter means over a list of deltas (corpus ``by_kind`` block).

    Only ``keys`` present in at least one delta are reported, so the
    block tracks the solver's real counter set instead of hard-coding
    one.
    """
    if not deltas:
        return {}
    out = {}
    for key in keys:
        values = [delta[key] for delta in deltas if key in delta]
        if values:
            out[key] = round(sum(values) / len(deltas), digits)
    return out


def record_route_effort(route, delta, registry=None):
    """Aggregate one request's effort delta into ``/metrics``.

    One counter family, ``repro_solver_effort_total``, labeled by route
    and counter name -- both label sets are bounded (routes by the
    server's known-route guard, counters by EFFORT_KEYS), so cardinality
    stays fixed no matter the traffic.
    """
    if registry is None:
        from repro.obs import REGISTRY as registry  # lazy: avoids a cycle
    counter = registry.counter(
        "repro_solver_effort_total",
        "Solver effort counters attributed to the serving route.",
        ("route", "counter"),
    )
    for key in EFFORT_KEYS:
        value = delta.get(key, 0)
        if value > 0:
            counter.inc(value, route=route, counter=key)
    return counter
