"""Counters, gauges, and log-bucketed histograms with mergeable snapshots.

A :class:`MetricsRegistry` owns a set of named metrics behind one lock:

* :class:`Counter` -- monotone float/int sums, optionally labeled;
* :class:`Gauge` -- last-written values (``set``/``inc``);
* :class:`Histogram` -- log-bucketed observation counts plus sum/count,
  from which p50/p95/p99 are derivable (:meth:`Histogram.quantile`).

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts;
:func:`snapshot_delta` subtracts two of them and
:meth:`MetricsRegistry.merge` folds a snapshot (typically a worker
process's delta) into the live registry -- the same delta-merge
discipline the solver's ``stats_snapshot()`` counters use across batch
workers.  :meth:`MetricsRegistry.render` emits Prometheus text format
(version 0.0.4), including any scrape-time collector families registered
with :meth:`MetricsRegistry.register_collector`.
"""

from __future__ import annotations

import threading


def log_buckets(start=0.0001, factor=2.0, count=22):
    """Geometric histogram bucket upper bounds (seconds by convention)."""
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default latency buckets: 100us doubling up to ~210s, then +Inf.
DEFAULT_TIME_BUCKETS = log_buckets()


def _format_value(value):
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value):
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _escape_help(text):
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _label_block(labels):
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def render_families(families):
    """Render scrape-time metric families to Prometheus text.

    Each family is ``{"name", "kind", "help", "samples"}`` with samples a
    list of ``(labels_dict, numeric_value)`` pairs.
    """
    lines = []
    for family in families:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for labels, value in family["samples"]:
            block = _label_block(sorted(labels.items()))
            lines.append(f"{name}{block} {_format_value(value)}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


class _Metric:
    """Shared labeled-value plumbing; subclasses define the value shape."""

    kind = None

    def __init__(self, name, help, labelnames, lock):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = lock
        self._values = {}  # labelvalues tuple -> state

    def _key(self, labels):
        if len(labels) != len(self.labelnames) or any(
            name not in labels for name in self.labelnames
        ):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def items(self):
        """``(labels_dict, value)`` pairs; histogram value is a dict."""
        with self._lock:
            states = list(self._values.items())
        return [
            (dict(zip(self.labelnames, key)), self._public_value(state))
            for key, state in states
        ]

    def _public_value(self, state):
        return state

    # -- snapshot / render hooks (overridden where needed) -------------

    def _snapshot_values(self):
        with self._lock:
            return [[list(key), state] for key, state in self._values.items()]

    def _render(self):
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            states = sorted(self._values.items())
        for key, state in states:
            block = _label_block(list(zip(self.labelnames, key)))
            lines.append(f"{self.name}{block} {_format_value(state)}")
        return lines


class Counter(_Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount=1, **labels):
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels):
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def _merge_state(self, key, state):
        with self._lock:
            self._values[key] = self._values.get(key, 0) + state


class Gauge(_Metric):
    """A value that can go up and down; merge keeps the incoming value."""

    kind = "gauge"

    def set(self, value, **labels):
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount=1, **labels):
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels):
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0)

    def _merge_state(self, key, state):
        with self._lock:
            self._values[key] = state


class Histogram(_Metric):
    """Log-bucketed observation histogram (cumulative on render).

    State per label set is ``[per-bucket counts (+Inf last), sum]``;
    quantiles are derived from the bucket counts as the upper bound of
    the bucket containing the requested rank, which is exact to within
    one bucket width -- the log spacing bounds the relative error.
    """

    kind = "histogram"

    def __init__(self, name, help, labelnames, lock,
                 buckets=DEFAULT_TIME_BUCKETS):
        super().__init__(name, help, labelnames, lock)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = bounds

    def _state(self, key):
        state = self._values.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0]
            self._values[key] = state
        return state

    def observe(self, value, **labels):
        key = self._key(labels)
        value = float(value)
        index = 0
        for bound in self.buckets:  # short series; linear beats bisect setup
            if value <= bound:
                break
            index += 1
        with self._lock:
            counts, _ = state = self._state(key)
            counts[index] += 1
            state[1] += value

    def count(self, **labels):
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return sum(state[0]) if state else 0

    def sum(self, **labels):
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            return state[1] if state else 0.0

    def quantile(self, q, **labels):
        """Upper-bound estimate of the ``q`` quantile (0 < q <= 1)."""
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            counts = list(state[0]) if state else None
        if not counts or not sum(counts):
            return 0.0
        rank = q * sum(counts)
        cumulative = 0
        for bound, count in zip(self.buckets, counts):
            cumulative += count
            if cumulative >= rank:
                return bound
        return self.buckets[-1]  # rank fell in the +Inf bucket

    def _public_value(self, state):
        counts, total = state
        return {"counts": list(counts), "sum": total, "count": sum(counts)}

    def _merge_state(self, key, state):
        counts, total = state
        with self._lock:
            mine = self._state(key)
            if len(counts) != len(mine[0]):
                raise ValueError(
                    f"histogram {self.name!r}: bucket layout mismatch"
                )
            for i, count in enumerate(counts):
                mine[0][i] += count
            mine[1] += total

    def _snapshot_values(self):
        with self._lock:
            return [
                [list(key), [list(state[0]), state[1]]]
                for key, state in self._values.items()
            ]

    def _render(self):
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            states = sorted(
                (key, list(state[0]), state[1])
                for key, state in self._values.items()
            )
        for key, counts, total in states:
            base = list(zip(self.labelnames, key))
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                block = _label_block(base + [("le", f"{bound:.6g}")])
                lines.append(f"{self.name}_bucket{block} {cumulative}")
            cumulative += counts[-1]
            block = _label_block(base + [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{block} {cumulative}")
            plain = _label_block(base)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {cumulative}")
        return lines


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics behind one lock, with snapshot/merge/render."""

    def __init__(self):
        self._lock = threading.RLock()
        self._metrics = {}
        self._collectors = []

    def counter(self, name, help="", labelnames=()):
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(),
                  buckets=DEFAULT_TIME_BUCKETS):
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def _register(self, cls, name, help, labelnames, **extra):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or (
                    existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        "different signature"
                    )
                return existing
            metric = cls(name, help, labelnames, self._lock, **extra)
            self._metrics[name] = metric
            return metric

    def get(self, name):
        with self._lock:
            return self._metrics.get(name)

    def register_collector(self, fn):
        """Register a scrape-time callable returning metric families."""
        with self._lock:
            self._collectors.append(fn)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self):
        """JSON-safe point-in-time copy of every registered metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        out = {}
        for metric in metrics:
            entry = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "values": metric._snapshot_values(),
            }
            if metric.kind == "histogram":
                entry["buckets"] = list(metric.buckets)
            out[metric.name] = entry
        return out

    def merge(self, snapshot):
        """Fold a snapshot (e.g. a worker delta) into this registry.

        Counters and histograms add; gauges take the incoming value.
        Metrics not yet registered here are created on the fly from the
        snapshot's own signature.
        """
        for name, entry in snapshot.items():
            cls = _KINDS[entry["kind"]]
            extra = {}
            if entry["kind"] == "histogram":
                extra["buckets"] = tuple(entry["buckets"])
            metric = self._register(
                cls, name, entry.get("help", ""),
                tuple(entry.get("labelnames", ())), **extra
            )
            for key, state in entry["values"]:
                metric._merge_state(tuple(key), state)

    def render(self):
        """Prometheus text format (0.0.4) for every metric + collector."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
            collectors = list(self._collectors)
        lines = []
        for metric in metrics:
            lines.extend(metric._render())
        text = "\n".join(lines) + ("\n" if lines else "")
        for fn in collectors:
            text += render_families(fn())
        return text


def snapshot_delta(before, after):
    """``after - before`` in snapshot form (counters/histograms subtract,
    gauges keep the ``after`` value); suitable for ``registry.merge``."""
    out = {}
    for name, entry in after.items():
        base = before.get(name, {})
        base_values = {
            tuple(key): state for key, state in base.get("values", [])
        }
        kind = entry["kind"]
        values = []
        for key, state in entry["values"]:
            prior = base_values.get(tuple(key))
            if kind == "counter":
                delta = state - (prior or 0)
                if delta:
                    values.append([list(key), delta])
            elif kind == "histogram":
                counts, total = state
                if prior is not None:
                    counts = [c - p for c, p in zip(counts, prior[0])]
                    total = total - prior[1]
                if any(counts):
                    values.append([list(key), [counts, total]])
            else:  # gauge: latest value wins
                values.append([list(key), state])
        if values:
            slim = dict(entry)
            slim["values"] = values
            out[name] = slim
    return out
