"""Unified perf-regression sentinel over the committed BENCH_*.json files.

Every subsystem commits a benchmark JSON at the repository root
(``BENCH_solver.json``, ``BENCH_service.json``, ``BENCH_witness.json``,
``BENCH_corpus.json``, ``BENCH_obs.json``).  Until now each had its own
ad-hoc CI threshold shell; this module is the one gate they all share:

1. a declarative :data:`BENCHMARKS` registry says, per file, which
   metrics matter, which *direction* is good (throughput up, overhead
   down, invariants exact), how much run-to-run *noise* to tolerate,
   and whether the metric participates in the hard gate;
2. :func:`run_benchmark` re-runs the matching benchmark command with
   ``BENCH_OUT_DIR`` pointed at a scratch directory (the committed file
   is never rewritten by a gate run), or any fresh run file can be
   ingested directly;
3. :func:`compare` resolves the metric paths in both documents
   (wildcards fan out over dict keys) and emits direction-aware
   verdicts: ``improved`` / ``ok`` (within noise) / ``slower`` (beyond
   noise but above the gate) / ``fail`` (below the gate, or an exact
   invariant broken) / ``skipped`` (metric absent from one side, e.g. a
   smoke run against a full committed file).

The CLI surface is ``repro perfdiff`` (see ``repro perfdiff --help``);
CI runs ``repro perfdiff --all --gate 0.5x`` as the single
perf-sentinel job.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
from dataclasses import dataclass, field

#: Default hard gate: fail when a gated higher-is-better metric falls
#: below this fraction of the committed value (runner-speed tolerance --
#: the same 0.5x every per-benchmark shell gate used before).
DEFAULT_GATE = 0.5

#: Default relative noise band: within +-15% of committed is "ok".
DEFAULT_NOISE = 0.15


@dataclass(frozen=True)
class Metric:
    """One gated (or tracked) value inside a benchmark JSON.

    ``path`` is a dotted key path; a ``*`` segment fans out over every
    key of the dict at that level (``kernels.*.ops_per_sec``).

    Directions:

    * ``higher`` -- ratio fresh/committed must stay above the gate;
    * ``lower``  -- lower is better (latencies, shed rates); compared
      through the inverse ratio so the same floor/noise logic applies;
    * ``exact``  -- fresh must equal committed (invariants such as
      ``byte_identical`` or a 100% grade rate);
    * ``bound_max`` -- fresh must stay below ``bound`` (absolute budget,
      e.g. the < 2% tracer overhead); the committed value is shown for
      drift context but is not the reference.
    """

    path: str
    direction: str = "higher"  # "higher" | "lower" | "exact" | "bound_max"
    noise: float = DEFAULT_NOISE
    gated: bool = True  # participates in the exit-code gate
    min_ratio: float = None  # per-metric floor overriding the global gate
    bound: float = None  # absolute budget for direction="bound_max"


@dataclass(frozen=True)
class Benchmark:
    """One committed BENCH file plus the command that regenerates it."""

    name: str
    filename: str
    command: tuple  # argv after the interpreter, repo-root relative
    metrics: tuple
    note: str = ""


BENCHMARKS = {
    "solver": Benchmark(
        name="solver",
        filename="BENCH_solver.json",
        command=("benchmarks/bench_solver_micro.py",),
        metrics=(
            Metric("kernels.*.ops_per_sec"),
            Metric("kernels.sat_enumeration_chrono.models_per_sec",
                   gated=False),
        ),
        note="SAT/SMT/MinFix kernel throughput",
    ),
    "service": Benchmark(
        name="service",
        filename="BENCH_service.json",
        command=("benchmarks/bench_service_throughput.py",),
        metrics=(
            Metric("scenarios.*.speedup", noise=0.3),
            Metric("scenarios.*.batch_qps", noise=0.3, gated=False),
            Metric("scenarios.*.cache_hit_rate", noise=0.02),
            Metric("byte_identical", direction="exact"),
            # Overload axis: latency under admission control is tracked
            # (noise-banded, ungated) -- load timing is machine-shaped.
            Metric("overload.*.p50_ms", direction="lower", noise=0.5,
                   gated=False),
            Metric("overload.*.p99_ms", direction="lower", noise=0.5,
                   gated=False),
            Metric("overload.*.shed_rate", direction="lower", noise=0.5,
                   gated=False),
        ),
        note="batch grading throughput vs sequential + overload latency",
    ),
    "witness": Benchmark(
        name="witness",
        filename="BENCH_witness.json",
        command=("benchmarks/bench_witness.py", "--count", "120"),
        metrics=(
            Metric("coverage", noise=0.0, min_ratio=0.9),
            Metric("verification_rate", direction="exact"),
            Metric("scenarios.*.coverage", noise=0.05, gated=False),
        ),
        note="counterexample coverage on the userstudy pool",
    ),
    "corpus": Benchmark(
        name="corpus",
        filename="BENCH_corpus.json",
        command=("benchmarks/bench_corpus.py", "--smoke"),
        metrics=(
            Metric("smoke.throughput", noise=0.3),
            Metric("smoke.grade_success_rate", direction="exact"),
            Metric("smoke.hint_coverage", noise=0.05, gated=False),
            Metric("smoke.stage_recall", noise=0.02, gated=False),
        ),
        note="fixed-seed corpus graded through the batch path",
    ),
    "obs": Benchmark(
        name="obs",
        filename="BENCH_obs.json",
        command=("benchmarks/bench_obs.py",),
        metrics=(
            Metric("overhead.overhead", direction="bound_max", bound=0.02),
            Metric("journal_overhead.overhead", direction="bound_max",
                   bound=0.02),
            Metric("scrape.families", noise=0.0, gated=False),
        ),
        note="disabled-tracer + enabled-journal overhead on the SAT kernel",
    ),
}


def parse_gate(text):
    """``"0.5x"`` (or ``"0.5"``) -> 0.5; raises ValueError on garbage."""
    raw = str(text).strip().lower()
    if raw.endswith("x"):
        raw = raw[:-1]
    value = float(raw)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"gate must be in (0, 1], got {text!r}")
    return value


# ----------------------------------------------------------------------
# Path resolution


def resolve_paths(doc, path):
    """``(resolved_path, value)`` pairs for a dotted path with ``*``."""
    parts = path.split(".")

    def walk(node, index, prefix):
        if index == len(parts):
            yield ".".join(prefix), node
            return
        part = parts[index]
        if not isinstance(node, dict):
            return
        if part == "*":
            for key in sorted(node):
                yield from walk(node[key], index + 1, prefix + [key])
        elif part in node:
            yield from walk(node[part], index + 1, prefix + [part])

    return list(walk(doc, 0, []))


# ----------------------------------------------------------------------
# Comparison


@dataclass
class MetricResult:
    """One compared metric: values, ratio, and verdict."""

    benchmark: str
    path: str
    committed: object
    fresh: object
    ratio: float = None
    status: str = "ok"  # improved | ok | slower | fail | skipped
    gated: bool = True
    detail: str = ""

    @property
    def failed(self):
        return self.status == "fail"

    def to_dict(self):
        return {
            "benchmark": self.benchmark,
            "path": self.path,
            "committed": self.committed,
            "fresh": self.fresh,
            "ratio": self.ratio,
            "status": self.status,
            "gated": self.gated,
            "detail": self.detail,
        }


def _compare_one(bench, metric, path, committed, fresh, gate):
    result = MetricResult(
        benchmark=bench, path=path, committed=committed, fresh=fresh,
        gated=metric.gated,
    )
    if metric.direction == "exact":
        if fresh == committed:
            result.status = "ok"
        else:
            result.status = "fail" if metric.gated else "slower"
            result.detail = "invariant changed"
        return result
    if metric.direction == "bound_max":
        bound = metric.bound
        ok = isinstance(fresh, (int, float)) and fresh <= bound
        result.status = "ok" if ok else ("fail" if metric.gated else "slower")
        result.detail = f"budget <= {bound:g}"
        return result
    # direction == "higher" | "lower"
    if not isinstance(fresh, (int, float)) or not isinstance(
        committed, (int, float)
    ):
        result.status = "skipped"
        result.detail = "non-numeric"
        return result
    if metric.direction == "lower":
        if committed <= 0 or fresh <= 0:
            # Nothing to regress against; only report.
            result.status = "ok" if fresh <= committed else "slower"
            result.detail = "value at or below zero"
            return result
        # Inverse ratio: "committed/fresh > 1" means fresh got smaller,
        # which for latency-style metrics is the improvement direction.
        ratio = committed / fresh
    else:
        if committed <= 0:
            # Nothing to regress against; only report.
            result.status = "ok" if fresh >= committed else "slower"
            result.detail = "committed value is <= 0"
            return result
        ratio = fresh / committed
    result.ratio = round(ratio, 4)
    floor = metric.min_ratio if metric.min_ratio is not None else gate
    if ratio < floor:
        result.status = "fail" if metric.gated else "slower"
        result.detail = f"below {floor:g}x floor"
    elif ratio < 1.0 - metric.noise:
        result.status = "slower"
        result.detail = f"beyond the {metric.noise:.0%} noise band"
    elif ratio > 1.0 + metric.noise:
        result.status = "improved"
    else:
        result.status = "ok"
    return result


def compare(bench, committed_doc, fresh_doc, gate=DEFAULT_GATE):
    """Compare a fresh run against the committed doc; list of results.

    Metrics present in the committed file but absent from the fresh run
    (e.g. the ``full`` corpus section when the gate re-runs only the
    smoke corpus) come back ``skipped`` -- visible, never fatal.
    """
    spec = BENCHMARKS[bench] if isinstance(bench, str) else bench
    results = []
    for metric in spec.metrics:
        committed_values = dict(resolve_paths(committed_doc, metric.path))
        fresh_values = dict(resolve_paths(fresh_doc, metric.path))
        for path in sorted(set(committed_values) | set(fresh_values)):
            if path not in fresh_values or path not in committed_values:
                side = "fresh run" if path not in fresh_values else "committed"
                results.append(
                    MetricResult(
                        benchmark=spec.name, path=path,
                        committed=committed_values.get(path),
                        fresh=fresh_values.get(path),
                        status="skipped", gated=False,
                        detail=f"absent from {side}",
                    )
                )
                continue
            results.append(
                _compare_one(
                    spec.name, metric, path,
                    committed_values[path], fresh_values[path], gate,
                )
            )
    return results


# ----------------------------------------------------------------------
# Running benchmarks


def repo_root():
    """The repository root: the directory holding the BENCH files."""
    return pathlib.Path(__file__).resolve().parents[3]


def committed_path(bench, root=None):
    spec = BENCHMARKS[bench] if isinstance(bench, str) else bench
    return (root or repo_root()) / spec.filename


def load_committed(bench, root=None):
    return json.loads(committed_path(bench, root).read_text())


def run_benchmark(bench, out_dir, root=None, timeout=1800):
    """Re-run a benchmark into ``out_dir``; returns the fresh document.

    The child runs with ``BENCH_OUT_DIR=out_dir`` so the committed JSON
    at the repository root is never rewritten by a sentinel run.  Raises
    :class:`RuntimeError` when the benchmark exits nonzero (its own
    internal assertions count as sentinel failures) or writes no file.
    """
    spec = BENCHMARKS[bench] if isinstance(bench, str) else bench
    root = root or repo_root()
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env["BENCH_OUT_DIR"] = str(out_dir)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(root / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, *spec.command],
        cwd=str(root), env=env, timeout=timeout,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"benchmark {spec.name} exited {proc.returncode}:\n{proc.stdout}"
        )
    fresh_path = out_dir / spec.filename
    if not fresh_path.exists():
        raise RuntimeError(
            f"benchmark {spec.name} wrote no {spec.filename} in {out_dir}"
        )
    return json.loads(fresh_path.read_text())


# ----------------------------------------------------------------------
# Reporting


@dataclass
class PerfDiff:
    """Sentinel outcome over one or more benchmarks."""

    gate: float
    results: list = field(default_factory=list)
    errors: dict = field(default_factory=dict)  # bench -> error message

    @property
    def failed(self):
        return bool(self.errors) or any(r.failed for r in self.results)

    def counts(self):
        out = {}
        for result in self.results:
            out[result.status] = out.get(result.status, 0) + 1
        return out

    def to_dict(self):
        return {
            "gate": self.gate,
            "passed": not self.failed,
            "counts": self.counts(),
            "errors": self.errors,
            "results": [r.to_dict() for r in self.results],
        }

    def render(self):
        """Aligned one-line-per-metric report."""
        lines = []
        width = max((len(f"{r.benchmark}:{r.path}") for r in self.results),
                    default=20)
        for result in self.results:
            name = f"{result.benchmark}:{result.path}"
            committed = _fmt(result.committed)
            fresh = _fmt(result.fresh)
            ratio = f"{result.ratio:.2f}x" if result.ratio is not None else "-"
            flag = "" if result.gated else " (ungated)"
            detail = f"  [{result.detail}]" if result.detail else ""
            lines.append(
                f"  {name:<{width}}  {committed:>10} -> {fresh:>10}  "
                f"{ratio:>7}  {result.status}{flag}{detail}"
            )
        for bench, error in self.errors.items():
            lines.append(f"  {bench}: ERROR {error}")
        counts = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        )
        verdict = "FAIL" if self.failed else "PASS"
        lines.append(
            f"perfdiff {verdict} (gate {self.gate:g}x): {counts or 'no metrics'}"
        )
        return lines


def _fmt(value):
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def perfdiff(
    benches=None,
    gate=DEFAULT_GATE,
    fresh_docs=None,
    run=True,
    out_dir=None,
    root=None,
):
    """Compare fresh benchmark runs against the committed BENCH files.

    ``fresh_docs`` maps benchmark name to an already-loaded fresh run
    document (ingest mode); benchmarks not covered there are re-run when
    ``run`` is True, into ``out_dir`` (a temp dir by default).  Returns
    a :class:`PerfDiff`.
    """
    import tempfile

    benches = list(benches or BENCHMARKS)
    fresh_docs = dict(fresh_docs or {})
    diff = PerfDiff(gate=gate)
    cleanup = None
    if out_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="perfdiff-")
        out_dir = cleanup.name
    try:
        for bench in benches:
            try:
                committed = load_committed(bench, root)
            except (OSError, ValueError) as error:
                diff.errors[bench] = f"cannot load committed file: {error}"
                continue
            fresh = fresh_docs.get(bench)
            if fresh is None:
                if not run:
                    diff.errors[bench] = "no fresh run supplied"
                    continue
                try:
                    fresh = run_benchmark(bench, out_dir, root)
                except (RuntimeError, OSError,
                        subprocess.TimeoutExpired) as error:
                    diff.errors[bench] = str(error)
                    continue
            diff.results.extend(compare(bench, committed, fresh, gate))
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    return diff


def infer_bench(path):
    """Benchmark name from a run file's name (``BENCH_solver.json``)."""
    stem = pathlib.Path(path).name
    for name, spec in BENCHMARKS.items():
        if stem == spec.filename:
            return name
    raise ValueError(
        f"cannot infer benchmark from {path!r}; pass --bench explicitly"
    )
