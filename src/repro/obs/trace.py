"""Context-manager span tracer with trace IDs, nesting, and attributes.

One process-wide :class:`Tracer` (``repro.obs.TRACER``) carries a
*thread-local* active trace.  When no trace is active -- the production
default -- ``TRACER.span(...)`` returns a shared no-op span, so
instrumentation left in place costs one method call and no allocation of
trace state; hot paths (the solver inner loops) guard with
``TRACER.enabled`` instead and skip even that.

A trace is opened with ``with TRACER.trace("grade") as handle:`` -- the
handle exposes the finished span tree (``to_dict()`` / ``tree()`` /
``render()``) after the block exits.  Opening a trace while one is
already active captures a *subtree*: the spans recorded under the nested
root also stay in the outer trace, so per-request capture (``"trace":
true``) composes with server-wide slow-request tracing.

Spans serialized in another process (batch workers) are re-parented into
the current trace with :meth:`Tracer.adopt`: span IDs are remapped and
start times re-based through the wall clock, the same delta-merge
discipline the solver's ``stats_snapshot()`` uses for counters.
"""

from __future__ import annotations

import os
import threading
import time


class Span:
    """One timed operation inside a trace; also its own context manager."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs",
                 "_trace")

    def __init__(self, trace, name, span_id, parent_id, attrs):
        self._trace = trace
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end = None
        self.attrs = attrs

    def set(self, **attrs):
        self.attrs.update(attrs)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._trace.finish(self)
        return False


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        pass


_NULL_SPAN = _NullSpan()


class Trace:
    """Mutable recording state of one active trace (one thread)."""

    __slots__ = ("name", "trace_id", "wall_start", "perf_start", "spans",
                 "stack", "_next_id")

    def __init__(self, name):
        self.name = name
        self.trace_id = os.urandom(8).hex()
        self.wall_start = time.time()
        self.perf_start = time.perf_counter()
        self.spans = []  # every span, in start order (parents before children)
        self.stack = []  # currently open spans
        self._next_id = 1

    def start_span(self, name, attrs):
        parent = self.stack[-1].span_id if self.stack else None
        span = Span(self, name, self._next_id, parent, attrs)
        self._next_id += 1
        self.spans.append(span)
        self.stack.append(span)
        return span

    def finish(self, span):
        span.end = time.perf_counter()
        # Spans close in LIFO order under normal with-block nesting; the
        # fallbacks tolerate a span leaked across an exception boundary.
        if self.stack and self.stack[-1] is span:
            self.stack.pop()
        elif span in self.stack:
            self.stack.remove(span)

    def subtree(self, root):
        """Spans rooted at ``root``, relying on start-order parent-first."""
        keep = {root.span_id}
        collected = []
        for span in self.spans:
            if span.span_id in keep or span.parent_id in keep:
                keep.add(span.span_id)
                collected.append(span)
        return collected

    def adopt(self, trace_dict):
        """Graft spans serialized by :meth:`TraceHandle.to_dict` here.

        Foreign span IDs are remapped into this trace's ID space; foreign
        roots become children of the currently open span.  Start times
        are re-based through the serialized wall-clock start, so spans
        recorded in a worker process land at (approximately) the right
        offset on this trace's timeline while keeping exact durations.

        Edge cases the re-basing must survive (workers are separate
        processes with unrelated monotonic clocks):

        * an empty or span-less worker trace adopts as zero spans and
          must leave this trace untouched;
        * a missing or null ``wall_start`` falls back to *this* trace's
          start (offset 0) instead of raising;
        * wall clocks can disagree, yielding a *negative* re-based
          offset; offsets and span starts are clamped so adopted spans
          never start before the span they are grafted under (a span
          "before its parent" would serialize with a negative
          ``start_ms`` and corrupt the parent timeline);
        * negative per-span starts/durations from a clock-stepped worker
          are clamped to zero rather than propagated.
        """
        if not trace_dict:
            return 0
        parent_id = self.stack[-1].span_id if self.stack else None
        # Adopted spans may not start before the span they are grafted
        # under: handles render start_ms relative to their root span, so
        # anything earlier would serialize negative.
        floor = self.stack[-1].start if self.stack else self.perf_start
        wall_offset = trace_dict.get("wall_start")
        if wall_offset is None:
            wall_offset = self.wall_start
        offset = max(0.0, wall_offset - self.wall_start)
        id_map = {}
        adopted = 0
        for item in trace_dict.get("spans", ()) or ():
            span = Span.__new__(Span)
            span._trace = self
            span.name = item["name"]
            span.span_id = self._next_id
            self._next_id += 1
            id_map[item["id"]] = span.span_id
            span.parent_id = id_map.get(item.get("parent"), parent_id)
            start_ms = max(0.0, item.get("start_ms") or 0.0)
            duration_ms = max(0.0, item.get("duration_ms") or 0.0)
            span.start = max(
                floor, self.perf_start + offset + start_ms / 1000.0
            )
            span.end = span.start + duration_ms / 1000.0
            span.attrs = dict(item.get("attrs", ()))
            self.spans.append(span)
            adopted += 1
        return adopted


class TraceHandle:
    """Context manager opening (or nesting into) a trace.

    Inside the with-block the handle is live; after it exits the captured
    spans are frozen on the handle (``spans`` / ``tree()`` / ``to_dict()``
    / ``render()``).
    """

    def __init__(self, tracer, name, attrs):
        self._tracer = tracer
        self._attrs = attrs
        self._trace = None
        self._root = None
        self._owns = False
        self.name = name
        self.trace_id = None
        self.wall_start = None
        self.duration = 0.0  # seconds
        self.spans = ()  # frozen Span objects after exit

    @property
    def duration_ms(self):
        return self.duration * 1000.0

    def __enter__(self):
        tracer = self._tracer
        trace = tracer._current()
        if trace is None:
            trace = Trace(self.name)
            tracer._activate(trace)
            self._owns = True
        self._trace = trace
        self._root = trace.start_span(self.name, dict(self._attrs))
        self.trace_id = trace.trace_id
        return self

    def __exit__(self, exc_type, exc, tb):
        trace, root = self._trace, self._root
        if exc_type is not None:
            root.attrs.setdefault("error", exc_type.__name__)
        trace.finish(root)
        self.duration = root.end - root.start
        self.wall_start = trace.wall_start + (root.start - trace.perf_start)
        self.spans = tuple(
            trace.spans if self._owns else trace.subtree(root)
        )
        if self._owns:
            self._tracer._deactivate(trace)
        return False

    # -- frozen views ---------------------------------------------------

    def _span_dicts(self):
        base = self._root.start
        ids = {span.span_id for span in self.spans}
        out = []
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            out.append(
                {
                    "id": span.span_id,
                    "parent": (
                        span.parent_id if span.parent_id in ids else None
                    ),
                    "name": span.name,
                    "start_ms": round((span.start - base) * 1000.0, 4),
                    "duration_ms": round((end - span.start) * 1000.0, 4),
                    "attrs": dict(span.attrs),
                }
            )
        return out

    def to_dict(self):
        """JSON-safe trace: flat span list plus the nested tree."""
        spans = self._span_dicts()
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "wall_start": self.wall_start,
            "duration_ms": round(self.duration_ms, 4),
            "spans": spans,
            "tree": _build_tree(spans),
        }

    def tree(self):
        return _build_tree(self._span_dicts())

    def render(self):
        """Indented one-line-per-span rendering (CLI ``--trace``)."""
        lines = []
        for node in _build_tree(self._span_dicts()):
            _render_node(node, 0, lines)
        return lines


def _build_tree(span_dicts):
    nodes = {}
    roots = []
    for item in span_dicts:
        node = {
            "name": item["name"],
            "start_ms": item["start_ms"],
            "duration_ms": item["duration_ms"],
            "attrs": item["attrs"],
            "children": [],
        }
        nodes[item["id"]] = node
        parent = nodes.get(item["parent"])
        if parent is None:
            roots.append(node)
        else:
            parent["children"].append(node)
    return roots


def _render_node(node, depth, lines):
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(node["attrs"].items())
    )
    line = f"{'  ' * depth}{node['name']} {node['duration_ms']:.2f}ms"
    if attrs:
        line += f"  {attrs}"
    lines.append(line)
    for child in node["children"]:
        _render_node(child, depth + 1, lines)


class Tracer:
    """Thread-local trace activation; see the module docstring."""

    def __init__(self):
        self._local = threading.local()
        self._lock = threading.Lock()
        self._active_count = 0
        #: The hot-path guard: solver inner loops check this plain
        #: attribute (one instance ``LOAD_ATTR``, ~10x cheaper than the
        #: thread-local lookup) and skip span construction when no trace
        #: is being recorded *anywhere in the process*.  It is
        #: conservative: while another thread traces, this thread's
        #: guarded code falls through to :meth:`span`, which still
        #: resolves the *thread-local* trace and hands back the no-op
        #: span -- correct output, merely unguarded for that window.
        self.enabled = False

    # -- activation plumbing -------------------------------------------

    def _current(self):
        return getattr(self._local, "trace", None)

    def _activate(self, trace):
        self._local.trace = trace
        with self._lock:
            self._active_count += 1
            self.enabled = True

    def _deactivate(self, trace):
        if getattr(self._local, "trace", None) is trace:
            self._local.trace = None
        with self._lock:
            self._active_count = max(0, self._active_count - 1)
            self.enabled = self._active_count > 0

    # -- public API -----------------------------------------------------

    def trace(self, name, **attrs):
        """Open (or nest into) a trace; returns a :class:`TraceHandle`."""
        return TraceHandle(self, name, attrs)

    def span(self, name, **attrs):
        """A span under the active trace, or the shared no-op span."""
        trace = getattr(self._local, "trace", None)
        if trace is None:
            return _NULL_SPAN
        return trace.start_span(name, attrs)

    def current_span(self):
        trace = self._current()
        if trace is None or not trace.stack:
            return None
        return trace.stack[-1]

    def adopt(self, trace_dict):
        """Re-parent a serialized worker trace under the current span.

        No-op (returns 0) when no trace is active on this thread.
        """
        trace = self._current()
        if trace is None:
            return 0
        return trace.adopt(trace_dict)


#: The process-wide tracer every instrumentation point goes through.
TRACER = Tracer()
