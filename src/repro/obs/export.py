"""Prometheus exposition helpers: scrape-time families and a validator.

:func:`service_metric_families` re-homes the existing per-assignment
counters -- ``Solver.stats_snapshot()`` deltas, ``ArtifactCache.stats()``
and session counters -- into Prometheus families at scrape time.  The
hot paths keep their plain dict/int counters (public keys unchanged);
only the exposition layer changes shape.

:func:`parse_prometheus_text` is a strict-enough parser of text format
0.0.4 used by the tests and the CI ``obs-smoke`` job to validate what
``GET /metrics`` serves: sample syntax, TYPE declarations, histogram
bucket monotonicity, the ``+Inf`` bucket, and ``_count`` consistency.
"""

from __future__ import annotations

import math
import re
import time

#: The bounded route-label set for HTTP metric families.  Everything
#: else (typo'd paths, scanners, probes) collapses into ``other`` at
#: record time so request-path cardinality can never grow the registry.
KNOWN_ROUTES = frozenset(
    {
        "/assignments",
        "/grade",
        "/witness",
        "/stats",
        "/healthz",
        "/metrics",
        "/debug/journal",
    }
)


def bounded_route(path):
    """Collapse an arbitrary request path into the bounded label set.

    The query string is stripped before matching (``/debug/journal?n=5``
    records as ``/debug/journal``); anything outside
    :data:`KNOWN_ROUTES` records as ``other``.
    """
    route = str(path).split("?", 1)[0]
    return route if route in KNOWN_ROUTES else "other"


_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    rf'({_METRIC_NAME})="((?:[^"\\]|\\.)*)"'
)
_VALID_KINDS = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_value(raw):
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)  # raises ValueError on garbage, incl. "NaN" typos


def _unescape(value):
    return (
        value.replace(r"\n", "\n").replace(r"\"", '"').replace("\\\\", "\\")
    )


def parse_prometheus_text(text):
    """Parse (and validate) Prometheus text format 0.0.4.

    Returns ``{family_name: {"kind", "help", "samples"}}`` where samples
    are ``(sample_name, labels_dict, value)`` tuples.  Raises
    :class:`ValueError` on malformed lines, samples without a TYPE
    declaration covering them, non-monotone histogram buckets, a missing
    ``+Inf`` bucket, or ``_count`` disagreeing with the ``+Inf`` bucket.
    """
    families = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3:
                raise ValueError(f"line {lineno}: malformed HELP")
            name = parts[2]
            families.setdefault(
                name, {"kind": None, "help": "", "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _VALID_KINDS:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            name = parts[2]
            if name in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            types[name] = parts[3]
            families.setdefault(
                name, {"kind": None, "help": "", "samples": []}
            )["kind"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        labels = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for lmatch in _LABEL_RE.finditer(raw_labels):
                labels[lmatch.group(1)] = _unescape(lmatch.group(2))
                consumed = lmatch.end()
                if consumed < len(raw_labels) and raw_labels[consumed] == ",":
                    consumed += 1
            if raw_labels[consumed:].strip():
                raise ValueError(
                    f"line {lineno}: malformed labels: {raw_labels!r}"
                )
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value: {match.group('value')!r}"
            )
        family = _family_for_sample(name, types)
        if family is None:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no TYPE declaration"
            )
        families.setdefault(
            family, {"kind": types.get(family), "help": "", "samples": []}
        )["samples"].append((name, labels, value))
    _validate_histograms(families)
    return families


def _family_for_sample(name, types):
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def _validate_histograms(families):
    for name, family in families.items():
        if family["kind"] != "histogram":
            continue
        series = {}  # non-le labels -> list of (le, value)
        sums = {}
        counts = {}
        for sample_name, labels, value in family["samples"]:
            key = tuple(
                sorted((k, v) for k, v in labels.items() if k != "le")
            )
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise ValueError(f"{name}: bucket sample without le")
                series.setdefault(key, []).append(
                    (_parse_value(labels["le"]), value)
                )
            elif sample_name == f"{name}_sum":
                sums[key] = value
            elif sample_name == f"{name}_count":
                counts[key] = value
        if not series:
            raise ValueError(f"{name}: histogram with no buckets")
        for key, buckets in series.items():
            bounds = [b for b, _ in buckets]
            if bounds != sorted(bounds):
                raise ValueError(f"{name}: bucket bounds out of order")
            values = [v for _, v in buckets]
            if any(b > a for a, b in zip(values[1:], values)):
                raise ValueError(f"{name}: bucket counts not cumulative")
            if bounds[-1] != math.inf:
                raise ValueError(f"{name}: missing +Inf bucket")
            if key not in sums:
                raise ValueError(f"{name}: missing _sum sample")
            if counts.get(key) != values[-1]:
                raise ValueError(
                    f"{name}: _count disagrees with +Inf bucket"
                )


# ---------------------------------------------------------------------------
# Scrape-time families for the HTTP service


def _counter_family(name, help, samples):
    return {"name": name, "kind": "counter", "help": help, "samples": samples}


def _gauge_family(name, help, samples):
    return {"name": name, "kind": "gauge", "help": help, "samples": samples}


def service_metric_families(service):
    """Per-assignment solver/cache/session families for ``GET /metrics``.

    The sample values come straight from the existing public stats
    (``AssignmentSession.stats()``); keys are preserved inside the metric
    names (``repro_solver_sat_calls_total`` <- ``sat_calls`` etc.).
    """
    stats = service.stats()
    families = [
        _gauge_family(
            "repro_service_uptime_seconds",
            "Seconds since the service started.",
            [({}, stats["uptime"])],
        ),
        _gauge_family(
            "repro_service_assignments",
            "Registered assignment sessions.",
            [({}, len(stats["assignments"]))],
        ),
    ]

    session_counters = [
        ("submissions", "repro_session_submissions_total",
         "Submissions graded (including cache hits)."),
        ("pipeline_runs", "repro_session_pipeline_runs_total",
         "Full pipeline executions (cache misses)."),
        ("witness_runs", "repro_session_witness_runs_total",
         "Witness generation runs (cache misses)."),
    ]
    cache_counters = [
        ("hits", "repro_cache_hits_total", "Artifact cache hits."),
        ("misses", "repro_cache_misses_total", "Artifact cache misses."),
        ("evictions", "repro_cache_evictions_total",
         "Artifact cache LRU evictions."),
    ]

    assignments = stats["assignments"]
    for key, name, help in session_counters:
        samples = [
            ({"assignment": aid}, session[key])
            for aid, session in assignments.items()
        ]
        if samples:
            families.append(_counter_family(name, help, samples))
    for key, name, help in cache_counters:
        samples = [
            ({"assignment": aid}, session["cache"][key])
            for aid, session in assignments.items()
        ]
        if samples:
            families.append(_counter_family(name, help, samples))
    cache_sizes = [
        ({"assignment": aid}, session["cache"]["size"])
        for aid, session in assignments.items()
    ]
    if cache_sizes:
        families.append(
            _gauge_family(
                "repro_cache_entries",
                "Artifact cache resident entries.",
                cache_sizes,
            )
        )

    # Solver counters: one family per stats_snapshot() key, the key name
    # preserved verbatim inside the metric name.
    solver_keys = sorted(
        {
            key
            for session in assignments.values()
            for key, value in session["solver"].items()
            if isinstance(value, int)
        }
    )
    for key in solver_keys:
        samples = [
            ({"assignment": aid}, session["solver"].get(key, 0))
            for aid, session in assignments.items()
        ]
        families.append(
            _counter_family(
                f"repro_solver_{key}_total",
                f"Solver {key} since session creation.",
                samples,
            )
        )
    hit_rates = [
        ({"assignment": aid}, session["solver"].get("cache_hit_rate", 0.0))
        for aid, session in assignments.items()
    ]
    if hit_rates:
        families.append(
            _gauge_family(
                "repro_solver_cache_hit_rate",
                "Solver SAT-cache hit rate since session creation.",
                hit_rates,
            )
        )
    return families


def uptime_since(started_at):
    return time.time() - started_at
