"""Quickstart: staged hints for the paper's running example (Examples 1-2).

Run with:  python examples/quickstart.py
"""

from repro import Catalog, QrHint, appear_equivalent

# Example 1's schema: beer drinkers and bars (keys underlined in the paper).
catalog = Catalog.from_spec(
    {
        "Likes": [("drinker", "STRING"), ("beer", "STRING")],
        "Frequents": [("drinker", "STRING"), ("bar", "STRING")],
        "Serves": [("bar", "STRING"), ("beer", "STRING"), ("price", "FLOAT")],
    }
)

# The reference solution: for each beer Amy likes and each bar she
# frequents that serves it, the bar's price rank among all bars serving it.
target = """
    SELECT L.beer, S1.bar, COUNT(*)
    FROM Likes L, Frequents F, Serves S1, Serves S2
    WHERE L.drinker = F.drinker AND F.bar = S1.bar AND L.beer = S1.beer
      AND S1.beer = S2.beer AND S1.price <= S2.price
    GROUP BY F.drinker, L.beer, S1.bar
    HAVING F.drinker = 'Amy'
"""

# A wrong student query: missing the Frequents table, and ranking in the
# wrong direction (> instead of >= under the s1/s2 role swap).
working = """
    SELECT s2.beer, s2.bar, COUNT(*)
    FROM Likes, Serves s1, Serves s2
    WHERE drinker = 'Amy' AND Likes.beer = s1.beer
      AND Likes.beer = s2.beer AND s1.price > s2.price
    GROUP BY s2.beer, s2.bar
"""


def main():
    print("Target query:")
    print("   ", " ".join(target.split()))
    print("Working (wrong) query:")
    print("   ", " ".join(working.split()))
    print()

    report = QrHint(catalog, target, working).run()

    print("Stage-by-stage hints:")
    for stage in report.stages:
        status = "viable" if stage.passed else "needs repair"
        print(f"  {stage.stage:9s} [{status}]")
        for hint in stage.hints:
            print(f"      hint: {hint.message}")
            if hint.fix:
                print(f"      (internal fix, not shown to students: {hint.fix})")

    print()
    print("Query after applying Qr-Hint's own repairs:")
    print("   ", report.final_query.to_sql())

    equivalent = appear_equivalent(
        report.final_query, report.target_query, catalog, trials=60
    )
    print(f"Differentially equivalent to the target: {equivalent}")
    print(f"Total time: {report.elapsed:.2f}s")


if __name__ == "__main__":
    main()
