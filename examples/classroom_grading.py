"""Classroom batch grading: hint an entire submission set.

Replays the synthesized ``Students`` dataset (306 wrong queries whose error
taxonomy matches Table 4 of the paper) through Qr-Hint, the way teaching
staff would triage a homework submission pile: per-question statistics of
which clause needed repair, sample hints, and throughput.

Run with:  python examples/classroom_grading.py [--limit N] [--batch]

``--batch`` routes the pile through the service layer instead of the
one-shot loop: one :class:`AssignmentSession` per question (target parsed
once, persistent solver, artifact cache), which is how the HTTP service
and ``repro grade-batch`` grade at scale.
"""

import argparse
import time
from collections import Counter, defaultdict

from repro import QrHint
from repro.engine import appear_equivalent
from repro.service import AssignmentSession
from repro.workloads import beers


def _iter_stage_outcomes(dataset, catalog, batch=False):
    """Yield (entry, stage, passed, messages, report) per pipeline stage."""
    if batch:
        sessions = {}
        for entry in dataset:
            key = entry.target_sql
            session = sessions.get(key)
            if session is None:
                session = sessions[key] = AssignmentSession(
                    catalog, entry.target_sql
                )
            result = session.grade(entry.wrong_sql)
            for stage, passed, hints in result.stage_hints:
                yield entry, stage, passed, [h.message for h in hints], None
    else:
        for entry in dataset:
            report = QrHint(catalog, entry.target_sql, entry.wrong_sql).run()
            for stage in report.stages:
                yield (entry, stage.stage, stage.passed,
                       [h.message for h in stage.hints], report)


def main(limit=None, verify=False, batch=False):
    catalog = beers.catalog()
    dataset = beers.students_dataset()
    if limit:
        dataset = dataset[:limit]

    stage_hits = Counter()
    per_question = defaultdict(Counter)
    sample_hints = {}
    started = time.perf_counter()

    for entry, stage, passed, messages, report in _iter_stage_outcomes(
        dataset, catalog, batch=batch
    ):
        if passed:
            continue
        stage_hits[stage] += 1
        per_question[entry.question][stage] += 1
        sample_hints.setdefault(
            (entry.question, stage), (entry.wrong_sql, messages)
        )
        if verify and report is not None:
            assert appear_equivalent(
                report.final_query, report.target_query, catalog, trials=20
            ), entry.wrong_sql

    elapsed = time.perf_counter() - started
    print(f"Processed {len(dataset)} wrong queries in {elapsed:.1f}s "
          f"({elapsed / len(dataset) * 1000:.0f} ms/query)\n")

    print("Hints issued per stage:")
    for stage, count in stage_hits.most_common():
        print(f"  {stage:9s} {count}")

    print("\nPer-question breakdown:")
    for question in sorted(per_question):
        text, _ = beers.QUESTIONS[question]
        print(f"  ({question}) {text[:64]}...")
        for stage, count in per_question[question].most_common():
            print(f"      {stage:9s} {count}")

    print("\nSample hints (one per question/stage):")
    for (question, stage), (sql, messages) in sorted(sample_hints.items())[:8]:
        print(f"  [{question} / {stage}] {' '.join(sql.split())[:76]}")
        for message in messages[:2]:
            print(f"      -> {message}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--limit", type=int, default=None,
                        help="only grade the first N submissions")
    parser.add_argument("--verify", action="store_true",
                        help="differentially verify every repaired query "
                             "(one-shot mode only)")
    parser.add_argument("--batch", action="store_true",
                        help="grade through the service layer (cached "
                             "per-question sessions)")
    args = parser.parse_args()
    main(args.limit, args.verify, args.batch)
