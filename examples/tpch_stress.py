"""TPC-H stress test: WHERE-repair quality and cost under injected errors.

Mirrors the paper's Section 9 TPCH experiments interactively: inject
errors into TPC-H WHERE predicates, repair with both DeriveFixes and
DeriveFixesOPT, and compare against the ground truth known by construction.

Run with:  python examples/tpch_stress.py [--errors K] [--seed S]
"""

import argparse
import time

from repro.core.where_repair import repair_where, verify_repair
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors


def stress_conjunctive(num_errors, seed):
    print(f"Conjunctive TPC-H queries, {num_errors} injected error(s):")
    print(f"{'query':6s} {'atoms':5s} {'gt cost':8s} {'cost':8s} "
          f"{'cost(OPT)':9s} {'time':>7s} {'time(OPT)':>9s}")
    for query in tpch.CONJUNCTIVE_QUERIES:
        predicate = query.resolve().where
        injected = inject_errors(predicate, num_errors, seed=seed)
        row = [query.name, str(query.num_atoms),
               f"{injected.ground_truth_cost():.3f}"]
        times = []
        for optimized in (False, True):
            solver = Solver()
            started = time.perf_counter()
            result = repair_where(
                injected.wrong, injected.correct, max_sites=2,
                optimized=optimized, solver=solver,
            )
            times.append(time.perf_counter() - started)
            assert verify_repair(
                injected.wrong, injected.correct, result.repair, solver
            )
            row.append(f"{result.cost:.3f}")
        row.extend(f"{t:.2f}s" for t in times)
        print(f"{row[0]:6s} {row[1]:5s} {row[2]:8s} {row[3]:8s} "
              f"{row[4]:9s} {row[5]:>7s} {row[6]:>9s}")


def stress_nested(seed):
    print("\nNested AND/OR (TPC-H Q7), 1-5 injected errors:")
    predicate = tpch.Q7_NESTED.resolve().where
    for num_errors in range(1, 6):
        injected = inject_errors(
            predicate, num_errors, seed=seed + num_errors,
            allow_operator_swap=True,
        )
        solver = Solver()
        started = time.perf_counter()
        result = repair_where(
            injected.wrong, injected.correct, max_sites=2, optimized=True,
            solver=solver,
        )
        elapsed = time.perf_counter() - started
        sites = result.repair.sites if result.found else []
        print(f"  {num_errors} error(s): cost={result.cost:.3f} "
              f"(ground truth {injected.ground_truth_cost():.3f}), "
              f"{len(sites)} repair site(s), {elapsed:.2f}s, "
              f"{len(result.trace)} viable repairs seen")
        for entry in result.trace[:3]:
            print(f"      t={entry.elapsed:.2f}s cost={entry.cost:.3f} "
                  f"sites={list(entry.sites)}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--errors", type=int, default=2)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()
    stress_conjunctive(args.errors, args.seed)
    stress_nested(args.seed)
