"""Interactive SQL tutor: the office-hours loop Qr-Hint was built for.

Simulates a tutoring session on the DBLP user-study questions: the student
"submits" a wrong query, the tutor first shows a *counterexample witness*
(a tiny concrete database on which the wrong and reference queries
visibly disagree -- see docs/witness.md), then Qr-Hint produces
stage-by-stage hints (repair sites only -- fixes withheld, exactly as in
the paper's user study), the student "applies" each fix, and the session
ends once the query is provably equivalent to the reference solution.

Run with:  python examples/interactive_tutor.py [--question Q4]
"""

import argparse

from repro import QrHint, Solver, generate_witness
from repro.engine import appear_equivalent
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import format_witness_lines
from repro.workloads import dblp


def tutor_session(question):
    catalog = dblp.catalog()
    print("=" * 72)
    print(f"{question.qid}: {question.statement}")
    print("=" * 72)
    print("\nStudent submits:")
    print("   ", " ".join(question.wrong_sql.split()))

    report = QrHint(catalog, question.correct_sql, question.wrong_sql).run()

    witness = generate_witness(
        catalog,
        parse_query_extended(question.correct_sql, catalog),
        parse_query_extended(question.wrong_sql, catalog),
        solver=Solver(),
    )
    if witness is not None:
        print("\nTutor shows why the query is wrong:")
        for line in format_witness_lines(witness):
            print("  " + line)

    print("\nTutor (Qr-Hint) responds, stage by stage:")
    step = 0
    for stage in report.stages:
        if stage.passed:
            print(f"  {stage.stage:9s} looks viable -- moving on.")
            continue
        for hint in stage.hints:
            step += 1
            print(f"  step {step}: {hint.message}")
        print(f"            (student edits {stage.stage}; query now: "
              f"{' '.join(stage.query_after.to_sql().split())[:90]}...)")

    print("\nAfter all fixes:")
    print("   ", report.final_query.to_sql())
    ok = appear_equivalent(
        report.final_query, report.target_query, catalog, trials=40
    )
    print(f"\nEquivalent to the reference solution: {ok}")
    print(f"Hints needed: {len(report.hints)} "
          f"(paper planted {question.num_errors} error(s) in "
          f"{'/'.join(question.error_clauses)})")


if __name__ == "__main__":
    parser = argparse.ArgumentParser()
    parser.add_argument("--question", default=None,
                        choices=[q.qid for q in dblp.QUESTIONS])
    args = parser.parse_args()
    questions = dblp.QUESTIONS
    if args.question:
        questions = [q for q in questions if q.qid == args.question]
    for question in questions:
        tutor_session(question)
        print()
