"""Example 6 / Example 8 micro-benchmark: the paper's running example.

Verifies the three repair costs of Example 6 (0.75 / ~1.08 / ~1.17) and
that DeriveFixesOPT recovers the optimal atomic fixes of Example 8, while
timing both fix-derivation variants on the running example.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.cost import Repair, repair_cost
from repro.core.derive_fixes import derive_fixes
from repro.core.derive_opt import min_fix_mult
from repro.core.where_repair import repair_where
from repro.logic.formulas import Comparison, disj
from repro.logic.paths import replace_at
from repro.logic.terms import const, intvar
from repro.solver import Solver

A, B, C, D, E, F = (intvar(x) for x in "ABCDEF")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


def predicates():
    p_star = (cmp("=", A, C) & (cmp("<", E, const(5)) | cmp(">", D, const(10)) | cmp("<", D, const(7)))) | (
        cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
    )
    p = (cmp("=", A, C) & (cmp("<>", D, E) | cmp(">", D, F))) | (
        cmp("=", A, C)
        & (cmp(">", D, const(11)) | cmp("<", D, const(7)) | cmp("<=", E, const(5)))
    )
    return p, p_star


SITES = [(0, 0), (1, 1, 0), (1, 1, 2)]  # x4, x10, x12


def test_example6_costs(benchmark, save_result):
    def compute():
        p, p_star = predicates()
        three_site = Repair.of(
            {
                (0, 0): cmp("=", A, B),
                (1, 1, 0): cmp(">", D, const(10)),
                (1, 1, 2): cmp("<", E, const(5)),
            }
        )
        two_site = Repair.of(
            {
                (0, 1): disj(
                    cmp("<", E, const(5)),
                    cmp(">", D, const(10)),
                    cmp("<", D, const(7)),
                ),
                (1,): cmp("=", A, B)
                & (cmp("<>", D, E) | cmp(">", D, F)),
            }
        )
        trivial = Repair.of({(): p_star})
        return {
            "three_site": repair_cost(three_site, p, p_star),
            "two_site": repair_cost(two_site, p, p_star),
            "trivial": repair_cost(trivial, p, p_star),
        }

    costs = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Example 6: repair costs (w = 1/6)",
        ["repair", "cost", "paper"],
        [
            ["3 sites (x4,x10,x12)", f"{costs['three_site']:.3f}", "0.75"],
            ["2 sites (x5,x3)", f"{costs['two_site']:.3f}", "~1.08"],
            ["1 site (root)", f"{costs['trivial']:.3f}", "~1.17"],
        ],
    )
    save_result("example6_costs", costs)
    assert costs["three_site"] == pytest.approx(0.75)
    assert costs["two_site"] == pytest.approx(1.0833, abs=1e-3)
    assert costs["trivial"] == pytest.approx(7 / 6, abs=1e-3)


def test_example8_derive_fixes(benchmark):
    p, p_star = predicates()
    solver = Solver()

    def run():
        return derive_fixes(p, SITES, p_star, solver)

    fixes = benchmark(run)
    assert solver.is_equiv(replace_at(p, fixes), p_star)


def test_example8_derive_fixes_opt(benchmark):
    p, p_star = predicates()
    solver = Solver()

    def run():
        return min_fix_mult(p, SITES, p_star, p_star, solver)

    fixes = benchmark(run)
    assert sorted(str(f) for f in fixes.values()) == ["A = B", "D > 10", "E < 5"]


def test_example5_full_search(benchmark):
    p, p_star = predicates()

    def run():
        return repair_where(p, p_star, max_sites=3, optimized=True, solver=Solver())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.found
    assert result.cost <= 0.75 + 1e-9
