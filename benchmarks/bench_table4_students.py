"""Table 4: per-question error statistics of the Students dataset.

The synthesized dataset must reproduce the published marginals: 22/123/123
supported wrong queries for questions (a)/(b)/(c), 38 for (d), with the
published per-clause counts.
"""

from collections import Counter

from benchmarks.conftest import print_table
from repro.workloads import beers

PAPER_COUNTS = {
    ("a", "FROM"): 8,
    ("a", "WHERE"): 9,
    ("a", "SELECT"): 5,
    ("b", "FROM"): 10,
    ("b", "WHERE"): 96,
    ("b", "SELECT"): 17,
    ("c", "FROM"): 11,
    ("c", "WHERE"): 105,
    ("c", "SELECT"): 6,
    ("c", "GROUP BY"): 1,
}


def build_marginals():
    data = beers.students_dataset()
    question_of = lambda e: "d" if e.question.startswith("d") else e.question
    by_cell = Counter((question_of(e), e.clause) for e in data)
    by_question = Counter(question_of(e) for e in data)
    return by_cell, by_question


def test_table4_marginals(benchmark, save_result):
    by_cell, by_question = benchmark.pedantic(
        build_marginals, rounds=1, iterations=1
    )
    rows = []
    for (question, clause), count in sorted(by_cell.items()):
        paper = PAPER_COUNTS.get((question, clause), "-")
        rows.append([question, clause, count, paper])
    print_table(
        "Table 4: Students error statistics (supported queries)",
        ["question", "clause", "generated", "paper"],
        rows,
    )
    save_result(
        "table4_students",
        {"cells": {f"{q}/{c}": n for (q, c), n in by_cell.items()},
         "questions": dict(by_question)},
    )

    assert by_question == Counter({"a": 22, "b": 123, "c": 123, "d": 38})
    for cell, expected in PAPER_COUNTS.items():
        assert by_cell[cell] == expected, cell
    assert sum(by_question.values()) == 306
