"""Observability smoke + overhead gate: tracing must be near-free off.

Two halves, both CI-gated (the ``obs-smoke`` job)::

    PYTHONPATH=src python benchmarks/bench_obs.py

1. **Disabled-tracer overhead** on the ``sat_conjunctive`` solver kernel
   (the hot loop every Qr-Hint figure benchmark sits on).  Kernel A runs
   each SAT solve behind the production hot-path guard
   (``if not TRACER.enabled``, the pattern ``repro.solver.smt`` uses);
   kernel B runs the pristine loop.  Rounds are interleaved A/B/A/B so
   thermal drift and scheduler noise hit both sides equally, best-of
   throughput is compared, and the run fails when the guard costs more
   than ``MAX_OVERHEAD`` (2%).

2. **Enabled-journal overhead** on the same kernel: the flight recorder
   is *always on* in production, so its cost on the hot loop is gated at
   the same < 2% bar.  Kernel A runs with ``JOURNAL.enabled`` (the
   production default: sampled chrono events, restart/DB-reduction
   events), kernel B with the journal off; interleaved rounds, best-of.

3. **Live-server scrape**: boots the HTTP service on an ephemeral port,
   grades a wrong query with ``"trace": true``, asserts the returned span
   tree covers every pipeline stage plus a solver solve, then fetches
   ``GET /metrics`` and validates the payload with the strict
   :func:`repro.obs.parse_prometheus_text` parser (TYPE coverage,
   histogram bucket monotonicity, ``+Inf``/``_count`` consistency).

Results land in ``BENCH_obs.json`` at the repository root (or in
``$BENCH_OUT_DIR`` when set -- how ``repro perfdiff`` re-runs this
without touching the committed baseline).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time
import urllib.request

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from bench_solver_micro import sat_conjunctive_kernel, _conjunctive_clauses, NUM_ATOMS, CHAIN
from repro.obs import JOURNAL, TRACER, parse_prometheus_text
from repro.service import make_server
from repro.solver.sat import SatSolver

OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR")
    or pathlib.Path(__file__).parent.parent
) / "BENCH_obs.json"

#: CI gate: the disabled tracer may cost at most this fraction of the
#: pristine kernel's throughput.  The enabled journal is held to the
#: same bar.
MAX_OVERHEAD = 0.02

ROUNDS = 9  # interleaved A/B timing rounds per side
ROUND_SECONDS = 0.35


def sat_conjunctive_guarded():
    """The sat_conjunctive loop with the production hot-path guard.

    Mirrors ``Solver._solve``: every SAT solve first checks
    ``TRACER.enabled`` and only enters a span when a trace is active.
    With no trace open (the default) the guard is one attribute read and
    one branch per solve -- the cost this benchmark bounds.
    """
    solver = SatSolver()
    solver.ensure_vars(NUM_ATOMS + CHAIN)
    for clause in _conjunctive_clauses():
        solver.add_clause(clause)
    calls = 0
    while True:
        calls += 1
        if not TRACER.enabled:
            model = solver.solve()
        else:  # pragma: no cover - bench runs with tracing off
            with TRACER.span("solver.solve"):
                model = solver.solve()
        if model is None:
            break
        solver.add_clause(
            [-v if model[v] else v for v in range(1, NUM_ATOMS + 1)]
        )
    expected = 2**NUM_ATOMS + 1
    assert calls == expected, f"enumerated {calls}, expected {expected}"
    return calls


def _round_ops(fn):
    """Ops/sec of ``fn`` over one ~ROUND_SECONDS timing round."""
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= ROUND_SECONDS:
            return reps / elapsed


def measure_overhead():
    """Interleaved best-of throughput of guarded vs pristine kernels."""
    assert not TRACER.enabled, "tracer must be disabled for the A/B run"
    guarded = sat_conjunctive_guarded
    pristine = lambda: sat_conjunctive_kernel(SatSolver)  # noqa: E731
    guarded()  # warm-up both sides before timing
    pristine()
    ops_a, ops_b = [], []
    for _ in range(ROUNDS):
        ops_a.append(_round_ops(guarded))
        ops_b.append(_round_ops(pristine))
    best_a, best_b = max(ops_a), max(ops_b)
    overhead = 1.0 - best_a / best_b
    return {
        "guarded_ops_per_sec": round(best_a, 3),
        "pristine_ops_per_sec": round(best_b, 3),
        "overhead": round(overhead, 5),
        "rounds": ROUNDS,
    }


def measure_journal_overhead():
    """Interleaved best-of throughput: journal enabled vs disabled.

    Both sides run the pristine kernel through the *instrumented* SAT
    core (restart/DB-reduction events, chrono sampling every
    ``CHRONO_SAMPLE`` backtracks); the only difference is the
    ``JOURNAL.enabled`` flag -- so this measures what always-on flight
    recording costs production, not what the instrumentation costs
    relative to an uninstrumented build.
    """
    assert not TRACER.enabled, "tracer must be disabled for the A/B run"
    kernel = lambda: sat_conjunctive_kernel(SatSolver)  # noqa: E731
    saved = JOURNAL.enabled
    try:
        kernel()  # warm-up
        ops_on, ops_off = [], []
        for _ in range(ROUNDS):
            JOURNAL.enabled = True
            ops_on.append(_round_ops(kernel))
            JOURNAL.enabled = False
            ops_off.append(_round_ops(kernel))
        best_on, best_off = max(ops_on), max(ops_off)
        overhead = 1.0 - best_on / best_off
        return {
            "enabled_ops_per_sec": round(best_on, 3),
            "disabled_ops_per_sec": round(best_off, 3),
            "overhead": round(overhead, 5),
            "rounds": ROUNDS,
            "events_buffered": len(JOURNAL),
        }
    finally:
        JOURNAL.enabled = saved
        JOURNAL.clear()


# ----------------------------------------------------------------------
# Live-server scrape smoke
# ----------------------------------------------------------------------

SCHEMA = {"Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]]}
# Aggregate target: SPJ queries skip the GROUP BY/HAVING stages, and the
# smoke must see a span for every one of the five pipeline stages.
TARGET = ("SELECT bar, COUNT(beer) FROM Serves WHERE price > 2 "
          "GROUP BY bar HAVING COUNT(beer) > 1")
WRONG = ("SELECT bar, COUNT(beer) FROM Serves WHERE price >= 2 "
         "GROUP BY bar HAVING COUNT(beer) > 2")

#: Families GET /metrics must serve after one traced grade.
REQUIRED_FAMILIES = (
    "repro_http_request_seconds",
    "repro_http_requests_total",
    "repro_grades_total",
    "repro_grade_seconds",
    "repro_stage_seconds",
    "repro_cache_hits_total",
    "repro_cache_misses_total",
    "repro_solver_sat_calls_total",
    "repro_service_uptime_seconds",
)

#: Spans one traced grade must cover (every pipeline stage + a solve).
REQUIRED_SPANS = (
    "grade", "session.grade", "cache.get", "pipeline.run",
    "stage.FROM", "stage.WHERE", "stage.GROUP BY", "stage.HAVING",
    "stage.SELECT", "solver.solve",
)


def _post(base, path, payload):
    request = urllib.request.Request(
        base + path, json.dumps(payload).encode(),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as resp:
        return json.loads(resp.read())


def scrape_smoke():
    """Boot the service, grade with tracing, validate /metrics."""
    server = make_server(port=0)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        created = _post(base, "/assignments",
                        {"schema": SCHEMA, "target_sql": TARGET})
        body = _post(base, "/grade", {
            "assignment_id": created["assignment_id"],
            "sql": WRONG,
            "trace": True,
        })
        assert not body["all_passed"]
        names = [span["name"] for span in body["trace"]["spans"]]
        for span in REQUIRED_SPANS:
            assert span in names, f"traced grade missing span {span!r}"
        with urllib.request.urlopen(base + "/metrics") as resp:
            content_type = resp.headers.get("Content-Type")
            text = resp.read().decode()
        assert content_type.startswith("text/plain"), content_type
        families = parse_prometheus_text(text)  # raises on malformed text
        for family in REQUIRED_FAMILIES:
            assert family in families, f"/metrics missing family {family}"
        return {
            "families": len(families),
            "trace_spans": len(names),
            "bytes": len(text),
        }
    finally:
        server.shutdown()
        server.server_close()


def main():
    overhead = measure_overhead()
    print(
        f"  guarded  {overhead['guarded_ops_per_sec']:.1f} ops/s\n"
        f"  pristine {overhead['pristine_ops_per_sec']:.1f} ops/s\n"
        f"  overhead {overhead['overhead'] * 100:.2f}% "
        f"(gate: < {MAX_OVERHEAD * 100:.0f}%)"
    )
    assert overhead["overhead"] < MAX_OVERHEAD, (
        f"disabled-tracer overhead {overhead['overhead'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD * 100:.0f}% bar"
    )

    journal_overhead = measure_journal_overhead()
    print(
        f"  journal on  {journal_overhead['enabled_ops_per_sec']:.1f} ops/s\n"
        f"  journal off {journal_overhead['disabled_ops_per_sec']:.1f} ops/s\n"
        f"  overhead {journal_overhead['overhead'] * 100:.2f}% "
        f"(gate: < {MAX_OVERHEAD * 100:.0f}%)"
    )
    assert journal_overhead["overhead"] < MAX_OVERHEAD, (
        f"enabled-journal overhead "
        f"{journal_overhead['overhead'] * 100:.2f}% "
        f"exceeds the {MAX_OVERHEAD * 100:.0f}% bar"
    )

    smoke = scrape_smoke()
    print(
        f"  /metrics: {smoke['families']} families, "
        f"{smoke['bytes']} bytes; traced grade: "
        f"{smoke['trace_spans']} spans"
    )

    payload = {
        "python": sys.version.split()[0],
        "overhead": overhead,
        "journal_overhead": journal_overhead,
        "scrape": smoke,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
