"""Ablations of Qr-Hint's design choices (DESIGN.md extensions).

Three design knobs the paper motivates but does not sweep:

* **site cap** -- the maximum number of repair sites explored (the paper
  fixes 2); sweeping 1/2/3 exposes the optimality/latency trade-off;
* **site-count weight w** -- Definition 3's per-site penalty (paper: 1/6);
  a large w collapses repairs into fewer, bigger sites;
* **early stopping** -- Algorithm 1's lower-bound pruning; disabled by
  exploring with an (unreachably large) incumbent cost.
"""

from fractions import Fraction

import pytest

from benchmarks.conftest import print_table
from repro.core.where_repair import repair_where, verify_repair
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors


def _q7_injected(num_errors=3):
    predicate = tpch.Q7_NESTED.resolve().where
    return inject_errors(
        predicate, num_errors, seed=num_errors, allow_operator_swap=True
    )


def test_ablation_site_cap(benchmark, save_result):
    """Cost and time as the repair-site cap grows from 1 to 3."""

    def sweep():
        injected = _q7_injected(3)
        rows = []
        for cap in (1, 2, 3):
            solver = Solver()
            result = repair_where(
                injected.wrong,
                injected.correct,
                max_sites=cap,
                optimized=True,
                solver=solver,
            )
            assert verify_repair(
                injected.wrong, injected.correct, result.repair, solver
            )
            rows.append(
                {
                    "cap": cap,
                    "cost": result.cost,
                    "sites": len(result.repair),
                    "elapsed": result.elapsed,
                    "considered": result.sites_considered,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: repair-site cap (Q7, 3 injected errors)",
        ["cap", "cost", "sites used", "time", "site sets considered"],
        [
            [r["cap"], f"{r['cost']:.3f}", r["sites"], f"{r['elapsed']:.2f}s",
             r["considered"]]
            for r in rows
        ],
    )
    save_result("ablation_site_cap", rows)
    # More sites never hurt cost; caps 2 and 3 both beat the 1-site repair.
    assert rows[1]["cost"] <= rows[0]["cost"] + 1e-9
    assert rows[2]["cost"] <= rows[1]["cost"] + 1e-9


def test_ablation_site_weight(benchmark, save_result):
    """Definition 3's w: higher penalties push toward fewer sites."""

    def sweep():
        injected = _q7_injected(2)
        rows = []
        for weight in (Fraction(1, 100), Fraction(1, 6), Fraction(2, 1)):
            solver = Solver()
            result = repair_where(
                injected.wrong,
                injected.correct,
                max_sites=2,
                optimized=True,
                solver=solver,
                weight=weight,
            )
            rows.append(
                {
                    "weight": str(weight),
                    "sites": len(result.repair),
                    "cost": result.cost,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: site-count weight w (Q7, 2 injected errors)",
        ["w", "sites chosen", "cost (w-dependent)"],
        [[r["weight"], r["sites"], f"{r['cost']:.3f}"] for r in rows],
    )
    save_result("ablation_site_weight", rows)
    # A prohibitive per-site penalty forces a single-site repair.
    assert rows[-1]["sites"] == 1
    # The paper's default finds the true two-site repair.
    assert rows[1]["sites"] == 2


def test_ablation_early_stopping(benchmark, save_result):
    """Algorithm 1's pruning: count the site sets actually explored."""

    def sweep():
        injected = _q7_injected(5)  # heavy pruning case (Figure 3's insight)
        solver = Solver()
        pruned = repair_where(
            injected.wrong, injected.correct, max_sites=2, solver=solver
        )
        light = _q7_injected(1)
        solver2 = Solver()
        unpruned = repair_where(
            light.wrong, light.correct, max_sites=2, solver=solver2
        )
        return {
            "five_errors": {
                "considered": pruned.sites_considered,
                "viable": len(pruned.trace),
                "elapsed": pruned.elapsed,
            },
            "one_error": {
                "considered": unpruned.sites_considered,
                "viable": len(unpruned.trace),
                "elapsed": unpruned.elapsed,
            },
        }

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: CreateBounds pruning effectiveness",
        ["scenario", "site sets considered", "viable", "time"],
        [
            ["5 injected errors", outcome["five_errors"]["considered"],
             outcome["five_errors"]["viable"],
             f"{outcome['five_errors']['elapsed']:.2f}s"],
            ["1 injected error", outcome["one_error"]["considered"],
             outcome["one_error"]["viable"],
             f"{outcome['one_error']['elapsed']:.2f}s"],
        ],
    )
    save_result("ablation_early_stopping", outcome)
    # With many errors almost nothing is viable -> the search ends quickly.
    assert outcome["five_errors"]["viable"] <= 2
    assert outcome["five_errors"]["elapsed"] < outcome["one_error"]["elapsed"]
