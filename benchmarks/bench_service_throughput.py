"""Throughput benchmark: batch grading vs. the one-shot CLI path.

Simulates the paper's classroom scenario: a duplicate-heavy pile of
userstudy-style submissions (one shared target, formatting/case/alias
variants of the same wrong answers) graded two ways:

* **sequential** -- the historic one-shot path, exactly what looping
  ``repro hint`` per submission pays: fresh solver, target re-parsed,
  full pipeline for every submission;
* **batch** -- ``repro.service.grade_batch``: parse the target once,
  dedupe submissions by canonical form, grade only the unique forms
  (sharded across workers), serve the rest from the artifact cache.

Asserts the two paths produce byte-identical hint output and that batch
achieves >= 5x throughput, then writes ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--full]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.core.pipeline import QrHint
from repro.service import grade_batch
from repro.service.session import format_report
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended
from repro.workloads import dblp, userstudy

OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR")
    or pathlib.Path(__file__).parent.parent
) / "BENCH_service.json"
MIN_SPEEDUP = 5.0


def one_shot(catalog, target_sql, submission_sql):
    """The per-request work of the one-shot CLI path."""
    target = parse_query_extended(target_sql, catalog)
    working = parse_query_extended(submission_sql, catalog)
    report = QrHint(catalog, target, working, solver=Solver()).run()
    return format_report(report)


def run_scenario(qid, count, seed, processes=None):
    question = next(q for q in dblp.QUESTIONS if q.qid == qid)
    catalog = dblp.catalog()
    pool = userstudy.submission_pool(question, count=count, seed=seed)

    started = time.perf_counter()
    sequential = [one_shot(catalog, question.correct_sql, sql) for sql in pool]
    sequential_seconds = time.perf_counter() - started

    batch = grade_batch(
        catalog, question.correct_sql, pool, processes=processes
    )
    batch_texts = [result.text() for result in batch.results]

    identical = batch_texts == sequential
    speedup = sequential_seconds / batch.elapsed if batch.elapsed else 0.0
    return {
        "question": qid,
        "submissions": count,
        "unique": batch.unique,
        "processes": batch.processes,
        "cache_hit_rate": batch.cache_hit_rate,
        "sequential_seconds": round(sequential_seconds, 4),
        "batch_seconds": round(batch.elapsed, 4),
        "sequential_qps": round(count / sequential_seconds, 2),
        "batch_qps": round(batch.throughput, 2),
        "speedup": round(speedup, 2),
        "byte_identical": identical,
        "solver": batch.solver_stats,
    }


def run_overload(levels=(1, 4, 16), requests=40, max_inflight=2):
    """Latency and shed rate against a live admission-controlled server.

    Starts the HTTP service with ``max_inflight`` slots (no queue) and
    offers ``requests`` unique grade requests per concurrency level --
    unique WHERE constants, so every admitted request does real pipeline
    work instead of hitting the artifact cache.  Reports p50/p99 latency
    of the *served* requests and the shed rate per offered concurrency:
    with bounded admission, saturating load must show up as 503s, not as
    unbounded latency.
    """
    import statistics
    import threading
    import urllib.error
    import urllib.request
    from concurrent.futures import ThreadPoolExecutor

    from repro.service import make_server
    from repro.service.server import AdmissionController

    server = make_server(
        port=0,
        admission=AdmissionController(max_inflight=max_inflight, max_queue=0),
    )
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def post(path, payload):
        request = urllib.request.Request(
            base + path,
            json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status
        except urllib.error.HTTPError as error:
            error.read()
            return error.code

    out = {}
    try:
        status = post("/assignments", {
            "assignment_id": "overload",
            "schema": {"Serves": [["bar", "STRING"], ["beer", "STRING"],
                                  ["price", "FLOAT"]]},
            "target_sql": "SELECT beer FROM Serves WHERE price > 2",
        })
        assert status == 201, status

        def one(k):
            started = time.perf_counter()
            code = post("/grade", {
                "assignment_id": "overload",
                "sql": f"SELECT beer FROM Serves WHERE price >= {k}",
            })
            return code, (time.perf_counter() - started) * 1000.0

        for offered in levels:
            with ThreadPoolExecutor(max_workers=offered) as pool:
                outcomes = list(pool.map(
                    one, range(offered * 10_000, offered * 10_000 + requests)
                ))
            served = sorted(ms for code, ms in outcomes if code == 200)
            shed = sum(1 for code, _ in outcomes if code == 503)
            level = {
                "offered": offered,
                "requests": requests,
                "served": len(served),
                "shed": shed,
                "shed_rate": round(shed / requests, 4),
                "p50_ms": round(statistics.median(served), 2) if served
                else None,
                "p99_ms": round(
                    served[min(len(served) - 1, int(0.99 * len(served)))], 2
                ) if served else None,
            }
            out[f"c{offered}"] = level
            print(f"overload c{offered}: served {level['served']}/{requests}"
                  f" shed {shed} ({level['shed_rate']:.0%}),"
                  f" p50 {level['p50_ms']}ms p99 {level['p99_ms']}ms")
    finally:
        server.shutdown()
        server.server_close()
    return out


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--count", type=int, default=200,
                        help="submissions in the pile (default 200)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument(
        "--full", action="store_true",
        help="also run the expensive Q1 scenario (minutes, not seconds)",
    )
    args = parser.parse_args(argv)

    scenarios = {}
    for qid in ("Q4", "Q2"):
        result = run_scenario(qid, args.count, args.seed, args.processes)
        scenarios[qid] = result
        print(f"{qid}: {result['submissions']} submissions "
              f"({result['unique']} unique), sequential "
              f"{result['sequential_seconds']}s vs batch "
              f"{result['batch_seconds']}s -> {result['speedup']}x, "
              f"cache hit-rate {result['cache_hit_rate']:.0%}, "
              f"byte-identical={result['byte_identical']}")
    if args.full:
        result = run_scenario("Q1", max(20, args.count // 10), args.seed,
                              args.processes)
        scenarios["Q1"] = result
        print(f"Q1 (full): {result['speedup']}x")

    overload = run_overload()

    headline = scenarios["Q4"]
    payload = {
        "benchmark": "service_throughput",
        "headline_speedup": headline["speedup"],
        "cache_hit_rate": headline["cache_hit_rate"],
        "byte_identical": all(s["byte_identical"] for s in scenarios.values()),
        "scenarios": scenarios,
        "overload": overload,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if not payload["byte_identical"]:
        print("FAIL: batch and sequential hint output differ", file=sys.stderr)
        return 1
    if headline["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {headline['speedup']}x < {MIN_SPEEDUP}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
