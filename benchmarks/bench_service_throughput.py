"""Throughput benchmark: batch grading vs. the one-shot CLI path.

Simulates the paper's classroom scenario: a duplicate-heavy pile of
userstudy-style submissions (one shared target, formatting/case/alias
variants of the same wrong answers) graded two ways:

* **sequential** -- the historic one-shot path, exactly what looping
  ``repro hint`` per submission pays: fresh solver, target re-parsed,
  full pipeline for every submission;
* **batch** -- ``repro.service.grade_batch``: parse the target once,
  dedupe submissions by canonical form, grade only the unique forms
  (sharded across workers), serve the rest from the artifact cache.

Asserts the two paths produce byte-identical hint output and that batch
achieves >= 5x throughput, then writes ``BENCH_service.json``::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py [--full]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.core.pipeline import QrHint
from repro.service import grade_batch
from repro.service.session import format_report
from repro.solver import Solver
from repro.sqlparser.rewrite import parse_query_extended
from repro.workloads import dblp, userstudy

OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR")
    or pathlib.Path(__file__).parent.parent
) / "BENCH_service.json"
MIN_SPEEDUP = 5.0


def one_shot(catalog, target_sql, submission_sql):
    """The per-request work of the one-shot CLI path."""
    target = parse_query_extended(target_sql, catalog)
    working = parse_query_extended(submission_sql, catalog)
    report = QrHint(catalog, target, working, solver=Solver()).run()
    return format_report(report)


def run_scenario(qid, count, seed, processes=None):
    question = next(q for q in dblp.QUESTIONS if q.qid == qid)
    catalog = dblp.catalog()
    pool = userstudy.submission_pool(question, count=count, seed=seed)

    started = time.perf_counter()
    sequential = [one_shot(catalog, question.correct_sql, sql) for sql in pool]
    sequential_seconds = time.perf_counter() - started

    batch = grade_batch(
        catalog, question.correct_sql, pool, processes=processes
    )
    batch_texts = [result.text() for result in batch.results]

    identical = batch_texts == sequential
    speedup = sequential_seconds / batch.elapsed if batch.elapsed else 0.0
    return {
        "question": qid,
        "submissions": count,
        "unique": batch.unique,
        "processes": batch.processes,
        "cache_hit_rate": batch.cache_hit_rate,
        "sequential_seconds": round(sequential_seconds, 4),
        "batch_seconds": round(batch.elapsed, 4),
        "sequential_qps": round(count / sequential_seconds, 2),
        "batch_qps": round(batch.throughput, 2),
        "speedup": round(speedup, 2),
        "byte_identical": identical,
        "solver": batch.solver_stats,
    }


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--count", type=int, default=200,
                        help="submissions in the pile (default 200)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument(
        "--full", action="store_true",
        help="also run the expensive Q1 scenario (minutes, not seconds)",
    )
    args = parser.parse_args(argv)

    scenarios = {}
    for qid in ("Q4", "Q2"):
        result = run_scenario(qid, args.count, args.seed, args.processes)
        scenarios[qid] = result
        print(f"{qid}: {result['submissions']} submissions "
              f"({result['unique']} unique), sequential "
              f"{result['sequential_seconds']}s vs batch "
              f"{result['batch_seconds']}s -> {result['speedup']}x, "
              f"cache hit-rate {result['cache_hit_rate']:.0%}, "
              f"byte-identical={result['byte_identical']}")
    if args.full:
        result = run_scenario("Q1", max(20, args.count // 10), args.seed,
                              args.processes)
        scenarios["Q1"] = result
        print(f"Q1 (full): {result['speedup']}x")

    headline = scenarios["Q4"]
    payload = {
        "benchmark": "service_throughput",
        "headline_speedup": headline["speedup"],
        "cache_hit_rate": headline["cache_hit_rate"],
        "byte_identical": all(s["byte_identical"] for s in scenarios.values()),
        "scenarios": scenarios,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if not payload["byte_identical"]:
        print("FAIL: batch and sequential hint output differ", file=sys.stderr)
        return 1
    if headline["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: speedup {headline['speedup']}x < {MIN_SPEEDUP}x",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
