"""Figures 6a/6b: participant categorization of TA vs Qr-Hint hints.

Participants categorize each hint for Q3/Q4 as "Obvious (gives it away)",
"Helpful but requires thinking", or "Unhelpful/incorrect".  Votes are
simulated from the calibrated per-hint profiles of
``repro.workloads.dblp``.

Expected shape (paper): TA hint quality varies widely; Qr-Hint hints are
consistently perceived as "helpful but requires thinking".
"""

from benchmarks.conftest import print_table
from repro.workloads import dblp, userstudy

PARTICIPANTS = {"Q3": 7, "Q4": 8}  # as in the paper's study


def run_votes():
    results = {}
    for question in dblp.QUESTIONS[2:]:
        by_source, per_hint = userstudy.simulate_votes(
            question, PARTICIPANTS[question.qid], seed=42
        )
        results[question.qid] = (by_source, per_hint)
    return results


def test_fig6_votes(benchmark, save_result):
    results = benchmark.pedantic(run_votes, rounds=1, iterations=1)
    rows = []
    payload = {}
    for qid, (by_source, per_hint) in results.items():
        for source, tally in sorted(by_source.items()):
            rows.append(
                [
                    qid,
                    source,
                    tally.votes["Obvious"],
                    tally.votes["Helpful"],
                    tally.votes["Unhelpful"],
                ]
            )
            payload[f"{qid}/{source}"] = dict(tally.votes)
    print_table(
        "Figure 6: hint categorization votes (simulated)",
        ["question", "source", "Obvious", "Helpful", "Unhelpful"],
        rows,
    )
    save_result("fig6_hint_votes", payload)

    for qid, (by_source, _) in results.items():
        qr = by_source["Qr-Hint"]
        assert qr.share("Helpful") > qr.share("Obvious")
        assert qr.share("Helpful") > qr.share("Unhelpful")
    # Aggregate across questions: Qr-Hint more consistently helpful than TA.
    qr_total = sum(
        by_source["Qr-Hint"].share("Helpful") for by_source, _ in results.values()
    )
    ta_total = sum(
        by_source["TA"].share("Helpful") for by_source, _ in results.values()
    )
    assert qr_total > ta_total
