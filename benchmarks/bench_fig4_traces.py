"""Figure 4: cost of viable repairs discovered over the course of execution.

One trace per error count (1-5) on TPC-H Q7: every unpruned viable repair
found by ``RepairWhere`` is logged as (elapsed seconds, cost).  Expected
shape (paper): traces for 1/4/5 errors degenerate to single points (few
viable options); costs fluctuate but the lowest-cost repairs surface early.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.where_repair import repair_where
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors

ERROR_COUNTS = [1, 2, 3, 4, 5]


def collect_trace(num_errors):
    predicate = tpch.Q7_NESTED.resolve().where
    injected = inject_errors(
        predicate, num_errors, seed=num_errors, allow_operator_swap=True
    )
    result = repair_where(
        injected.wrong,
        injected.correct,
        max_sites=2,
        optimized=True,
        solver=Solver(),
    )
    return result


@pytest.mark.parametrize("num_errors", ERROR_COUNTS)
def test_fig4_trace(benchmark, num_errors):
    result = benchmark.pedantic(
        collect_trace, args=(num_errors,), rounds=1, iterations=1
    )
    assert result.trace
    benchmark.extra_info["points"] = [
        (round(e.elapsed, 4), round(e.cost, 4)) for e in result.trace
    ]


def test_fig4_all_traces(benchmark, save_result):
    def run_all():
        return {k: collect_trace(k) for k in ERROR_COUNTS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    payload = {}
    for k, result in results.items():
        points = [(round(e.elapsed, 3), round(e.cost, 3)) for e in result.trace]
        payload[k] = points
        rows.append([k, len(points), f"{min(c for _, c in points):.3f}",
                     " ".join(f"({t}s,{c})" for t, c in points[:6])])
    print_table(
        "Figure 4: viable repairs found during execution (per error count)",
        ["errors", "#viable", "min cost", "trace (first points)"],
        rows,
    )
    save_result("fig4_traces", payload)

    # Shape: the single-error searches collapse to few points, and the
    # final answer equals the cheapest trace point.  (The paper notes there
    # is "no guarantee that a cheaper repair will always be found earlier";
    # costs fluctuate, so only the aggregate early-surfacing trend holds.)
    assert len(payload[5]) <= 2, "5-error trace should degenerate"
    early_gap = []
    for k, result in results.items():
        costs = [e.cost for e in result.trace]
        assert result.cost == pytest.approx(min(costs))
        half = costs[: max(1, (len(costs) + 1) // 2)]
        early_gap.append(min(half) - min(costs))
    assert sum(early_gap) / len(early_gap) <= 0.35, (
        "on average, low-cost repairs surface in the first half of the search"
    )
