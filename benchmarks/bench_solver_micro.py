"""Micro-benchmarks for the solver stack: SAT core, SMT facade, MinFix.

Times the kernels that gate every Qr-Hint figure benchmark and writes the
results to ``BENCH_solver.json`` at the repository root (ops/sec per
kernel), so the perf trajectory stays machine-readable across PRs::

    PYTHONPATH=src python benchmarks/bench_solver_micro.py

The conjunctive-query SAT kernel is also run against a faithful copy of
the seed recursive DPLL (kept below as ``SeedDpllSolver``) and the speedup
of the CDCL engine over it is reported and asserted (>= 3x).

The script doubles as the CI perf-regression smoke: before overwriting
``BENCH_solver.json`` it loads the committed numbers and fails if the
``sat_conjunctive`` throughput fell below ``MIN_REGRESSION_RATIO`` (0.5x)
of the committed value.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.core.minfix import map_atom_preds, min_fix
from repro.logic.formulas import Comparison, conj, disj
from repro.logic.terms import add, const, intvar
from repro.solver import Solver
from repro.solver.sat import SatSolver

_ROOT = pathlib.Path(__file__).parent.parent
#: Committed baseline (read for the regression gate) vs. output path
#: (redirected by ``repro perfdiff`` via ``$BENCH_OUT_DIR`` so fresh
#: runs never clobber the committed file).
COMMITTED_PATH = _ROOT / "BENCH_solver.json"
OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR") or _ROOT
) / "BENCH_solver.json"

#: CI gate: fail when sat_conjunctive drops below this fraction of the
#: committed BENCH_solver.json value (0.5x allows for runner-speed skew
#: while still catching real order-of-magnitude regressions).
MIN_REGRESSION_RATIO = 0.5


# ----------------------------------------------------------------------
# Seed baseline: the pre-CDCL recursive DPLL, verbatim semantics
# ----------------------------------------------------------------------


class SeedDpllSolver:
    """The seed's recursive, clause-rescanning DPLL (reference baseline)."""

    def __init__(self):
        self._clauses = []
        self._num_vars = 0

    def ensure_vars(self, count):
        self._num_vars = max(self._num_vars, count)

    def add_clause(self, literals):
        clause = sorted(set(literals), key=abs)
        for lit in clause:
            self.ensure_vars(abs(lit))
        for i in range(len(clause) - 1):
            if clause[i] == -clause[i + 1]:
                return
        self._clauses.append(clause)

    def solve(self):
        result = self._dpll({})
        if result is None:
            return None
        for var in range(1, self._num_vars + 1):
            result.setdefault(var, False)
        return result

    def _dpll(self, assignment):
        assignment = dict(assignment)
        while True:
            status, unit_lits = self._propagate(assignment)
            if status == "conflict":
                return None
            if not unit_lits:
                break
            for lit in unit_lits:
                assignment[abs(lit)] = lit > 0
        branch_var = self._pick_branch(assignment)
        if branch_var is None:
            return assignment
        for value in (True, False):
            trial = dict(assignment)
            trial[branch_var] = value
            result = self._dpll(trial)
            if result is not None:
                return result
        return None

    def _propagate(self, assignment):
        units = []
        for clause in self._clauses:
            unassigned = None
            satisfied = False
            count_unassigned = 0
            for lit in clause:
                var = abs(lit)
                if var in assignment:
                    if assignment[var] == (lit > 0):
                        satisfied = True
                        break
                else:
                    unassigned = lit
                    count_unassigned += 1
            if satisfied:
                continue
            if count_unassigned == 0:
                return "conflict", []
            if count_unassigned == 1:
                units.append(unassigned)
        chosen = {}
        for lit in units:
            var = abs(lit)
            if var in chosen and chosen[var] != (lit > 0):
                return "conflict", []
            chosen[var] = lit > 0
        return "ok", [v if val else -v for v, val in chosen.items()]

    def _pick_branch(self, assignment):
        counts = {}
        for clause in self._clauses:
            satisfied = any(
                abs(lit) in assignment and assignment[abs(lit)] == (lit > 0)
                for lit in clause
            )
            if satisfied:
                continue
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    counts[var] = counts.get(var, 0) + 1
        if counts:
            return max(counts, key=counts.get)
        return None


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------

NUM_ATOMS = 7  # free atom variables enumerated by blocking clauses
CHAIN = 40  # implication chain of Tseitin-style auxiliaries


def _conjunctive_clauses():
    """CNF shaped like a Tseitin-encoded conjunctive WHERE.

    ``NUM_ATOMS`` free atom variables plus a unit-propagation chain of
    auxiliary variables that every model must re-derive, mirroring the
    skeleton clauses of ``smt._solve``.
    """
    base = NUM_ATOMS
    clauses = [[base + 1]]
    for i in range(1, CHAIN):
        clauses.append([-(base + i), base + i + 1])
    return clauses


def sat_conjunctive_kernel(solver_cls):
    """The DPLL(T) inner loop: enumerate every atom model via blocking.

    Returns the number of solve() calls made (models + the final UNSAT).
    """
    solver = solver_cls()
    solver.ensure_vars(NUM_ATOMS + CHAIN)
    for clause in _conjunctive_clauses():
        solver.add_clause(clause)
    calls = 0
    while True:
        calls += 1
        model = solver.solve()
        if model is None:
            break
        solver.add_clause(
            [-v if model[v] else v for v in range(1, NUM_ATOMS + 1)]
        )
    expected = 2**NUM_ATOMS + 1
    assert calls == expected, f"enumerated {calls}, expected {expected}"
    return calls


ENUM_ATOMS = 9  # free atoms of the chrono-enumeration kernel
ENUM_CHAIN = 24  # unit-forced auxiliary chain re-derived per model


def sat_enumeration_chrono_kernel():
    """Full model enumeration (chrono backtracking + trail saving), 9 atoms.

    Enumerates every model of nine atom variables under four pair
    implications (``x1 -> x2`` etc., so propagation interleaves with the
    blocking clauses) plus a 24-step unit-forced auxiliary chain.  The
    kernel asserts the model count (3^4 * 2 = 162) and that the
    chronological path actually engaged; throughput is reported as
    enumeration rounds per second (one round = 162 models + final UNSAT).
    """
    solver = SatSolver()
    solver.ensure_vars(ENUM_ATOMS + ENUM_CHAIN)
    solver.add_clause([ENUM_ATOMS + 1])
    for i in range(1, ENUM_CHAIN):
        solver.add_clause([-(ENUM_ATOMS + i), ENUM_ATOMS + i + 1])
    for i in range(0, ENUM_ATOMS - 1, 2):
        solver.add_clause([-(i + 1), i + 2])
    models = 0
    while True:
        model = solver.solve()
        if model is None:
            break
        models += 1
        solver.add_clause(
            [-v if model[v] else v for v in range(1, ENUM_ATOMS + 1)]
        )
    expected = 3 ** (ENUM_ATOMS // 2) * 2 ** (ENUM_ATOMS % 2)
    assert models == expected, f"enumerated {models}, expected {expected}"
    assert solver.stats["chrono_backtracks"] > 0, (
        "chronological backtracking never engaged"
    )
    return models


A, B, C, D, E, F = (intvar(n) for n in "ABCDEF")
_CHAIN_VARS = (A, B, C, D, E, F)


_RANDOM3_SEED = 0x5EED
_RANDOM3_VARS = 100
_RANDOM3_CLAUSES = 420  # ratio 4.2: conflict-heavy but tractable


def _random3_instance():
    rng = random.Random(_RANDOM3_SEED)
    clauses = [
        [rng.choice([1, -1]) * v
         for v in rng.sample(range(1, _RANDOM3_VARS + 1), 3)]
        for _ in range(_RANDOM3_CLAUSES)
    ]
    pool = [rng.choice([1, -1]) * v
            for v in rng.sample(range(1, _RANDOM3_VARS + 1), 12)]
    return clauses, pool


def sat_random3_incremental_kernel(solver_cls=SatSolver):
    """Random 3-CNF solved under growing assumption sequences.

    One persistent solver answers 13 queries whose assumption lists are
    prefixes of a fixed random literal pool, exercising first-UIP
    learning, restarts, clause-database reduction, and the kept-trail
    assumption-prefix reuse.  Returns the per-prefix verdicts; sanity
    (and determinism) is asserted via UNSAT monotonicity.
    """
    clauses, pool = _random3_instance()
    solver = solver_cls()
    solver.ensure_vars(_RANDOM3_VARS)
    for clause in clauses:
        solver.add_clause(clause)
    verdicts = []
    for length in range(len(pool) + 1):
        verdicts.append(solver.solve(pool[:length]) is not None)
    # Assumption sets only grow, so satisfiability can only decay.
    for earlier, later in zip(verdicts, verdicts[1:]):
        assert earlier or not later, verdicts
    return verdicts


def smt_transitivity_kernel():
    """Fresh-solver UNSAT check of a 6-variable `<` cycle (theory-driven)."""
    solver = Solver()
    cycle = [
        Comparison("<", _CHAIN_VARS[i], _CHAIN_VARS[(i + 1) % len(_CHAIN_VARS)])
        for i in range(len(_CHAIN_VARS))
    ]
    assert solver.is_unsatisfiable(conj(*cycle))
    return 1


def minfix_kernel():
    """One MinFix call over a 4-atom bound (truth table + QM + Petrick)."""
    solver = Solver()
    atoms = [
        Comparison(">", A, const(5)),
        Comparison("<", B, const(3)),
        Comparison(">=", C, const(0)),
        Comparison("<>", D, const(7)),
    ]
    lower = conj(*atoms)
    upper = atoms[0] | atoms[1] | atoms[2] | atoms[3]
    min_fix(lower, upper, solver)
    return 1


def minfix_large_kernel():
    """One MinFix call over a 6-atom bound (64-row truth table + QM)."""
    solver = Solver()
    atoms = [
        Comparison(">", A, const(5)),
        Comparison("<", B, const(3)),
        Comparison(">=", C, const(0)),
        Comparison("<>", A, const(7)),
        Comparison(">", B, const(-4)),
        Comparison("<=", C, const(9)),
    ]
    lower = conj(*atoms)
    upper = disj(*atoms)
    min_fix(lower, upper, solver)
    return 1


def map_atom_preds_kernel():
    """Atom dedup across syntactic variants (canonical prefilter path)."""
    solver = Solver()
    variants = [
        Comparison("=", A, B),
        Comparison("=", add(A, const(1)), add(B, const(1))),
        Comparison("<>", A, B),
        Comparison("<", A, B),
        Comparison(">", B, A),
        Comparison(">=", A, B),
        Comparison(">", C, const(2)),
        Comparison("<=", C, const(2)),
    ]
    mapping = map_atom_preds([conj(*variants[:4]), conj(*variants[4:])], solver)
    assert mapping.num_vars <= 4
    return 1


def _time_kernel(fn, min_seconds=0.6):
    """Run ``fn`` repeatedly for ~min_seconds; return (ops/sec, reps)."""
    fn()  # warm up (imports, caches outside the measured units)
    reps = 0
    start = time.perf_counter()
    while True:
        fn()
        reps += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return reps / elapsed, reps


#: Kernels gated against the committed BENCH_solver.json numbers.
GATED_KERNELS = ("sat_conjunctive", "sat_enumeration_chrono")


def _committed_baselines():
    """Gated-kernel ops/sec from the committed BENCH_solver.json."""
    try:
        committed = json.loads(COMMITTED_PATH.read_text())
        kernels = committed["kernels"]
        return {
            name: kernels[name]["ops_per_sec"]
            for name in GATED_KERNELS
            if name in kernels
        }
    except (OSError, KeyError, ValueError):
        return {}


def main():
    baselines = _committed_baselines()
    results = {}

    new_ops, _ = _time_kernel(lambda: sat_conjunctive_kernel(SatSolver))
    seed_ops, _ = _time_kernel(lambda: sat_conjunctive_kernel(SeedDpllSolver))
    speedup = new_ops / seed_ops
    results["sat_conjunctive"] = {
        "description": "blocking-clause model enumeration, "
        f"{NUM_ATOMS} atoms + {CHAIN}-step aux chain",
        "ops_per_sec": round(new_ops, 3),
        "seed_dpll_ops_per_sec": round(seed_ops, 3),
        "speedup_vs_seed": round(speedup, 2),
    }

    enum_ops, _ = _time_kernel(sat_enumeration_chrono_kernel)
    enum_models = 3 ** (ENUM_ATOMS // 2) * 2 ** (ENUM_ATOMS % 2)
    results["sat_enumeration_chrono"] = {
        "description": sat_enumeration_chrono_kernel.__doc__
        .strip().splitlines()[0],
        "ops_per_sec": round(enum_ops, 3),
        "models_per_sec": round(enum_ops * enum_models, 1),
    }

    for name, fn in [
        ("sat_random3_incremental", sat_random3_incremental_kernel),
        ("smt_transitivity", smt_transitivity_kernel),
        ("minfix_small", minfix_kernel),
        ("minfix_large", minfix_large_kernel),
        ("map_atom_preds", map_atom_preds_kernel),
    ]:
        ops, _ = _time_kernel(fn)
        results[name] = {"description": fn.__doc__.strip().splitlines()[0],
                         "ops_per_sec": round(ops, 3)}

    for name, entry in results.items():
        line = f"  {name}: {entry['ops_per_sec']:.1f} ops/s"
        if "speedup_vs_seed" in entry:
            line += (
                f"  (seed DPLL {entry['seed_dpll_ops_per_sec']:.1f} ops/s, "
                f"{entry['speedup_vs_seed']:.1f}x speedup)"
            )
        print(line)

    # Gate BEFORE overwriting BENCH_solver.json: a failed run must not
    # replace the committed baseline with its own regressed numbers.
    assert speedup >= 3.0, (
        f"conjunctive SAT kernel speedup {speedup:.2f}x is below the 3x bar"
    )
    for name, committed_ops in baselines.items():
        current = results[name]["ops_per_sec"]
        ratio = current / committed_ops
        print(f"  {name} vs committed baseline: {ratio:.2f}x "
              f"(gate: >= {MIN_REGRESSION_RATIO}x)")
        assert ratio >= MIN_REGRESSION_RATIO, (
            f"{name} {current:.1f} ops/s fell below "
            f"{MIN_REGRESSION_RATIO}x the committed {committed_ops:.1f} ops/s"
        )

    payload = {
        "python": sys.version.split()[0],
        "kernels": results,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
