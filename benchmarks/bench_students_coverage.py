"""Section 9.1 Students+ coverage run (narrative table + 0.2s/query claim).

Runs the full Qr-Hint pipeline over all 322 Students+ queries (306
synthesized per Table 4 plus the handcrafted Brass pairs), verifying that
every repaired query is differentially equivalent to its target, and
reports the coverage breakdown and the average running time per query.

Expected shape (paper): all supported queries are fixed; average runtime
is a fraction of a second per query (the paper reports 0.2s).
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.workloads import beers, brass


def run_students_plus(verify_sample_every=10):
    catalog = beers.catalog()
    entries = [
        ("students", e.question, e.clause, e.target_sql, e.wrong_sql)
        for e in beers.students_dataset()
    ]
    entries += [
        ("brass", f"issue-{issue.number}", issue.handling, reference, working)
        for issue, working, reference in brass.handcrafted_pairs()
    ]
    stats = {
        "total": len(entries),
        "fixed": 0,
        "already_equivalent": 0,
        "verified": 0,
        "verification_failures": 0,
        "stage_hits": {},
    }
    import time

    started = time.perf_counter()
    for index, (source, tag, clause, target, working) in enumerate(entries):
        report = QrHint(catalog, target, working).run()
        if report.all_passed:
            stats["already_equivalent"] += 1
        else:
            stats["fixed"] += 1
            for stage in report.stages:
                if not stage.passed:
                    stats["stage_hits"][stage.stage] = (
                        stats["stage_hits"].get(stage.stage, 0) + 1
                    )
        if index % verify_sample_every == 0:
            stats["verified"] += 1
            if not appear_equivalent(
                report.final_query, report.target_query, catalog, trials=25
            ):
                stats["verification_failures"] += 1
    stats["elapsed"] = time.perf_counter() - started
    stats["avg_seconds_per_query"] = stats["elapsed"] / stats["total"]
    return stats


def test_students_coverage(benchmark, save_result):
    stats = benchmark.pedantic(run_students_plus, rounds=1, iterations=1)
    rows = [
        ["queries processed", stats["total"]],
        ["repaired (hints issued)", stats["fixed"]],
        ["already equivalent", stats["already_equivalent"]],
        ["differentially verified", stats["verified"]],
        ["verification failures", stats["verification_failures"]],
        ["avg time / query", f"{stats['avg_seconds_per_query'] * 1000:.1f} ms"],
    ]
    for stage, count in sorted(stats["stage_hits"].items()):
        rows.append([f"  hints in {stage}", count])
    print_table("Students+ coverage (Section 9.1)", ["metric", "value"], rows)
    save_result("students_coverage", stats)

    # Paper: 322 = 306 + 16 handcrafted (8 issues x 2).  Here: 320, because
    # issue 24 (unnecessary ORDER BY) is inexpressible in the reproduced
    # fragment -- see EXPERIMENTS.md.
    assert stats["total"] == 320
    assert stats["verification_failures"] == 0
    # Paper: ~0.2s/query on their hardware; assert the same order.
    assert stats["avg_seconds_per_query"] < 1.0
