"""Shared helpers for the benchmark harness.

Each ``bench_*`` module reproduces one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks print the
regenerated rows/series and persist them as JSON under ``benchmarks/out/``
so EXPERIMENTS.md can reference stable artifacts.
"""

import json
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir():
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    def _save(name, payload):
        path = results_dir / f"{name}.json"
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, default=str)
        return path

    return _save


def print_table(title, headers, rows):
    """Render a reproduced paper table to stdout."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
