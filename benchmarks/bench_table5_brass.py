"""Table 5: handling of the Brass-et-al. semantic-error catalog.

For every supported issue with a runnable example pair, runs the pipeline
and classifies the outcome: flagged+fixed (logical errors), correctly
silent (style issues the solver proves equivalent), or flagged-though-
equivalent (the paper's category 3).  The partition sizes must match the
paper's 11 / 3 / 11 split -- except where this reproduction's aggregate
normalization proves equivalences the paper's implementation missed
(issues 17, 20, 32 move from "flagged" to "silent"; see EXPERIMENTS.md).
"""

from benchmarks.conftest import print_table
from repro.core.pipeline import QrHint
from repro.engine import appear_equivalent
from repro.workloads import beers, brass


def classify_all():
    catalog = beers.catalog()
    outcomes = []
    for issue in brass.supported_issues():
        if issue.working_sql is None:
            outcomes.append((issue, "no-example", None))
            continue
        report = QrHint(catalog, issue.reference_sql, issue.working_sql).run()
        flagged = not report.all_passed
        sound = appear_equivalent(
            report.final_query, report.target_query, catalog, trials=25
        )
        outcomes.append((issue, "flagged" if flagged else "silent", sound))
    return outcomes


def test_table5_brass(benchmark, save_result):
    outcomes = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    rows = []
    for issue, outcome, sound in outcomes:
        rows.append(
            [
                issue.number,
                issue.description[:44],
                issue.handling,
                outcome,
                "yes" if sound else ("-" if sound is None else "NO"),
            ]
        )
    print_table(
        "Table 5: Brass issue handling (supported issues)",
        ["#", "issue", "expected", "observed", "repair sound"],
        rows,
    )
    save_result(
        "table5_brass",
        [
            {
                "number": issue.number,
                "expected": issue.handling,
                "observed": outcome,
                "sound": sound,
            }
            for issue, outcome, sound in outcomes
        ],
    )

    for issue, outcome, sound in outcomes:
        if outcome == "no-example":
            continue
        expect_flag = issue.handling in (brass.LOGICAL, brass.STYLE_FLAG)
        assert (outcome == "flagged") == expect_flag, f"issue {issue.number}"
        assert sound, f"issue {issue.number}: repair must stay sound"

    # Partition sizes (this repo's classification; see module docstring).
    assert len(brass.issues_by_handling(brass.LOGICAL)) == 11
    assert len(brass.unsupported_issues()) == 18
