"""Figures 5a/5b: user performance with and without Qr-Hint hints.

The hint *stimuli* are real -- the pipeline is run on the study's wrong
queries to confirm Qr-Hint produces the hints the participants saw -- and
participant responses are simulated from calibrated probabilities (see
``repro.workloads.userstudy`` and DESIGN.md's substitution table).

Expected shape (paper): with hints, far more participants identify at
least one error (Q1: 14.3% -> 100%; Q2: 71.4% -> 87.5%).
"""

from benchmarks.conftest import print_table
from repro.core.pipeline import QrHint
from repro.workloads import dblp, userstudy

PARTICIPANTS = 8  # per treatment arm, as in the paper's study size


def run_identification():
    catalog = dblp.catalog()
    # Confirm the pipeline produces hints for both stimuli queries.
    hints = {}
    for question in dblp.QUESTIONS[:2]:
        report = QrHint(catalog, question.correct_sql, question.wrong_sql).run()
        hints[question.qid] = [h.message for h in report.hints]
        assert report.hints, f"{question.qid} must produce hints"
    outcomes = {}
    for question in dblp.QUESTIONS[:2]:
        outcomes[question.qid] = {
            arm: userstudy.simulate_identification(
                question, arm, PARTICIPANTS, seed=9
            )
            for arm in ("none", "qrhint")
        }
    return hints, outcomes


def test_fig5_identification(benchmark, save_result):
    hints, outcomes = benchmark.pedantic(run_identification, rounds=1, iterations=1)
    rows = []
    payload = {}
    for qid, arms in outcomes.items():
        for arm, outcome in arms.items():
            rows.append(
                [
                    qid,
                    "no hints" if arm == "none" else "Qr-Hint",
                    f"{outcome.at_least_one_rate * 100:.0f}%",
                    f"{outcome.both_rate * 100:.0f}%",
                ]
            )
            payload[f"{qid}/{arm}"] = {
                "at_least_one": outcome.at_least_one_rate,
                "both": outcome.both_rate,
            }
    print_table(
        "Figure 5: error identification, simulated participants "
        f"(n={PARTICIPANTS}/arm)",
        ["question", "treatment", ">=1 error found", "both errors found"],
        rows,
    )
    save_result("fig5_userstudy", {"hints": hints, "outcomes": payload})

    for qid in ("Q1", "Q2"):
        hinted = outcomes[qid]["qrhint"].at_least_one_rate
        unhinted = outcomes[qid]["none"].at_least_one_rate
        assert hinted > unhinted, f"{qid}: hints must help"
    assert outcomes["Q1"]["qrhint"].at_least_one_rate >= 0.85
    assert outcomes["Q1"]["none"].at_least_one_rate <= 0.5
