"""Figure 3 (a/b): nested AND/OR WHERE with 1-5 injected errors (TPC-H Q7).

Expected shape (paper): with one error both variants find the optimal
repair (Lemma 5.2); with 2-3 errors DeriveFixes turns suboptimal while
DeriveFixesOPT stays optimal or near-optimal; with 4-5 errors both are
capped at two repair sites and fall back to coarse repairs -- and run
*faster*, because CreateBounds prunes almost every candidate site set.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.where_repair import repair_where, verify_repair
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors

ERROR_COUNTS = [1, 2, 3, 4, 5]


def run_nested(num_errors, optimized):
    predicate = tpch.Q7_NESTED.resolve().where
    injected = inject_errors(
        predicate, num_errors, seed=num_errors, allow_operator_swap=True
    )
    solver = Solver()
    result = repair_where(
        injected.wrong,
        injected.correct,
        max_sites=2,
        optimized=optimized,
        solver=solver,
    )
    assert result.found
    assert verify_repair(injected.wrong, injected.correct, result.repair, solver)
    return {
        "errors": num_errors,
        "optimized": optimized,
        "cost": result.cost,
        "ground_truth_cost": injected.ground_truth_cost(),
        "elapsed": result.elapsed,
        "sites": len(result.repair),
    }


@pytest.mark.parametrize("num_errors", ERROR_COUNTS)
@pytest.mark.parametrize("optimized", [False, True], ids=["DeriveFixes", "OPT"])
def test_fig3_repair(benchmark, num_errors, optimized):
    outcome = benchmark.pedantic(
        run_nested, args=(num_errors, optimized), rounds=1, iterations=1
    )
    benchmark.extra_info.update(outcome)


def test_fig3_summary_table(benchmark, save_result):
    def run_all():
        return [
            (k, run_nested(k, False), run_nested(k, True)) for k in ERROR_COUNTS
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = [
        [
            k,
            f"{plain['ground_truth_cost']:.3f}",
            f"{plain['cost']:.3f}",
            f"{optimized['cost']:.3f}",
            f"{plain['elapsed']:.2f}s",
            f"{optimized['elapsed']:.2f}s",
        ]
        for k, plain, optimized in rows
    ]
    print_table(
        "Figure 3: nested AND/OR WHERE (TPC-H Q7, 10 unique atoms)",
        ["errors", "gt cost", "cost", "cost(OPT)", "time", "time(OPT)"],
        table,
    )
    save_result(
        "fig3_nested",
        [{"plain": p, "optimized": o} for _, p, o in rows],
    )

    by_count = {k: (plain, optimized) for k, plain, optimized in rows}
    # 1 error: both optimal (Lemma 5.2).
    assert by_count[1][0]["cost"] <= by_count[1][0]["ground_truth_cost"] + 1e-9
    assert by_count[1][1]["cost"] <= by_count[1][1]["ground_truth_cost"] + 1e-9
    # 2-3 errors: OPT no worse than plain.
    for k in (2, 3):
        assert by_count[k][1]["cost"] <= by_count[k][0]["cost"] + 1e-9
    # 5 errors: limited viable options -> faster than the 2-error search.
    assert by_count[5][0]["elapsed"] < by_count[2][0]["elapsed"]
