"""Corpus-scale benchmark: the scenario-diversity regression surface.

Generates the fixed-seed mutation corpus across the bundled schemas,
pushes it through the production batch-grading path, and writes the
results to ``BENCH_corpus.json`` at the repository root::

    PYTHONPATH=src python benchmarks/bench_corpus.py          # full corpus
    PYTHONPATH=src python benchmarks/bench_corpus.py --smoke  # CI smoke

Full mode asserts the corpus contract (>= 500 distinct post-dedup wrong
queries across >= 3 schemas, >= 95% graded without error) and records
hint coverage, ground-truth stage agreement, witness coverage over a
fixed subsample, and grading throughput.

``--smoke`` (the CI ``corpus-smoke`` job) generates a small fixed-seed
corpus (two schemas, >= 50 queries), asserts **100%** grade-without-error
on it, and gates its throughput at ``MIN_REGRESSION_RATIO`` (0.5x) of the
committed ``BENCH_corpus.json`` value -- the same scheme as the solver
micro-bench gate.  Smoke mode never rewrites the committed file.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.corpus import CorpusGenerator, evaluate_corpus
from repro.corpus.generator import stage_mix

_ROOT = pathlib.Path(__file__).parent.parent
#: Committed baseline (read for the regression gate) vs. output path
#: (redirected by ``repro perfdiff`` via ``$BENCH_OUT_DIR``).
COMMITTED_PATH = _ROOT / "BENCH_corpus.json"
OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR") or _ROOT
) / "BENCH_corpus.json"

#: CI gate: fail when throughput drops below this fraction of the
#: committed BENCH_corpus.json value (runner-speed skew tolerance).
MIN_REGRESSION_RATIO = 0.5

FULL_SEED = 0
FULL_PER_QUERY = 20
FULL_MIN_ENTRIES = 500
FULL_MIN_SCHEMAS = 3
FULL_MIN_GRADE_RATE = 0.95
FULL_WITNESS_LIMIT = 30

SMOKE_SEED = 0
SMOKE_SCHEMAS = ("beers", "dblp")
SMOKE_PER_QUERY = 8
SMOKE_MIN_ENTRIES = 50


def run_smoke():
    """The CI smoke corpus: small, fixed seed, zero tolerated errors.

    Graded serially (``processes=1``): the smoke throughput is the gated
    regression metric, and a single-core number is comparable between the
    committing machine and CI runners with different core counts.
    """
    generator = CorpusGenerator(schemas=SMOKE_SCHEMAS, seed=SMOKE_SEED)
    pool = generator.generate_pool(per_query=SMOKE_PER_QUERY)
    assert len(pool) >= SMOKE_MIN_ENTRIES, (
        f"smoke corpus produced only {len(pool)} entries "
        f"(need >= {SMOKE_MIN_ENTRIES})"
    )
    assert len({e.schema for e in pool}) == len(SMOKE_SCHEMAS)
    result = evaluate_corpus(pool, schemas=SMOKE_SCHEMAS, processes=1)
    assert result.errors == 0, (
        f"{result.errors} smoke entries failed to grade: the fixed-seed "
        "smoke corpus must grade 100% without error"
    )
    assert result.grade_success_rate == 1.0
    print(
        f"  smoke: {result.graded}/{result.total} graded "
        f"({result.throughput:.2f}/s, hint coverage "
        f"{result.hint_coverage:.1%}, stage recall {result.stage_recall:.3f})"
    )
    return {
        "entries": result.total,
        "schemas": sorted({e.schema for e in pool}),
        "grade_success_rate": round(result.grade_success_rate, 4),
        "hint_coverage": round(result.hint_coverage, 4),
        "stage_recall": round(result.stage_recall, 4),
        "throughput": round(result.throughput, 3),
    }


def run_full():
    """The committed corpus: every schema, the acceptance contract."""
    generator = CorpusGenerator(seed=FULL_SEED)
    pool = generator.generate_pool(per_query=FULL_PER_QUERY)
    schemas = sorted({e.schema for e in pool})
    assert len(pool) >= FULL_MIN_ENTRIES, (
        f"full corpus produced only {len(pool)} entries "
        f"(need >= {FULL_MIN_ENTRIES})"
    )
    assert len(schemas) >= FULL_MIN_SCHEMAS
    print(
        f"  full: generated {len(pool)} distinct wrong queries across "
        f"{len(schemas)} schemas ({generator.duplicates} duplicates dropped)"
    )
    result = evaluate_corpus(
        pool,
        processes=os.cpu_count(),
        witness=True,
        witness_limit=FULL_WITNESS_LIMIT,
    )
    assert result.grade_success_rate >= FULL_MIN_GRADE_RATE, (
        f"grade success {result.grade_success_rate:.1%} fell below "
        f"{FULL_MIN_GRADE_RATE:.0%}"
    )
    print(
        f"  full: {result.graded}/{result.total} graded in "
        f"{result.grade_elapsed:.1f}s ({result.throughput:.2f}/s), "
        f"hint coverage {result.hint_coverage:.1%}, "
        f"stage recall {result.stage_recall:.3f}, "
        f"witness coverage {result.witness_coverage:.1%} "
        f"({result.witness_found}/{result.witness_attempted})"
    )
    return {
        "entries": result.total,
        "schemas": schemas,
        "stage_mix": stage_mix(pool),
        "duplicates_dropped": generator.duplicates,
        "grade_success_rate": round(result.grade_success_rate, 4),
        "errors": result.errors,
        "hint_coverage": round(result.hint_coverage, 4),
        "benign": result.benign,
        "stage_recall": round(result.stage_recall, 4),
        "stage_exact_rate": round(result.stage_exact_rate, 4),
        "witness_attempted": result.witness_attempted,
        "witness_found": result.witness_found,
        "witness_coverage": round(result.witness_coverage, 4),
        "grade_elapsed": round(result.grade_elapsed, 2),
        "throughput": round(result.throughput, 3),
        "by_kind": result.by_kind,
    }


def _committed(section):
    try:
        committed = json.loads(COMMITTED_PATH.read_text())
        return committed[section]["throughput"]
    except (OSError, KeyError, ValueError):
        return None


def _gate(label, measured, baseline):
    if not baseline:
        return
    ratio = measured / baseline
    print(f"  {label} throughput vs committed: {ratio:.2f}x "
          f"(gate: >= {MIN_REGRESSION_RATIO}x)")
    assert ratio >= MIN_REGRESSION_RATIO, (
        f"{label} throughput {measured:.2f}/s fell below "
        f"{MIN_REGRESSION_RATIO}x the committed {baseline:.2f}/s"
    )


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    smoke_only = "--smoke" in argv

    smoke = run_smoke()
    _gate("smoke", smoke["throughput"], _committed("smoke"))
    if smoke_only:
        if os.environ.get("BENCH_OUT_DIR"):
            # perfdiff re-runs this in smoke mode and compares whatever
            # sections the fresh file shares with the committed one.
            payload = {"python": sys.version.split()[0], "smoke": smoke}
            OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {OUT_PATH}")
        print("smoke corpus OK")
        return 0

    full = run_full()
    _gate("full", full["throughput"], _committed("full"))

    payload = {
        "python": sys.version.split()[0],
        "smoke": smoke,
        "full": full,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
