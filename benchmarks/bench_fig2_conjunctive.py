"""Figure 2 (a/b): DeriveFixes vs DeriveFixesOPT on conjunctive WHERE.

Reproduces the TPCH conjunctive experiment: for each TPC-H query with
4..11 atomic predicates, two errors are injected into atomic predicates;
both repair variants run with a two-site cap.  Reported per query:
repair cost vs the ground-truth cost (Figure 2a) and running time,
including time-to-first-viable-repair (Figure 2b).

Expected shape (paper): both variants return ground-truth-optimal repairs
for conjunctive predicates; running time grows roughly exponentially with
the number of unique atoms; DeriveFixes is faster than DeriveFixesOPT; the
first viable repair arrives well before the search finishes.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.where_repair import repair_where, verify_repair
from repro.solver import Solver
from repro.workloads import tpch
from repro.workloads.inject import inject_errors

NUM_ERRORS = 2


def run_variant(query, optimized, seed=1):
    predicate = query.resolve().where
    injected = inject_errors(predicate, NUM_ERRORS, seed=seed)
    solver = Solver()
    result = repair_where(
        injected.wrong,
        injected.correct,
        max_sites=2,
        optimized=optimized,
        solver=solver,
    )
    assert result.found
    assert verify_repair(injected.wrong, injected.correct, result.repair, solver)
    return {
        "query": query.name,
        "atoms": query.num_atoms,
        "optimized": optimized,
        "cost": result.cost,
        "ground_truth_cost": injected.ground_truth_cost(),
        "elapsed": result.elapsed,
        "first_viable": result.first_viable_elapsed,
    }


@pytest.mark.parametrize(
    "query", tpch.CONJUNCTIVE_QUERIES, ids=[q.name for q in tpch.CONJUNCTIVE_QUERIES]
)
@pytest.mark.parametrize("optimized", [False, True], ids=["DeriveFixes", "OPT"])
def test_fig2_repair(benchmark, query, optimized):
    """Benchmark one (query, variant) cell of Figure 2."""
    outcome = benchmark.pedantic(
        run_variant, args=(query, optimized), rounds=1, iterations=1
    )
    benchmark.extra_info.update(outcome)
    # Figure 2a's claim: conjunctive repairs are optimal (cost <= ground
    # truth; ties or better when the injected error admits a smaller fix).
    assert outcome["cost"] <= outcome["ground_truth_cost"] + 1e-9


def test_fig2_summary_table(benchmark, save_result):
    """Regenerate the full Figure 2 series in one pass."""

    def run_all():
        rows = []
        for query in tpch.CONJUNCTIVE_QUERIES:
            plain = run_variant(query, optimized=False)
            optimized = run_variant(query, optimized=True)
            rows.append((query, plain, optimized))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = []
    payload = []
    for query, plain, optimized in rows:
        table.append(
            [
                query.name,
                query.num_atoms,
                f"{plain['ground_truth_cost']:.3f}",
                f"{plain['cost']:.3f}",
                f"{optimized['cost']:.3f}",
                f"{plain['elapsed']:.2f}s",
                f"{optimized['elapsed']:.2f}s",
                f"{plain['first_viable']:.2f}s",
            ]
        )
        payload.append({"plain": plain, "optimized": optimized})
    print_table(
        "Figure 2: conjunctive WHERE (2 injected errors)",
        ["query", "atoms", "gt cost", "cost", "cost(OPT)",
         "time", "time(OPT)", "1st repair"],
        table,
    )
    save_result("fig2_conjunctive", payload)

    # Shape assertions (paper's take-aways).
    for _, plain, optimized in rows:
        assert plain["cost"] <= plain["ground_truth_cost"] + 1e-9
        assert optimized["cost"] <= optimized["ground_truth_cost"] + 1e-9
    small = [r for r in rows if r[0].num_atoms <= 5]
    large = [r for r in rows if r[0].num_atoms >= 10]
    assert max(p["elapsed"] for _, p, _ in small) < min(
        p["elapsed"] for _, p, _ in large
    ), "running time must grow with atom count"
    assert all(
        p["first_viable"] <= p["elapsed"] for _, p, _ in rows
    ), "first viable repair precedes search completion"
