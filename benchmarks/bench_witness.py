"""Witness coverage + latency benchmark over the userstudy submission pool.

For each study question, a duplicate-heavy classroom pile is graded with
witnesses enabled; every *gradeable wrong* submission should come back
with a counterexample instance that is (a) independently re-verified here
by rebuilding the database and executing the original submission and the
reference query on it, and (b) shrunk to at most 3 rows per table.

Writes ``BENCH_witness.json``::

    PYTHONPATH=src python benchmarks/bench_witness.py [--count 150] [--full]

Asserts coverage >= 90% of gradeable wrong submissions, a 100%
verification rate over emitted witnesses, and the per-table row cap.
``--full`` adds the expensive Q1 scenario (8-way self-join).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.engine.database import Database
from repro.engine.executor import bag_equal, execute
from repro.errors import ReproError
from repro.service import AssignmentSession
from repro.sqlparser.rewrite import parse_query_extended
from repro.workloads import dblp, userstudy

OUT_PATH = pathlib.Path(
    os.environ.get("BENCH_OUT_DIR")
    or pathlib.Path(__file__).parent.parent
) / "BENCH_witness.json"
MIN_COVERAGE = 0.9
MAX_ROWS_PER_TABLE = 3


def _reverify(witness, catalog, target_sql, submission_sql):
    """Independently confirm the witness outside the generation path."""
    database = Database(
        catalog,
        {name: [list(row) for row in rows] for name, _, rows in witness.tables},
    )
    target = parse_query_extended(target_sql, catalog)
    submission = parse_query_extended(submission_sql, catalog)
    return not bag_equal(execute(submission, database), execute(target, database))


def run_question(qid, count, seed):
    question = next(q for q in dblp.QUESTIONS if q.qid == qid)
    catalog = dblp.catalog()
    pool = userstudy.submission_pool(question, count=count, seed=seed)
    session = AssignmentSession(catalog, question.correct_sql)

    wrong = 0
    covered = 0
    verified = 0
    oversized = 0
    latencies = []
    sources = {"model": 0, "search": 0}
    started = time.perf_counter()
    for sql in pool:
        try:
            before = session.witness_runs
            result = session.grade(sql, witness=True)
        except ReproError:
            continue
        if result.all_passed:
            continue
        wrong += 1
        if session.witness_runs > before and result.witness is not None:
            # Uncached generation: Witness.elapsed times generate_witness
            # alone (the pipeline run is accounted to the hint service).
            latencies.append(result.witness.elapsed)
        if result.witness is None:
            continue
        if result.witness.max_rows > MAX_ROWS_PER_TABLE:
            oversized += 1
            continue
        covered += 1
        sources[result.witness.source] += 1
        if _reverify(result.witness, catalog, question.correct_sql, sql):
            verified += 1
    total = time.perf_counter() - started

    coverage = covered / wrong if wrong else 1.0
    verification_rate = verified / covered if covered else 1.0
    latencies.sort()
    return {
        "question": qid,
        "submissions": len(pool),
        "wrong_gradeable": wrong,
        "witnesses": covered,
        "coverage": round(coverage, 4),
        "verification_rate": round(verification_rate, 4),
        "oversized_rejected": oversized,
        "sources": sources,
        "witness_runs": session.witness_runs,
        "latency_mean_s": round(sum(latencies) / len(latencies), 4) if latencies else 0.0,
        "latency_max_s": round(latencies[-1], 4) if latencies else 0.0,
        "elapsed_s": round(total, 4),
        "cache": session.cache.stats(),
    }


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("--count", type=int, default=150,
                        help="submissions per question (default 150)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full", action="store_true",
        help="also run the expensive Q1 scenario (8-way self-join)",
    )
    args = parser.parse_args(argv)

    questions = ["Q2", "Q3", "Q4"] + (["Q1"] if args.full else [])
    scenarios = {}
    for qid in questions:
        result = run_question(qid, args.count, args.seed)
        scenarios[qid] = result
        print(f"{qid}: {result['wrong_gradeable']} wrong submissions, "
              f"coverage {result['coverage']:.0%}, "
              f"verified {result['verification_rate']:.0%}, "
              f"sources {result['sources']}, "
              f"witness latency mean {result['latency_mean_s']}s "
              f"(max {result['latency_max_s']}s)")

    total_wrong = sum(s["wrong_gradeable"] for s in scenarios.values())
    total_covered = sum(s["witnesses"] for s in scenarios.values())
    coverage = total_covered / total_wrong if total_wrong else 1.0
    verification = all(
        s["verification_rate"] == 1.0 for s in scenarios.values()
    )
    payload = {
        "benchmark": "witness_coverage",
        "coverage": round(coverage, 4),
        "verification_rate": 1.0 if verification else min(
            s["verification_rate"] for s in scenarios.values()
        ),
        "max_rows_per_table": MAX_ROWS_PER_TABLE,
        "scenarios": scenarios,
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH}")

    if coverage < MIN_COVERAGE:
        print(f"FAIL: witness coverage {coverage:.0%} < {MIN_COVERAGE:.0%}",
              file=sys.stderr)
        return 1
    if not verification:
        print("FAIL: an emitted witness failed independent re-verification",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
