"""Property-based tests of the repair machinery on random predicates.

Random conjunctive/nested predicates receive random injected errors; the
repairs found by ``RepairWhere`` must always be *correct* (applying them
yields a formula equivalent to the target) -- the unconditional guarantee
of Lemma 5.1 -- and never cost more than the trivial whole-predicate
replacement.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.bounds import create_bounds
from repro.core.where_repair import repair_where, verify_repair
from repro.logic.formulas import Comparison, conj, disj
from repro.logic.paths import all_paths, replace_at
from repro.logic.terms import const, intvar
from repro.solver import Solver
from repro.workloads.inject import inject_errors

SOLVER = Solver()
VARS = [intvar(name) for name in "uvwxyz"]


@st.composite
def conjunctive_predicate(draw, min_atoms=3, max_atoms=6):
    num = draw(st.integers(min_atoms, max_atoms))
    atoms = []
    for i in range(num):
        op = draw(st.sampled_from(["=", "<", "<=", ">", ">="]))
        left = VARS[i % len(VARS)]
        if draw(st.booleans()):
            right = VARS[draw(st.integers(0, len(VARS) - 1))]
            if right == left:
                right = const(draw(st.integers(-5, 20)))
        else:
            right = const(draw(st.integers(-5, 20)))
        atoms.append(Comparison(op, left, right))
    return conj(*atoms)


@st.composite
def nested_predicate(draw):
    clause_a = draw(conjunctive_predicate(2, 3))
    clause_b = draw(conjunctive_predicate(2, 3))
    return disj(clause_a, clause_b)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(conjunctive_predicate(), st.integers(0, 10_000))
def test_conjunctive_repairs_are_correct(predicate, seed):
    try:
        injected = inject_errors(predicate, 1, seed=seed)
    except ValueError:
        return
    if SOLVER.is_equiv(injected.wrong, injected.correct):
        return  # mutation happened to be semantics-preserving
    result = repair_where(injected.wrong, injected.correct, solver=SOLVER)
    assert result.found
    assert verify_repair(injected.wrong, injected.correct, result.repair, SOLVER)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(nested_predicate(), st.integers(0, 10_000))
def test_nested_repairs_are_correct(predicate, seed):
    try:
        injected = inject_errors(predicate, 1, seed=seed)
    except ValueError:
        return
    if SOLVER.is_equiv(injected.wrong, injected.correct):
        return
    result = repair_where(
        injected.wrong, injected.correct, max_sites=2, optimized=True,
        solver=SOLVER,
    )
    assert result.found
    assert verify_repair(injected.wrong, injected.correct, result.repair, SOLVER)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(conjunctive_predicate(), st.integers(0, 10_000))
def test_repair_cost_never_exceeds_trivial(predicate, seed):
    try:
        injected = inject_errors(predicate, 1, seed=seed)
    except ValueError:
        return
    if SOLVER.is_equiv(injected.wrong, injected.correct):
        return
    result = repair_where(injected.wrong, injected.correct, solver=SOLVER)
    trivial_cost = 1 / 6 + (
        injected.wrong.size() + injected.correct.size()
    ) / (injected.wrong.size() + injected.correct.size())
    assert result.cost <= trivial_cost + 1e-9


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(conjunctive_predicate(), st.integers(0, 10_000))
def test_bounds_contain_all_single_site_fixes(predicate, seed):
    """Lemma 5.3 property: any replacement stays within CreateBounds."""
    import random

    rng = random.Random(seed)
    paths = [p for p, _ in all_paths(predicate)]
    site = rng.choice(paths)
    lower, upper = create_bounds(predicate, [site])
    replacement = rng.choice(
        [Comparison("=", VARS[0], const(1)), Comparison("<", VARS[1], VARS[2])]
    )
    repaired = replace_at(predicate, {site: replacement})
    assert SOLVER.in_bound(lower, repaired, upper)
