"""Tests for repro.logic.formulas."""

import pytest

from repro.logic.formulas import (
    And,
    Comparison,
    FALSE,
    Not,
    Or,
    TRUE,
    conj,
    disj,
    iff,
    implies,
    neg,
    xor,
)
from repro.logic.terms import const, intvar

A = Comparison("=", intvar("a"), intvar("b"))
B = Comparison("<", intvar("c"), const(5))
C = Comparison(">=", intvar("d"), const(0))


class TestComparison:
    def test_atom_size_is_one(self):
        assert A.size() == 1

    def test_negated_operator_table(self):
        assert Comparison("<", intvar("x"), const(1)).negated().op == ">="
        assert Comparison("=", intvar("x"), const(1)).negated().op == "<>"
        assert Comparison("LIKE", intvar("x"), const("a")).negated().op == "NOT LIKE"

    def test_double_negation_is_identity(self):
        assert A.negated().negated() == A

    def test_flipped(self):
        flipped = Comparison("<", intvar("x"), intvar("y")).flipped()
        assert flipped.op == ">"
        assert str(flipped) == "y > x"

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            Comparison("===", intvar("x"), intvar("y"))


class TestSmartConstructors:
    def test_conj_flattens(self):
        result = conj(A, conj(B, C))
        assert isinstance(result, And)
        assert len(result.operands) == 3

    def test_conj_identity(self):
        assert conj(A, TRUE) == A
        assert conj() == TRUE

    def test_conj_annihilator(self):
        assert conj(A, FALSE) == FALSE

    def test_disj_flattens(self):
        result = disj(disj(A, B), C)
        assert isinstance(result, Or)
        assert len(result.operands) == 3

    def test_disj_identity(self):
        assert disj(A, FALSE) == A
        assert disj() == FALSE

    def test_disj_annihilator(self):
        assert disj(A, TRUE) == TRUE

    def test_neg_constants(self):
        assert neg(TRUE) == FALSE
        assert neg(FALSE) == TRUE

    def test_neg_atom_folds_into_operator(self):
        assert neg(A) == A.negated()

    def test_neg_double(self):
        inner = And((A, B))
        assert neg(neg(inner)) == inner

    def test_operators_overloads(self):
        assert (A & B) == conj(A, B)
        assert (A | B) == disj(A, B)
        assert (~A) == neg(A)

    def test_nary_requires_two_children(self):
        with pytest.raises(ValueError):
            And((A,))
        with pytest.raises(ValueError):
            Or((A,))


class TestSizeAndCollections:
    def test_size_matches_paper_example5(self):
        # P from Example 5 has 12 nodes (Figure 1b).
        a, b, c, d, e, f = (intvar(x) for x in "abcdef")
        p = (Comparison("=", a, c) & (Comparison("<>", d, e) | Comparison(">", d, f))) | (
            Comparison("=", a, c)
            & (
                Comparison(">", d, const(11))
                | Comparison("<", d, const(7))
                | Comparison("<=", e, const(5))
            )
        )
        assert p.size() == 12

    def test_atoms_in_order(self):
        formula = (A & B) | C
        assert formula.atoms() == [A, B, C]

    def test_variables(self):
        formula = A & B
        names = {v.name for v in formula.variables()}
        assert names == {"a", "b", "c"}

    def test_not_size(self):
        assert Not(And((A, B))).size() == 4


class TestDerivedConnectives:
    def test_implies_shape(self):
        formula = implies(A, B)
        assert isinstance(formula, Or)

    def test_iff_symmetric_structure(self):
        formula = iff(A, B)
        assert isinstance(formula, And)

    def test_xor_structure(self):
        formula = xor(A, B)
        assert isinstance(formula, Or)
        assert len(formula.operands) == 2
