"""Tests for the Boolean minimization substrate."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.boolmin import (
    DONT_CARE,
    TruthTable,
    implicant_covers,
    implicant_literals,
    min_bool_exp,
    minimize_table,
    prime_implicants,
)
from repro.logic.evaluate import eval_formula
from repro.logic.formulas import Comparison, FALSE, TRUE
from repro.logic.terms import const, intvar

ATOMS = [Comparison("=", intvar(f"v{i}"), const(1)) for i in range(4)]


class TestPrimeImplicants:
    def test_single_minterm(self):
        primes = prime_implicants([0b01], [], 2)
        assert primes == [(1, 0)]

    def test_full_cover_merges_to_tautology(self):
        primes = prime_implicants([0, 1, 2, 3], [], 2)
        assert primes == [(0, 3)]  # one implicant with all dashes

    def test_xor_has_no_merges(self):
        primes = prime_implicants([0b01, 0b10], [], 2)
        assert (1, 0) in primes and (2, 0) in primes
        assert len(primes) == 2

    def test_dont_cares_enable_merging(self):
        # on={01}, dc={11}: primes include x1 with v0 dashed? 01 and 11
        # differ in bit 1 -> implicant (1, 2).
        primes = prime_implicants([0b01], [0b11], 2)
        assert (1, 2) in primes

    def test_implicant_covers(self):
        assert implicant_covers((1, 2), 0b01)
        assert implicant_covers((1, 2), 0b11)
        assert not implicant_covers((1, 2), 0b00)

    def test_implicant_literals(self):
        assert implicant_literals((1, 2), 2) == 1
        assert implicant_literals((0, 3), 2) == 0


class TestCoverSelection:
    def test_essential_primes_chosen(self):
        table = TruthTable(2, {0b00: 1, 0b01: 1, 0b11: 1})
        cover = minimize_table(table)
        # Optimal: (!v1) + (v0) -> two implicants of one literal each.
        assert len(cover) == 2
        assert all(implicant_literals(p, 2) == 1 for p in cover)

    def test_all_zero_gives_empty_cover(self):
        table = TruthTable(2, {m: 0 for m in range(4)})
        assert minimize_table(table) == []

    def test_dc_only_rows_not_required(self):
        table = TruthTable(2, {0b00: 1, 0b11: DONT_CARE})
        cover = minimize_table(table)
        for m in [0b00]:
            assert any(implicant_covers(p, m) for p in cover)


class TestMinBoolExp:
    def test_constant_false(self):
        table = TruthTable(1, {0: 0, 1: 0})
        assert min_bool_exp(table, ATOMS[:1]) == FALSE

    def test_constant_true(self):
        table = TruthTable(1, {0: 1, 1: 1})
        assert min_bool_exp(table, ATOMS[:1]) == TRUE

    def test_identity(self):
        table = TruthTable(1, {0: 0, 1: 1})
        assert min_bool_exp(table, ATOMS[:1]) == ATOMS[0]

    def test_negation(self):
        table = TruthTable(1, {0: 1, 1: 0})
        assert min_bool_exp(table, ATOMS[:1]) == ATOMS[0].negated()

    def test_paper_example_14(self):
        # Variables: a>=b (0), f=e (1), a=b (2), a>b (3); expected result a>=b.
        rows = {
            0b0000: 0, 0b1000: DONT_CARE, 0b0100: DONT_CARE, 0b1100: DONT_CARE,
            0b0010: DONT_CARE, 0b1010: DONT_CARE, 0b0110: DONT_CARE,
            0b1110: DONT_CARE, 0b0001: DONT_CARE, 0b1001: DONT_CARE,
            0b0101: 1, 0b1101: DONT_CARE, 0b0011: DONT_CARE, 0b1011: 1,
            0b0111: 1, 0b1111: DONT_CARE,
        }
        a, b, e, f = intvar("a"), intvar("b"), intvar("e"), intvar("f")
        atoms = [
            Comparison(">=", a, b),
            Comparison("=", f, e),
            Comparison("=", a, b),
            Comparison(">", a, b),
        ]
        assert min_bool_exp(TruthTable(4, rows), atoms) == atoms[0]


def _random_table(data):
    outputs = {}
    for i, v in enumerate(data):
        outputs[i] = DONT_CARE if v == 2 else v
    return TruthTable(3, outputs)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=8, max_size=8))
def test_minimized_formula_matches_specified_rows(data):
    """Property: the minimized cover agrees with every non-DC row."""
    table = _random_table(data)
    cover = minimize_table(table)
    for minterm in range(8):
        expected = table.output(minterm)
        if expected == DONT_CARE:
            continue
        covered = any(implicant_covers(p, minterm) for p in cover)
        assert covered == bool(expected)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=8, max_size=8))
def test_formula_rendering_consistent_with_cover(data):
    """Property: the rendered formula evaluates like the implicant cover."""
    table = _random_table(data)
    cover = minimize_table(table)
    atoms = [Comparison("=", intvar(f"w{i}"), const(1)) for i in range(3)]
    formula = min_bool_exp(table, atoms)
    for assignment in itertools.product([0, 1], repeat=3):
        env = {f"w{i}": assignment[i] for i in range(3)}
        minterm = sum(bit << i for i, bit in enumerate(assignment))
        expected = any(implicant_covers(p, minterm) for p in cover)
        assert eval_formula(formula, env) == expected
