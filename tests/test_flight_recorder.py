"""Tests for the flight recorder: journal core, event sources, surfaces.

The journal is a process-wide singleton (``repro.obs.JOURNAL``), so
event-source tests clear it first and assert on the kinds recorded
during the action under test -- other instrumentation may interleave
events, which is exactly what production dumps look like.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.catalog import Catalog
from repro.obs import CHRONO_SAMPLE, JOURNAL, Journal
from repro.service.server import make_server
from repro.service.session import AssignmentSession
from repro.solver.sat import SatSolver
from repro.sqlparser.rewrite import parse_query_extended
from repro.witness import generate_witness

SCHEMA = {
    "Serves": [["bar", "STRING"], ["beer", "STRING"], ["price", "FLOAT"]],
}
TARGET = "SELECT bar FROM Serves WHERE price > 10"
WRONG = "SELECT bar FROM Serves WHERE price > 5"


def catalog():
    return Catalog.from_spec(SCHEMA)


def kinds(events):
    return [event["kind"] for event in events]


# ---------------------------------------------------------------------------
# Journal core


class TestJournalCore:
    def test_ring_is_bounded_and_counts_drops(self):
        journal = Journal(capacity=4)
        for i in range(10):
            journal.record("tick", i=i)
        assert len(journal) == 4
        assert journal.dropped == 6
        events = journal.tail()
        # Oldest first, monotone sequence, newest survive.
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)

    def test_tail_n_and_zero(self):
        journal = Journal(capacity=8)
        for i in range(5):
            journal.record("tick", i=i)
        assert [e["i"] for e in journal.tail(2)] == [3, 4]
        assert journal.tail(0) == []
        assert len(journal.tail(99)) == 5

    def test_disabled_records_nothing(self):
        journal = Journal(capacity=8)
        journal.enabled = False
        assert journal.record("tick") == 0
        assert len(journal) == 0
        journal.enabled = True
        assert journal.record("tick") > 0

    def test_clear_resets_buffer_and_drop_count(self):
        journal = Journal(capacity=2)
        for _ in range(5):
            journal.record("tick")
        journal.clear()
        assert len(journal) == 0 and journal.dropped == 0
        # The sequence keeps counting across clears.
        assert journal.record("tick") > 5

    def test_stats_shape(self):
        journal = Journal(capacity=16)
        journal.record("tick")
        assert journal.stats() == {
            "capacity": 16, "size": 1, "dropped": 0, "enabled": True,
        }

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Journal(capacity=0)

    def test_events_are_json_safe(self):
        journal = Journal(capacity=8)
        journal.record("cache.evict", key="abc", evicted=2)
        round_tripped = json.loads(json.dumps(journal.tail()))
        assert round_tripped[0]["kind"] == "cache.evict"
        assert round_tripped[0]["evicted"] == 2

    def test_render_one_line_per_event_with_sorted_fields(self):
        journal = Journal(capacity=8)
        journal.record("http.finish", status=200, ms=1.5, route="/grade")
        (line,) = journal.render()
        assert "http.finish" in line
        # Fields render sorted by name after the kind.
        assert line.index("ms=1.5") < line.index("route=/grade")
        assert line.index("route=/grade") < line.index("status=200")

    def test_dump_writes_header_and_reason(self):
        journal = Journal(capacity=8)
        journal.record("tick", i=1)
        stream = io.StringIO()
        journal.dump(stream=stream, n=10, reason="unhandled KeyError")
        text = stream.getvalue()
        assert text.startswith("--- journal (last 1 events; "
                               "unhandled KeyError) ---")
        assert text.rstrip().endswith("--- end journal ---")
        assert "tick" in text

    def test_concurrent_recording_stays_bounded(self):
        journal = Journal(capacity=64)

        def hammer():
            for i in range(500):
                journal.record("tick", i=i)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(journal) == 64
        events = journal.tail()
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)


# ---------------------------------------------------------------------------
# Event sources


class TestSolverEvents:
    def test_chrono_events_are_sampled(self):
        # Enumerating 2**13 models drives thousands of chronological
        # backtracks; the journal must see roughly backtracks/4096
        # events, not one per backtrack.
        JOURNAL.clear()
        n = 13
        solver = SatSolver()
        solver.ensure_vars(n)
        models = 0
        while True:
            model = solver.solve()
            if model is None:
                break
            models += 1
            solver.add_clause([-v if model[v] else v for v in range(1, n + 1)])
        assert models == 2**n
        backtracks = solver.stats["chrono_backtracks"]
        assert backtracks >= CHRONO_SAMPLE
        chrono = [e for e in JOURNAL.tail() if e["kind"] == "solver.chrono"]
        assert 1 <= len(chrono) <= backtracks // CHRONO_SAMPLE + 1
        assert chrono[-1]["backtracks"] % CHRONO_SAMPLE == 0

    def test_chrono_silent_when_disabled(self):
        JOURNAL.clear()
        JOURNAL.enabled = False
        try:
            n = 13
            solver = SatSolver()
            solver.ensure_vars(n)
            while True:
                model = solver.solve()
                if model is None:
                    break
                solver.add_clause(
                    [-v if model[v] else v for v in range(1, n + 1)]
                )
            assert solver.stats["chrono_backtracks"] >= CHRONO_SAMPLE
        finally:
            JOURNAL.enabled = True
        assert len(JOURNAL) == 0


class TestCacheEvents:
    def test_miss_then_hit_recorded(self):
        session = AssignmentSession(catalog(), TARGET)
        JOURNAL.clear()
        session.grade(WRONG)
        session.grade(WRONG)
        recorded = kinds(JOURNAL.tail())
        assert "cache.miss" in recorded
        assert "cache.hit" in recorded
        assert recorded.index("cache.miss") < recorded.index("cache.hit")

    def test_eviction_recorded(self):
        session = AssignmentSession(catalog(), TARGET, cache_size=1)
        JOURNAL.clear()
        session.grade(WRONG)
        session.grade("SELECT bar FROM Serves WHERE price > 7")
        events = [e for e in JOURNAL.tail() if e["kind"] == "cache.evict"]
        assert events and events[0]["evicted"] >= 1


class TestWitnessEvents:
    def test_fallback_to_guided_search_recorded(self):
        # Different FROM multisets -> no unification -> the solver-model
        # path is unavailable and the guided-search fallback must fire.
        spec = {
            "Serves": SCHEMA["Serves"],
            "Bars": [["name", "STRING"], ["city", "STRING"]],
        }
        cat = Catalog.from_spec(spec)
        target = parse_query_extended("SELECT bar FROM Serves", cat)
        working = parse_query_extended("SELECT name FROM Bars", cat)
        JOURNAL.clear()
        generate_witness(cat, target, working, seed=0)
        events = [e for e in JOURNAL.tail()
                  if e["kind"] == "witness.fallback"]
        assert events and events[0]["unified"] is False


# ---------------------------------------------------------------------------
# HTTP surface


@pytest.fixture()
def client():
    server = make_server(port=0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"

    class Client:
        base = None

        def post(self, path, payload):
            request = urllib.request.Request(
                base + path, json.dumps(payload).encode(),
                {"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        def get(self, path):
            try:
                with urllib.request.urlopen(base + path) as resp:
                    return resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

    Client.base = base
    try:
        yield Client()
    finally:
        server.shutdown()
        server.server_close()


class TestHttpJournal:
    def _create_and_grade(self, client):
        status, created = client.post(
            "/assignments", {"schema": SCHEMA, "target_sql": TARGET}
        )
        assert status == 201
        status, body = client.post(
            "/grade",
            {"assignment_id": created["assignment_id"], "sql": WRONG},
        )
        assert status == 200
        return body

    def test_request_lifecycle_events(self, client):
        import time

        JOURNAL.clear()
        self._create_and_grade(client)
        # The finish event is journaled *after* the response body is
        # written, so the client can observe the 200 a hair before the
        # handler thread records it -- wait it out.
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            events = JOURNAL.tail()
            finishes = [e for e in events if e["kind"] == "http.finish"]
            if any(e["route"] == "/grade" for e in finishes):
                break
            time.sleep(0.01)
        starts = [e for e in events if e["kind"] == "http.start"]
        assert {e["route"] for e in starts} == {"/assignments", "/grade"}
        grade_finish = [e for e in finishes if e["route"] == "/grade"]
        assert grade_finish and grade_finish[0]["status"] == 200
        assert grade_finish[0]["ms"] >= 0

    def test_error_responses_journaled_with_bounded_route(self, client):
        JOURNAL.clear()
        status, _ = client.get("/no/such/route")
        assert status == 404
        errors = [e for e in JOURNAL.tail() if e["kind"] == "http.error"]
        assert errors and errors[0]["status"] == 404
        # Unknown paths collapse to "other" at record time.
        assert errors[0]["route"] == "other"

    def test_debug_journal_endpoint(self, client):
        self._create_and_grade(client)
        status, body = client.get("/debug/journal?n=5")
        assert status == 200
        assert body["journal"]["capacity"] == JOURNAL.capacity
        assert len(body["events"]) == 5
        assert all("seq" in e and "kind" in e for e in body["events"])

    def test_debug_journal_default_and_bad_n(self, client):
        status, body = client.get("/debug/journal")
        assert status == 200
        assert isinstance(body["events"], list)
        status, body = client.get("/debug/journal?n=bogus")
        assert status == 400
        assert "integer" in body["error"]


# ---------------------------------------------------------------------------
# CLI


class TestJournalCli:
    def test_renders_local_journal(self, capsys):
        from repro.cli import main

        JOURNAL.clear()
        JOURNAL.record("cache.evict", evicted=3)
        assert main(["journal", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "journal:" in out
        assert "cache.evict" in out and "evicted=3" in out

    def test_json_output_round_trips(self, capsys):
        from repro.cli import main

        JOURNAL.clear()
        JOURNAL.record("spill.end", entries=2, bytes=128, duration_ms=0.5)
        assert main(["journal", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["journal"]["size"] == len(JOURNAL)
        assert payload["events"][-1]["kind"] == "spill.end"

    def test_fetches_from_server(self, client, capsys):
        from repro.cli import main

        JOURNAL.record("tick")
        assert main(["journal", "--url", client.base, "-n", "3"]) == 0
        out = capsys.readouterr().out
        assert f"journal @ {client.base}" in out

    def test_unreachable_server_exits_2(self, capsys):
        from repro.cli import main

        assert main(["journal", "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot fetch" in capsys.readouterr().err
