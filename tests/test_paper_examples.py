"""The paper's numbered examples, reproduced end to end.

Each test cites the example it reproduces; together they certify that the
reproduction exhibits the exact behaviours the paper narrates.
"""

import pytest

from repro.core.pipeline import QrHint
from repro.core.where_repair import repair_where, verify_repair
from repro.engine import Database, appear_equivalent, execute
from repro.logic.formulas import Comparison, conj
from repro.logic.terms import AggCall, add, const, intvar, mul
from repro.solver.aggregates import HavingContext, agg_scalar_var
from repro.sqlparser import parse_query


class TestExample1and2:
    """The beer-ranking query and its staged hints."""

    TARGET = """
        SELECT L.beer, S1.bar, COUNT(*)
        FROM Likes L, Frequents F, Serves S1, Serves S2
        WHERE L.drinker = F.drinker AND F.bar = S1.bar AND L.beer = S1.beer
          AND S1.beer = S2.beer AND S1.price <= S2.price
        GROUP BY F.drinker, L.beer, S1.bar
        HAVING F.drinker = 'Amy'
    """

    def test_rank_semantics(self, beers_catalog):
        db = Database(
            beers_catalog,
            {
                "Likes": [("Amy", "Bud"), ("Amy", "Corona")],
                "Frequents": [("Amy", "Joyce", 1), ("Amy", "Tap", 1)],
                "Serves": [
                    ("Joyce", "Bud", 3),
                    ("Tap", "Bud", 2),
                    ("Joyce", "Corona", 5),
                ],
            },
        )
        q = parse_query(self.TARGET, beers_catalog)
        rows = dict(((beer, bar), rank) for beer, bar, rank in execute(q, db))
        assert rows[("Bud", "Joyce")] == 1  # highest price -> rank 1
        assert rows[("Bud", "Tap")] == 2

    def test_wrong_fix_would_be_le(self, beers_catalog):
        # The naive "change > to <=" fix is wrong (ranks from the bottom);
        # the correct fix under the s1<->s2 role swap is >=.
        wrong_fix = """
            SELECT s2.beer, s2.bar, COUNT(*)
            FROM Likes, Frequents, Serves s1, Serves s2
            WHERE likes.drinker = 'Amy' AND likes.drinker = frequents.drinker
              AND frequents.bar = s2.bar AND likes.beer = s1.beer
              AND likes.beer = s2.beer AND s1.price <= s2.price
            GROUP BY s2.beer, s2.bar
        """
        right_fix = wrong_fix.replace("s1.price <= s2.price", "s1.price >= s2.price")
        target = parse_query(self.TARGET, beers_catalog)
        assert not appear_equivalent(
            parse_query(wrong_fix, beers_catalog), target, beers_catalog,
            trials=80,
        )
        assert appear_equivalent(
            parse_query(right_fix, beers_catalog), target, beers_catalog,
            trials=80,
        )


class TestExample3:
    def test_redundant_having_max(self, solver):
        # WHERE A > 100 (INT) makes HAVING MAX(A) >= 101 unnecessary.
        a = intvar("t.a")
        where = Comparison(">", a, const(100))
        context = HavingContext(where, []).build({AggCall("MAX", a)})
        max_var = agg_scalar_var(AggCall("MAX", a))
        redundant = Comparison(">=", max_var, const(101))
        assert solver.is_valid(redundant, context)


class TestExamples5Through8:
    """The WHERE-repair running example (Figures 1, Examples 5-8)."""

    @pytest.fixture()
    def predicates(self):
        A, B, C, D, E, F = (intvar(x) for x in "ABCDEF")
        cmp = Comparison
        p_star = (cmp("=", A, C) & (cmp("<", E, const(5)) | cmp(">", D, const(10)) | cmp("<", D, const(7)))) | (
            cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
        )
        p = (cmp("=", A, C) & (cmp("<>", D, E) | cmp(">", D, F))) | (
            cmp("=", A, C)
            & (cmp(">", D, const(11)) | cmp("<", D, const(7)) | cmp("<=", E, const(5)))
        )
        return p, p_star

    def test_example_8_optimized_fixes_are_atomic(self, predicates, solver):
        from repro.core.derive_opt import min_fix_mult

        p, p_star = predicates
        sites = [(0, 0), (1, 1, 0), (1, 1, 2)]
        fixes = min_fix_mult(p, sites, p_star, p_star, solver)
        rendered = sorted(str(f) for f in fixes.values())
        assert rendered == ["A = B", "D > 10", "E < 5"]

    def test_example_8_plain_fixes_correct_but_larger(self, predicates, solver):
        from repro.core.derive_fixes import derive_fixes
        from repro.logic.paths import replace_at

        p, p_star = predicates
        sites = [(0, 0), (1, 1, 0), (1, 1, 2)]
        fixes = derive_fixes(p, sites, p_star, solver)
        repaired = replace_at(p, fixes)
        assert solver.is_equiv(repaired, p_star)
        assert sum(f.size() for f in fixes.values()) >= 3

    def test_search_prefers_cheap_repairs(self, predicates, solver):
        p, p_star = predicates
        result = repair_where(p, p_star, max_sites=3, optimized=True, solver=solver)
        assert result.found
        assert result.cost <= 0.75  # no worse than Example 6's 3-site repair
        assert verify_repair(p, p_star, result.repair, solver)


class TestExample6_1and9:
    def test_grouping_equivalence(self, rs_catalog, solver):
        # GROUP BY B, D vs GROUP BY C+D, C under B=C (Example 6.1/9).
        from repro.core.groupby_stage import fix_grouping

        target = parse_query(
            "SELECT b FROM R, S WHERE b = c GROUP BY b, d", rs_catalog
        )
        working = parse_query(
            "SELECT c FROM R, S WHERE b = c GROUP BY c + d, c", rs_catalog
        )
        assert fix_grouping(
            target.where, working.group_by, target.group_by, solver
        ).viable

    def test_grouping_inequivalent_without_where(self, rs_catalog, solver):
        # Without B=C the two lists are NOT equivalent.
        from repro.core.groupby_stage import fix_grouping
        from repro.logic.formulas import TRUE

        target = parse_query(
            "SELECT b, COUNT(*) FROM R, S GROUP BY b, d", rs_catalog
        )
        working = parse_query(
            "SELECT c, COUNT(*) FROM R, S GROUP BY c + d, c", rs_catalog
        )
        assert not fix_grouping(
            TRUE, working.group_by, target.group_by, solver
        ).viable


class TestExample10and11:
    def test_full_pipeline_declares_equivalent(self, rs_catalog):
        target = """
            SELECT a FROM R, S WHERE a = c AND a > 4 GROUP BY a, b
            HAVING a > b + 3 AND 2 * SUM(d) > 10
        """
        working = """
            SELECT a FROM R, S WHERE a = c GROUP BY a, b, c
            HAVING c > b + 3 AND SUM(d * 2) > 10 AND a > 4
        """
        report = QrHint(rs_catalog, target, working).run()
        assert report.all_passed, report.summary()


class TestExample15Through17:
    def test_constraint_table_fixes(self, solver):
        # P* = a=1 or (b=2 and c=3); P = c=3 or (b=2 and a=1); the optimal
        # fixes swap the two misplaced atoms (Example 17: r1 -> a=1, r2 -> c=3).
        from repro.core.derive_opt import min_fix_mult
        from repro.logic.formulas import disj
        from repro.logic.paths import replace_at

        A, B, C = intvar("a"), intvar("b"), intvar("c")
        cmp = Comparison
        p_star = disj(cmp("=", A, const(1)), conj(cmp("=", B, const(2)), cmp("=", C, const(3))))
        p = disj(cmp("=", C, const(3)), conj(cmp("=", B, const(2)), cmp("=", A, const(1))))
        fixes = min_fix_mult(p, [(0,), (1, 1)], p_star, p_star, solver)
        assert fixes[(0,)] == cmp("=", A, const(1))
        assert fixes[(1, 1)] == cmp("=", C, const(3))
        assert solver.is_equiv(replace_at(p, fixes), p_star)
