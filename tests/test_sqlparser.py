"""Tests for the SQL lexer, parser, and resolver."""

import pytest

from repro.catalog import SqlType
from repro.errors import (
    ParseError,
    ResolutionError,
    TypeError_,
    UnsupportedSQLError,
)
from repro.logic.formulas import And, Comparison, Not, Or, TRUE
from repro.logic.terms import AggCall, Arith, Const, Var
from repro.sqlparser import parse, parse_query
from repro.sqlparser.lexer import tokenize


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.kind for t in tokens[:-1]] == ["keyword"] * 3

    def test_string_literal(self):
        tokens = tokenize("'James Joyce Pub'")
        assert tokens[0].kind == "string"
        assert tokens[0].value == "James Joyce Pub"

    def test_string_escaped_quote(self):
        tokens = tokenize("'O''Brien'")
        assert tokens[0].value == "O'Brien"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("42 2.20")
        assert tokens[0].value == "42"
        assert tokens[1].value == "2.20"

    def test_operators_including_two_char(self):
        tokens = tokenize("<= >= <> != =")
        values = [t.value for t in tokens[:-1]]
        assert values == ["<=", ">=", "<>", "<>", "="]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment\n x")
        assert tokens[1].value == "x"

    def test_dotted_identifier_tokens(self):
        tokens = tokenize("t1.year")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "year"]

    def test_semicolon_ignored(self):
        tokens = tokenize("SELECT x;")
        assert tokens[-2].value == "x"


class TestParser:
    def test_minimal_select(self):
        stmt = parse("SELECT a FROM T")
        assert len(stmt.select_items) == 1
        assert stmt.from_tables[0].table == "T"

    def test_aliases_with_and_without_as(self):
        stmt = parse("SELECT x AS out FROM T AS t1, U u2")
        assert stmt.select_items[0].alias == "out"
        assert stmt.from_tables[0].alias == "t1"
        assert stmt.from_tables[1].alias == "u2"

    def test_and_or_precedence(self):
        stmt = parse("SELECT a FROM T WHERE a = 1 OR b = 2 AND c = 3")
        # OR binds loosest: top node is OR with AND on the right.
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_parenthesized_condition(self):
        stmt = parse("SELECT a FROM T WHERE (a = 1 OR b = 2) AND c = 3")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_parenthesized_arithmetic_not_condition(self):
        stmt = parse("SELECT a FROM T WHERE (a + 1) * 2 > 5")
        assert stmt.where.op == ">"

    def test_not_like(self):
        stmt = parse("SELECT a FROM T WHERE name NOT LIKE 'A%'")
        assert stmt.where.op == "NOT LIKE"

    def test_not_condition(self):
        stmt = parse("SELECT a FROM T WHERE NOT a = 1")
        assert stmt.where.op == "NOT"

    def test_group_by_and_having(self):
        stmt = parse(
            "SELECT a, COUNT(*) FROM T GROUP BY a, b HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 2
        assert stmt.having is not None

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM T").distinct

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(x), COUNT(DISTINCT y) FROM T")
        items = [item.expr for item in stmt.select_items]
        assert items[0].arg is None
        assert items[1].name == "SUM"
        assert items[2].distinct

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a FROM T WHERE a + 2 * b = 7")
        plus = stmt.where.left
        assert plus.op == "+"
        assert plus.right.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT a FROM T WHERE a > -5")
        assert stmt.where.right.op == "-"

    def test_select_star_unsupported(self):
        with pytest.raises(UnsupportedSQLError):
            parse("SELECT * FROM T")

    def test_order_by_unsupported(self):
        with pytest.raises(UnsupportedSQLError):
            parse("SELECT a FROM T ORDER BY a")

    def test_unknown_function_unsupported(self):
        with pytest.raises(UnsupportedSQLError):
            parse("SELECT UPPER(a) FROM T")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM T WHERE a = 1 banana extra")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a WHERE a = 1")


class TestResolver:
    def test_qualified_resolution(self, beers_catalog):
        query = parse_query(
            "SELECT Serves.beer FROM Serves WHERE Serves.price > 2", beers_catalog
        )
        (term,) = [query.select[0]]
        assert isinstance(term, Var)
        assert term.name == "serves.beer"
        assert term.vtype == SqlType.STRING

    def test_unqualified_unique_resolution(self, beers_catalog):
        query = parse_query("SELECT price FROM Serves", beers_catalog)
        assert query.select[0].name == "serves.price"

    def test_ambiguous_column_rejected(self, beers_catalog):
        with pytest.raises(ResolutionError):
            parse_query("SELECT beer FROM Serves, Likes", beers_catalog)

    def test_unknown_table(self, beers_catalog):
        with pytest.raises(ResolutionError):
            parse_query("SELECT x FROM Nope", beers_catalog)

    def test_unknown_column(self, beers_catalog):
        with pytest.raises(ResolutionError):
            parse_query("SELECT vintage FROM Serves", beers_catalog)

    def test_unknown_alias(self, beers_catalog):
        with pytest.raises(ResolutionError):
            parse_query("SELECT z.beer FROM Serves s", beers_catalog)

    def test_duplicate_alias_rejected(self, beers_catalog):
        with pytest.raises(ResolutionError):
            parse_query("SELECT s.beer FROM Serves s, Likes s", beers_catalog)

    def test_default_alias_is_table_name(self, beers_catalog):
        query = parse_query("SELECT beer FROM Serves", beers_catalog)
        assert query.from_entries[0].alias == "serves"

    def test_type_mismatch_comparison(self, beers_catalog):
        with pytest.raises(TypeError_):
            parse_query("SELECT beer FROM Serves WHERE beer = 3", beers_catalog)

    def test_like_requires_strings(self, beers_catalog):
        with pytest.raises(TypeError_):
            parse_query("SELECT beer FROM Serves WHERE price LIKE 'x'", beers_catalog)

    def test_arithmetic_on_strings_rejected(self, beers_catalog):
        with pytest.raises(TypeError_):
            parse_query("SELECT beer + 1 FROM Serves", beers_catalog)

    def test_aggregate_in_where_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query(
                "SELECT beer FROM Serves WHERE COUNT(*) > 1", beers_catalog
            )

    def test_nested_aggregates_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query("SELECT SUM(COUNT(*)) FROM Serves", beers_catalog)

    def test_having_nongrouped_column_rejected(self, beers_catalog):
        with pytest.raises(UnsupportedSQLError):
            parse_query(
                "SELECT bar FROM Serves GROUP BY bar HAVING price > 2",
                beers_catalog,
            )

    def test_missing_where_defaults_true(self, beers_catalog):
        query = parse_query("SELECT beer FROM Serves", beers_catalog)
        assert query.where == TRUE

    def test_where_becomes_formula_tree(self, beers_catalog):
        query = parse_query(
            "SELECT beer FROM Serves WHERE price > 1 AND price < 3 AND bar = 'x'",
            beers_catalog,
        )
        assert isinstance(query.where, And)
        assert len(query.where.operands) == 3  # flattened n-ary AND

    def test_spja_detection(self, beers_catalog):
        spj = parse_query("SELECT beer FROM Serves", beers_catalog)
        spja = parse_query(
            "SELECT bar, COUNT(*) FROM Serves GROUP BY bar", beers_catalog
        )
        assert not spj.is_spja
        assert spja.is_spja
        distinct = parse_query("SELECT DISTINCT beer FROM Serves", beers_catalog)
        assert distinct.is_spja

    def test_float_literal(self, beers_catalog):
        query = parse_query(
            "SELECT beer FROM Serves WHERE price > 2.20", beers_catalog
        )
        atom = query.where
        assert atom.right.type == SqlType.FLOAT

    def test_roundtrip_to_sql_reparses(self, beers_catalog):
        sql = (
            "SELECT likes.drinker FROM Likes, Frequents "
            "WHERE likes.drinker = frequents.drinker AND frequents.times_a_week >= 2"
        )
        query = parse_query(sql, beers_catalog)
        again = parse_query(query.to_sql(), beers_catalog)
        assert again.where == query.where
        assert again.select == query.select
