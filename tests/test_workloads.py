"""Tests for the workload generators (Students+, Brass, TPC-H, DBLP)."""

from collections import Counter

import pytest

from repro.core.pipeline import QrHint
from repro.sqlparser import parse_query
from repro.workloads import beers, brass, dblp, tpch, userstudy
from repro.workloads.inject import inject_errors


class TestBeersWorkload:
    def test_dataset_size_matches_paper(self):
        # 306 supported wrong queries (Section 9, Students).
        assert len(beers.students_dataset()) == 306

    def test_per_question_counts_match_table4(self):
        data = beers.students_dataset()
        by_question = Counter(e.question for e in data)
        assert by_question["a"] == 22
        assert by_question["b"] == 123  # 126 minus 3 unsupported
        assert by_question["c"] == 123  # 143 minus 20 unsupported
        assert by_question["d1"] + by_question["d2"] == 38  # 50 minus 12

    def test_clause_distribution_matches_table4(self):
        data = beers.students_dataset()
        where_b = sum(1 for e in data if e.question == "b" and e.clause == "WHERE")
        assert where_b == 96

    def test_all_queries_parse(self):
        catalog = beers.catalog()
        for entry in beers.students_dataset():
            parse_query(entry.wrong_sql, catalog)
            parse_query(entry.target_sql, catalog)

    def test_wrong_queries_differ_from_targets(self):
        for entry in beers.students_dataset():
            assert entry.wrong_sql != entry.target_sql

    def test_deterministic_given_seed(self):
        a = beers.students_dataset(seed=3)
        b = beers.students_dataset(seed=3)
        assert [e.wrong_sql for e in a] == [e.wrong_sql for e in b]

    def test_solutions_answer_questions(self):
        assert set(beers.QUESTIONS) == {"a", "b", "c", "d1", "d2"}


class TestBrassCatalog:
    def test_43_issues_total(self):
        assert len(brass.ISSUES) == 43

    def test_support_partition_matches_table5(self):
        # 25 supported / 18 unsupported.
        assert len(brass.supported_issues()) == 25
        assert len(brass.unsupported_issues()) == 18

    def test_eleven_logical_errors(self):
        assert len(brass.issues_by_handling(brass.LOGICAL)) == 11

    def test_supported_examples_parse(self):
        catalog = beers.catalog()
        for issue in brass.supported_issues():
            if issue.working_sql is None:
                continue
            parse_query(issue.working_sql, catalog)
            parse_query(issue.reference_sql, catalog)

    def test_handcrafted_pairs_two_per_issue(self):
        pairs = brass.handcrafted_pairs()
        counts = Counter(issue.number for issue, _, _ in pairs)
        assert all(count == 2 for count in counts.values())

    def test_logical_errors_are_flagged(self):
        catalog = beers.catalog()
        for issue in brass.issues_by_handling(brass.LOGICAL):
            if issue.working_sql is None:
                continue
            report = QrHint(catalog, issue.reference_sql, issue.working_sql).run()
            assert not report.all_passed, f"issue {issue.number} not flagged"

    def test_style_correct_issues_stay_silent(self):
        catalog = beers.catalog()
        for issue in brass.issues_by_handling(brass.STYLE_OK):
            if issue.working_sql is None:
                continue
            report = QrHint(catalog, issue.reference_sql, issue.working_sql).run()
            assert report.all_passed, f"issue {issue.number} wrongly flagged"


class TestTpchWorkload:
    def test_conjunct_counts_match_paper(self):
        # Atom counts 4,5,6,7,8,9,10,11 for the conjunctive set.
        counts = [q.num_atoms for q in tpch.CONJUNCTIVE_QUERIES]
        assert counts == [4, 5, 6, 7, 8, 9, 10, 11]

    def test_declared_counts_are_accurate(self):
        for query in tpch.CONJUNCTIVE_QUERIES:
            resolved = query.resolve()
            assert len(resolved.where.atoms()) == query.num_atoms, query.name

    def test_q7_is_nested(self):
        resolved = tpch.Q7_NESTED.resolve()
        from repro.logic.formulas import Or

        kinds = [type(node).__name__ for _, node in _walk(resolved.where)]
        assert "Or" in kinds  # nested AND/OR structure

    def test_q7_unique_atom_count(self, solver):
        # The paper fixes 10 unique atomic predicates for the Figure 3 runs.
        from repro.core.minfix import map_atom_preds

        resolved = tpch.Q7_NESTED.resolve()
        mapping = map_atom_preds([resolved.where], solver)
        assert mapping.num_vars == 10

    def test_all_queries_resolve(self):
        for query in tpch.ALL_QUERIES:
            resolved = query.resolve()
            assert resolved.from_entries


def _walk(formula):
    from repro.logic.paths import all_paths

    return all_paths(formula)


class TestErrorInjection:
    def test_injection_count(self):
        predicate = tpch.Q5.resolve().where
        injected = inject_errors(predicate, 2, seed=1)
        assert len(injected.injections) == 2

    def test_wrong_differs_from_correct(self, solver):
        predicate = tpch.Q3.resolve().where
        injected = inject_errors(predicate, 1, seed=5)
        assert not solver.is_equiv(injected.wrong, injected.correct)

    def test_ground_truth_repair_restores(self, solver):
        predicate = tpch.Q10.resolve().where
        injected = inject_errors(predicate, 2, seed=2)
        repaired = injected.ground_truth_repair().apply(injected.wrong)
        assert solver.is_equiv(repaired, injected.correct)

    def test_deterministic(self):
        predicate = tpch.Q4.resolve().where
        a = inject_errors(predicate, 2, seed=9)
        b = inject_errors(predicate, 2, seed=9)
        assert str(a.wrong) == str(b.wrong)

    def test_sites_disjoint(self):
        predicate = tpch.Q21.resolve().where
        injected = inject_errors(predicate, 4, seed=3)
        from repro.logic.paths import paths_disjoint

        assert paths_disjoint([inj.path for inj in injected.injections])

    def test_too_many_errors_rejected(self):
        predicate = tpch.Q4.resolve().where
        with pytest.raises(ValueError):
            inject_errors(predicate, 50, seed=0)

    def test_ground_truth_cost_positive(self):
        predicate = tpch.Q9.resolve().where
        injected = inject_errors(predicate, 2, seed=4)
        assert injected.ground_truth_cost() > 0

    def test_string_constant_mutation(self, solver):
        # Q3's mktsegment = 'BUILDING' atom is a string-typo candidate.
        predicate = tpch.Q3.resolve().where
        for seed in range(6):
            injected = inject_errors(predicate, 1, seed=seed,
                                     kinds=("constant",))
            inj = injected.injections[0]
            assert inj.kind == "constant"
            assert not solver.is_equiv(injected.wrong, injected.correct)

    def test_kinds_filter_restricts_families(self):
        predicate = tpch.Q5.resolve().where
        for seed in range(8):
            injected = inject_errors(predicate, 2, seed=seed,
                                     kinds=("operator-flip",))
            assert all(i.kind == "operator-flip" for i in injected.injections)

    def test_ground_truth_invariants_across_kinds(self, solver):
        # Every mutation family must satisfy the by-construction contract:
        # positive cost, and the ground-truth repair restores equivalence.
        predicate = tpch.Q10.resolve().where
        seen_kinds = set()
        for seed in range(12):
            injected = inject_errors(predicate, 1, seed=seed,
                                     allow_operator_swap=True)
            inj = injected.injections[0]
            seen_kinds.add(inj.kind)
            assert injected.ground_truth_cost() > 0
            repaired = injected.ground_truth_repair().apply(injected.wrong)
            assert solver.is_equiv(repaired, injected.correct)
        assert len(seen_kinds) >= 3  # the pool exercises several families

    def test_string_mutation_deterministic(self):
        predicate = tpch.Q3.resolve().where
        a = inject_errors(predicate, 1, seed=11, kinds=("constant",))
        b = inject_errors(predicate, 1, seed=11, kinds=("constant",))
        assert str(a.wrong) == str(b.wrong)


class TestDblpWorkload:
    def test_four_questions(self):
        assert [q.qid for q in dblp.QUESTIONS] == ["Q1", "Q2", "Q3", "Q4"]

    def test_queries_parse(self, dblp_catalog):
        for question in dblp.QUESTIONS:
            parse_query(question.correct_sql, dblp_catalog)
            parse_query(question.wrong_sql, dblp_catalog)

    def test_hint_sources(self):
        q4 = dblp.QUESTIONS[3]
        sources = {h.source for h in q4.hints}
        assert sources == {"TA", "Qr-Hint"}

    def test_error_clause_metadata(self):
        assert dblp.QUESTIONS[0].error_clauses == ("WHERE", "WHERE")
        assert dblp.QUESTIONS[1].error_clauses == ("GROUP BY", "SELECT")


class TestUserStudySimulation:
    def test_hints_help_on_q1(self):
        q1 = dblp.QUESTIONS[0]
        none = userstudy.simulate_identification(q1, "none", 200, seed=1)
        hinted = userstudy.simulate_identification(q1, "qrhint", 200, seed=1)
        assert hinted.at_least_one_rate > none.at_least_one_rate + 0.3

    def test_hints_help_on_q2(self):
        q2 = dblp.QUESTIONS[1]
        none = userstudy.simulate_identification(q2, "none", 400, seed=2)
        hinted = userstudy.simulate_identification(q2, "qrhint", 400, seed=2)
        assert hinted.at_least_one_rate > none.at_least_one_rate

    def test_qrhint_votes_mostly_helpful(self):
        q4 = dblp.QUESTIONS[3]
        by_source, _ = userstudy.simulate_votes(q4, 500, seed=3)
        qr = by_source["Qr-Hint"]
        assert qr.share("Helpful") > qr.share("Obvious")
        assert qr.share("Helpful") > qr.share("Unhelpful")

    def test_ta_votes_more_varied(self):
        q4 = dblp.QUESTIONS[3]
        by_source, _ = userstudy.simulate_votes(q4, 500, seed=4)
        ta = by_source["TA"]
        qr = by_source["Qr-Hint"]
        assert ta.share("Helpful") < qr.share("Helpful")

    def test_full_study_structure(self):
        result = userstudy.run_full_study(participants_per_arm=10, seed=0)
        assert set(result["identification"]) == {"Q1", "Q2"}
        assert set(result["votes"]) == {"Q3", "Q4"}

    def test_deterministic(self):
        a = userstudy.run_full_study(participants_per_arm=5, seed=7)
        b = userstudy.run_full_study(participants_per_arm=5, seed=7)
        assert (
            a["identification"]["Q1"]["none"].at_least_one
            == b["identification"]["Q1"]["none"].at_least_one
        )
