"""Shared fixtures for the test suite."""

import pytest

from repro.catalog import Catalog
from repro.solver import Solver
from repro.workloads import beers, dblp, tpch


@pytest.fixture(scope="session")
def solver():
    """A session-wide solver; caches accumulate across tests."""
    return Solver()


@pytest.fixture(scope="session")
def beers_catalog():
    return beers.catalog()


@pytest.fixture(scope="session")
def tpch_catalog():
    return tpch.catalog()


@pytest.fixture(scope="session")
def dblp_catalog():
    return dblp.catalog()


@pytest.fixture()
def rs_catalog():
    """The R(A,B) / S(C,D) integer schema used by paper Examples 6.1/10."""
    return Catalog.from_spec(
        {
            "R": [("a", "INT"), ("b", "INT")],
            "S": [("c", "INT"), ("d", "INT")],
        }
    )
