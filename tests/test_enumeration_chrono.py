"""Enumeration-path tests for the chronological SAT engine.

Three regression areas for the enumeration rebuild:

* **enumeration equivalence fuzz** -- blocking-clause model enumeration
  must produce exactly the brute-force model set, never repeat a model,
  and the one-flip condensation must keep the live blocking set far
  below the number of enumerated models;
* **trail-saving invariants** -- add_clause/solve interleavings (with
  restarts forced on) stay correct, and a pinned scenario exercises the
  saved-suffix replay (``saved_trail_literals``);
* **MinFix core-guided pruning** -- the pruned truth-table DFS yields
  tables and fixes identical to an unpruned run, and the
  ``core_pruned_subtrees`` counter fires on infeasible atom combinations.
"""

import itertools
import random

from repro.core.minfix import (
    _FeasibilityChecker,
    build_truth_table,
    map_atom_preds,
    min_fix,
)
from repro.logic.formulas import Comparison, conj, disj
from repro.logic.terms import const, intvar
from repro.solver import Solver
from repro.solver.sat import SatSolver

A, B, C = (intvar(x) for x in "ABC")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


def _brute_models(clauses, num_vars):
    """Reference: the full model set by exhaustive enumeration."""
    models = set()
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {i + 1: bits[i] for i in range(num_vars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            models.add(bits)
    return models


def _random_cnf(rng, num_vars, num_clauses):
    return [
        [rng.choice([1, -1]) * rng.randint(1, num_vars)
         for _ in range(rng.randint(1, 3))]
        for _ in range(num_clauses)
    ]


def _live_permanent_clauses(solver):
    """Live permanent clauses surviving condensation (masks per key)."""
    return sum(len(bucket) for bucket in solver._clause_index.values())


def _enumerate_models(solver, num_vars):
    """All models via blocking clauses; returns (models, max_live)."""
    models = set()
    max_live = 0
    while True:
        model = solver.solve()
        if model is None:
            return models, max_live
        bits = tuple(model[v] for v in range(1, num_vars + 1))
        assert bits not in models, "enumeration repeated a model"
        models.add(bits)
        solver.add_clause(
            [-v if model[v] else v for v in range(1, num_vars + 1)]
        )
        max_live = max(max_live, _live_permanent_clauses(solver))


class TestEnumerationEquivalenceFuzz:
    def test_unconstrained_space_condenses(self):
        # 2^7 models over an empty clause DB.  Condensation must
        # telescope sibling blocking clauses, so the live blocking set
        # stays around num_vars instead of growing with every model.
        n = 7
        solver = SatSolver()
        solver.ensure_vars(n)
        models, max_live = _enumerate_models(solver, n)
        assert len(models) == 2 ** n
        assert max_live <= 2 * n, (
            f"condensation not engaged: {max_live} live blocking clauses"
        )
        assert solver.stats["chrono_backtracks"] > 0

    def test_fuzz_matches_brute_force(self):
        rng = random.Random(0xE17)
        condensed = False
        for _ in range(120):
            n = rng.randint(3, 8)
            clauses = _random_cnf(rng, n, rng.randint(1, 2 * n))
            solver = SatSolver()
            solver.ensure_vars(n)
            for clause in clauses:
                solver.add_clause(clause)
            baseline = _live_permanent_clauses(solver)
            models, max_live = _enumerate_models(solver, n)
            assert models == _brute_models(clauses, n), clauses
            if len(models) >= 16 and max_live - baseline < len(models) // 2:
                condensed = True
        assert condensed, "no fuzz case exercised condensation"

    def test_fuzz_with_restarts_and_reduction_forced(self):
        # Same equivalence under tiny restart/reduction limits: learned
        # clauses come and go mid-enumeration, but permanent blocking
        # clauses (and their condensed resolvents) must keep every
        # enumerated model excluded.
        rng = random.Random(0x5EED)
        for _ in range(40):
            n = rng.randint(3, 7)
            clauses = _random_cnf(rng, n, rng.randint(1, 2 * n))
            solver = SatSolver(restart_base=1, reduce_base=4)
            solver.ensure_vars(n)
            for clause in clauses:
                solver.add_clause(clause)
            models, _ = _enumerate_models(solver, n)
            assert models == _brute_models(clauses, n), clauses


class TestTrailSavingInvariants:
    def test_saved_suffix_replay_fires(self):
        # A clause added against a deep trail becomes unit with shallow
        # false watches; shrinking the assumption suffix pops its
        # propagation, but no watch is newly falsified afterwards, so
        # normal BCP never re-derives it -- only the saved-trail replay
        # does.  The counter must record that re-propagation.
        solver = SatSolver()
        solver.ensure_vars(9)
        solver.add_clause([7, 8])  # keeps a real decision point in play
        assert solver.solve([1, 2, 5]) is not None
        solver.add_clause([-1, -2, 9])  # unit under 1, 2: forces 9
        model = solver.solve([1, 2, 5])
        assert model is not None and model[9] is True
        fired = solver.stats["saved_trail_literals"]
        model = solver.solve([1, 2, 6])  # pops level 3, replays 9
        assert model is not None and model[9] is True
        assert solver.stats["saved_trail_literals"] > fired
        assert solver.stats["chrono_backtracks"] > 0

    def test_add_clause_solve_interleavings_stay_correct(self):
        # Replayed literals must never leak into a model that violates a
        # clause added after the trail was saved.
        rng = random.Random(0x7A11)
        for _ in range(80):
            n = rng.randint(3, 9)
            solver = SatSolver(restart_base=2, reduce_base=6)
            solver.ensure_vars(n)
            accumulated = []
            counters = dict(solver.stats)
            for _ in range(rng.randint(3, 7)):
                for clause in _random_cnf(rng, n, rng.randint(1, 2)):
                    accumulated.append(clause)
                    solver.add_clause(clause)
                picked = rng.sample(range(1, n + 1), rng.randint(0, 3))
                assumptions = [rng.choice([1, -1]) * v for v in picked]
                model = solver.solve(assumptions)
                reference = _brute_models(
                    accumulated + [[a] for a in assumptions], n
                )
                assert (model is None) == (not reference)
                if model is not None:
                    for clause in accumulated:
                        assert any(model[abs(l)] == (l > 0) for l in clause)
                    for lit in assumptions:
                        assert model[abs(lit)] == (lit > 0)
                for key, value in solver.stats.items():
                    assert value >= counters[key], f"{key} went backwards"
                counters = dict(solver.stats)


class TestMinFixCorePruning:
    def _contradictory_bounds(self):
        # a1 = A<5 and a2 = A>10 can never hold together: every DFS
        # subtree assigning both true is prunable from one unsat core.
        a1 = cmp("<", A, const(5))
        a2 = cmp(">", A, const(10))
        a3 = cmp("=", B, const(1))
        a4 = cmp("=", C, const(2))
        lower = conj(a1, a3) | conj(a2, a4)
        upper = disj(conj(a1, a3), conj(a2, a4), cmp("=", B, C))
        return lower, upper

    def test_counter_fires_on_infeasible_atoms(self):
        solver = Solver()
        lower, upper = self._contradictory_bounds()
        mapping = map_atom_preds([lower, upper], solver)
        build_truth_table(mapping, lower, upper, solver)
        assert solver.stats["core_pruned_subtrees"] > 0

    def test_pruned_table_identical_to_unpruned(self, monkeypatch):
        lower, upper = self._contradictory_bounds()

        pruned_solver = Solver()
        mapping = map_atom_preds([lower, upper], pruned_solver)
        pruned = build_truth_table(mapping, lower, upper, pruned_solver)
        assert pruned_solver.stats["core_pruned_subtrees"] > 0

        # Disable core recording: the checker then answers every prefix
        # with a real feasibility call, as before the optimisation.
        monkeypatch.setattr(
            _FeasibilityChecker, "_add_core", lambda self, mask, bits: None
        )
        plain_solver = Solver()
        mapping2 = map_atom_preds([lower, upper], plain_solver)
        plain = build_truth_table(mapping2, lower, upper, plain_solver)
        assert plain_solver.stats["core_pruned_subtrees"] == 0

        assert mapping.num_vars == mapping2.num_vars
        for row in range(1 << mapping.num_vars):
            assert pruned.output(row) == plain.output(row), row

    def test_min_fix_unchanged_by_pruning(self, monkeypatch):
        lower, upper = self._contradictory_bounds()
        with_cores = min_fix(lower, upper, Solver())
        monkeypatch.setattr(
            _FeasibilityChecker, "_add_core", lambda self, mask, bits: None
        )
        without_cores = min_fix(lower, upper, Solver())
        assert with_cores == without_cores
        checker = Solver()
        assert checker.in_bound(lower, with_cores, upper)
