"""Tests for CreateBounds (Algorithm 2) and MinFix (Algorithms 5/6)."""

from repro.core.bounds import bounds_admit, create_bounds
from repro.core.minfix import build_truth_table, map_atom_preds, min_fix, min_fix_pos
from repro.logic.formulas import (
    Comparison,
    FALSE,
    Not,
    TRUE,
    conj,
    disj,
    neg,
)
from repro.logic.terms import add, const, intvar

A, B, C, D, E, F = (intvar(x) for x in "ABCDEF")


def cmp(op, lhs, rhs):
    return Comparison(op, lhs, rhs)


def example5_predicates():
    """P and P* from paper Example 5 / Figure 1."""
    p_star = (cmp("=", A, C) & (cmp("<", E, const(5)) | cmp(">", D, const(10)) | cmp("<", D, const(7)))) | (
        cmp("=", A, B) & (cmp("<>", D, E) | cmp(">", D, F))
    )
    p = (cmp("=", A, C) & (cmp("<>", D, E) | cmp(">", D, F))) | (
        cmp("=", A, C)
        & (cmp(">", D, const(11)) | cmp("<", D, const(7)) | cmp("<=", E, const(5)))
    )
    return p, p_star


class TestCreateBounds:
    def test_site_at_root(self):
        p, _ = example5_predicates()
        assert create_bounds(p, [()]) == (FALSE, TRUE)

    def test_no_sites_bound_is_tight(self):
        p, _ = example5_predicates()
        lower, upper = create_bounds(p, [])
        assert lower == p and upper == p

    def test_atom_site_inside_and(self):
        # (A=C and X) with X a site: bound is [FALSE, A=C].
        formula = cmp("=", A, C) & cmp("<", D, const(7))
        lower, upper = create_bounds(formula, [(1,)])
        assert lower == FALSE
        assert upper == cmp("=", A, C)

    def test_atom_site_inside_or(self):
        formula = cmp("=", A, C) | cmp("<", D, const(7))
        lower, upper = create_bounds(formula, [(0,)])
        assert lower == cmp("<", D, const(7))
        assert upper == TRUE

    def test_not_flips_bounds(self):
        formula = Not(cmp("=", A, C) & cmp("<", D, const(7)))
        lower, upper = create_bounds(formula, [(0, 1)])
        # Child bound: [FALSE, A=C]; negation: [not(A=C), TRUE].
        assert lower == neg(cmp("=", A, C))
        assert upper == TRUE

    def test_example7_root_bounds(self, solver):
        # Paper Example 7: sites {x4, x10, x12} give root bounds
        # [A=C and D<7,  D<>E or D>F or A=C].
        p, p_star = example5_predicates()
        sites = [(0, 0), (1, 1, 0), (1, 1, 2)]
        lower, upper = create_bounds(p, sites)
        expected_lower = cmp("=", A, C) & cmp("<", D, const(7))
        expected_upper = disj(cmp("<>", D, E), cmp(">", D, F), cmp("=", A, C))
        assert solver.is_equiv(lower, expected_lower)
        assert solver.is_equiv(upper, expected_upper)
        assert bounds_admit(solver, lower, p_star, upper)

    def test_viability_rejects_insufficient_sites(self, solver):
        # Fixing only x11 (D<7) cannot reach P*.
        p, p_star = example5_predicates()
        lower, upper = create_bounds(p, [(1, 1, 1)])
        assert not bounds_admit(solver, lower, p_star, upper)

    def test_bounds_always_contain_any_fix_result(self, solver):
        # Lemma 5.3 sanity: applying arbitrary fixes stays within bounds.
        from repro.logic.paths import replace_at

        p, _ = example5_predicates()
        sites = [(0, 0), (1, 1, 0)]
        lower, upper = create_bounds(p, sites)
        for fix in (TRUE, FALSE, cmp("=", A, B), cmp(">", D, F)):
            repaired = replace_at(p, {site: fix for site in sites})
            assert solver.in_bound(lower, repaired, upper)


class TestMapAtomPreds:
    def test_merges_equivalent_atoms(self, solver):
        f1 = cmp("=", add(A, const(1)), add(B, const(1)))
        f2 = cmp("=", A, B)
        mapping = map_atom_preds([f1, f2], solver)
        assert mapping.num_vars == 1

    def test_merges_negation_equivalent_atoms(self, solver):
        f1 = cmp("<", A, B)
        f2 = cmp(">=", A, B)
        mapping = map_atom_preds([conj(f1, f2)], solver)
        assert mapping.num_vars == 1
        assert mapping.polarity[f1][0] == mapping.polarity[f2][0]
        assert mapping.polarity[f1][1] != mapping.polarity[f2][1]

    def test_distinct_atoms_get_distinct_vars(self, solver):
        mapping = map_atom_preds([cmp("<", A, B) & cmp("<", B, C)], solver)
        assert mapping.num_vars == 2

    def test_evaluate_respects_polarity(self, solver):
        f = cmp("<", A, B)
        g = cmp(">=", A, B)
        mapping = map_atom_preds([f, g], solver)
        assert mapping.evaluate(f, 0b1) != mapping.evaluate(g, 0b1)


class TestBuildTruthTable:
    def test_infeasible_rows_are_dont_care(self, solver):
        # Atoms A=B and A<B cannot both hold.
        lower = cmp("=", A, B) & cmp("<", A, B)
        upper = lower
        mapping = map_atom_preds([lower, upper], solver)
        table = build_truth_table(mapping, lower, upper, solver)
        both_true = (1 << mapping.num_vars) - 1
        assert table.output(both_true) == "*"

    def test_gap_rows_are_dont_care(self, solver):
        lower = cmp("=", A, const(5))
        upper = TRUE
        mapping = map_atom_preds([lower, upper], solver)
        table = build_truth_table(mapping, lower, upper, solver)
        assert table.output(0) == "*"  # l=0, u=1 -> don't care


class TestMinFix:
    def test_tight_bound_returns_equivalent(self, solver):
        target = cmp("=", A, B) & cmp("<", C, const(5))
        fix = min_fix(target, target, solver)
        assert solver.is_equiv(fix, target)

    def test_degenerate_true(self, solver):
        assert min_fix(TRUE, TRUE, solver) == TRUE

    def test_degenerate_false(self, solver):
        assert min_fix(FALSE, FALSE, solver) == FALSE

    def test_full_slack_gives_constant(self, solver):
        assert min_fix(FALSE, TRUE, solver) in (TRUE, FALSE)

    def test_loose_bound_allows_smaller_formula(self, solver):
        # Paper Section 5.2 example: [a1&a2&a3, (a1&a2)|a3] admits just a3.
        a1 = cmp("=", A, const(1))
        a2 = cmp("=", B, const(2))
        a3 = cmp("=", C, const(3))
        lower = conj(a1, a2, a3)
        upper = disj(conj(a1, a2), a3)
        fix = min_fix(lower, upper, solver)
        assert fix == a3

    def test_result_always_within_bounds(self, solver):
        lower = cmp("=", A, B) & cmp(">", C, const(0))
        upper = cmp("=", A, B) | cmp(">", C, const(0))
        fix = min_fix(lower, upper, solver)
        assert solver.in_bound(lower, fix, upper)

    def test_example14(self, solver):
        # l = (a>=b and f=e) or a=b ; u = a=b or e=f or a>b ; answer a>=b.
        lower = disj(conj(cmp(">=", A, B), cmp("=", F, E)), cmp("=", A, B))
        upper = disj(cmp("=", A, B), cmp("=", E, F), cmp(">", A, B))
        fix = min_fix(lower, upper, solver)
        assert solver.is_equiv(fix, cmp(">=", A, B))
        assert fix.size() == 1

    def test_pos_variant_within_bounds(self, solver):
        lower = cmp("=", A, B) & cmp(">", C, const(0))
        upper = cmp("=", A, B) | cmp(">", C, const(0))
        fix = min_fix_pos(lower, upper, solver)
        assert solver.in_bound(lower, fix, upper)

    def test_pos_variant_conjunctive_target(self, solver):
        target = cmp("=", A, B) & cmp("<", C, D)
        fix = min_fix_pos(target, target, solver)
        assert solver.is_equiv(fix, target)
