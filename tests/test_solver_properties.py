"""Property-based tests: the SMT solver against brute-force evaluation.

Random small formulas over bounded integer domains are checked: whenever
the solver says UNSAT, exhaustive enumeration must find no model; whenever
it says SAT and the formula is within the complete fragment, enumeration
over a modest domain usually finds one (we only assert the sound
direction, which is the one Qr-Hint's correctness relies on).
"""

import itertools
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.logic.evaluate import eval_formula
from repro.logic.formulas import Comparison, conj, disj, neg
from repro.logic.terms import add, const, intvar
from repro.solver import Solver

VARS = [intvar("x"), intvar("y"), intvar("z")]
OPS = ["=", "<>", "<", "<=", ">", ">="]

atom_strategy = st.builds(
    lambda op, vi, rhs_kind, vj, k: Comparison(
        op,
        VARS[vi],
        VARS[vj] if rhs_kind else add(VARS[vj], const(k)) if k else const(k),
    ),
    st.sampled_from(OPS),
    st.integers(0, 2),
    st.booleans(),
    st.integers(0, 2),
    st.integers(-2, 2),
)


def formula_strategy(depth=2):
    if depth == 0:
        return atom_strategy
    sub = formula_strategy(depth - 1)
    return st.one_of(
        atom_strategy,
        st.builds(lambda a, b: conj(a, b), sub, sub),
        st.builds(lambda a, b: disj(a, b), sub, sub),
        st.builds(neg, sub),
    )


def brute_force_satisfiable(formula, domain=range(-3, 4)):
    names = sorted({v.name for v in formula.variables()})
    if not names:
        return eval_formula(formula, {})
    for values in itertools.product(domain, repeat=len(names)):
        env = {n: Fraction(v) for n, v in zip(names, values)}
        if eval_formula(formula, env):
            return True
    return False


SOLVER = Solver()


@settings(max_examples=150, deadline=None)
@given(formula_strategy())
def test_unsat_verdicts_are_sound(formula):
    """If the solver reports UNSAT, brute force must find no model."""
    if SOLVER.is_unsatisfiable(formula):
        assert not brute_force_satisfiable(formula)


@settings(max_examples=150, deadline=None)
@given(formula_strategy())
def test_brute_force_models_imply_sat(formula):
    """If enumeration finds a model, the solver must agree it is SAT."""
    if brute_force_satisfiable(formula):
        assert SOLVER.is_satisfiable(formula)


@settings(max_examples=100, deadline=None)
@given(formula_strategy(depth=1), formula_strategy(depth=1))
def test_equivalence_agrees_with_brute_force(left, right):
    """Solver equivalence implies pointwise agreement on a finite domain."""
    if not SOLVER.is_equiv(left, right):
        return
    names = sorted(
        {v.name for v in left.variables()} | {v.name for v in right.variables()}
    )
    for values in itertools.product(range(-3, 4), repeat=len(names)):
        env = {n: Fraction(v) for n, v in zip(names, values)}
        assert eval_formula(left, env) == eval_formula(right, env)


@settings(max_examples=100, deadline=None)
@given(formula_strategy(depth=1))
def test_negation_flips_validity(formula):
    """valid(f) iff unsat(not f)."""
    assert SOLVER.is_valid(formula) == SOLVER.is_unsatisfiable(neg(formula))


@settings(max_examples=60, deadline=None)
@given(formula_strategy(depth=1), formula_strategy(depth=1))
def test_conjunction_unsat_propagates(left, right):
    """If a conjunct is UNSAT, the conjunction must be too."""
    if SOLVER.is_unsatisfiable(left):
        assert SOLVER.is_unsatisfiable(conj(left, right))
