"""Tests for aggregate normalization and HAVING contexts (Appendix E)."""

from repro.catalog import SqlType
from repro.logic.formulas import Comparison
from repro.logic.terms import AggCall, add, const, intvar, mul, sub
from repro.solver.aggregates import (
    HavingContext,
    agg_scalar_var,
    normalize_aggregate,
    scalarize_formula,
    scalarize_term,
)

X, Y = intvar("t.x"), intvar("t.y")


class TestNormalization:
    def test_sum_of_scaled_column(self, solver):
        # SUM(x * 2) = 2 * SUM(x)
        left, _ = scalarize_term(AggCall("SUM", mul(X, const(2))))
        right, _ = scalarize_term(mul(const(2), AggCall("SUM", X)))
        assert solver.terms_equal(left, right)

    def test_sum_of_sum(self, solver):
        # SUM(x + y) = SUM(x) + SUM(y)
        left, _ = scalarize_term(AggCall("SUM", add(X, Y)))
        right, _ = scalarize_term(add(AggCall("SUM", X), AggCall("SUM", Y)))
        assert solver.terms_equal(left, right)

    def test_sum_of_difference(self, solver):
        left, _ = scalarize_term(AggCall("SUM", sub(X, Y)))
        right, _ = scalarize_term(sub(AggCall("SUM", X), AggCall("SUM", Y)))
        assert solver.terms_equal(left, right)

    def test_sum_of_constant_is_count(self, solver):
        # SUM(3) = 3 * COUNT(*)
        left, _ = scalarize_term(AggCall("SUM", const(3)))
        right, _ = scalarize_term(mul(const(3), AggCall("COUNT", None)))
        assert solver.terms_equal(left, right)

    def test_avg_shift(self, solver):
        # AVG(x + 5) = AVG(x) + 5  (constant not multiplied by count)
        left, _ = scalarize_term(AggCall("AVG", add(X, const(5))))
        right, _ = scalarize_term(add(AggCall("AVG", X), const(5)))
        assert solver.terms_equal(left, right)

    def test_count_arg_is_count_star(self):
        assert normalize_aggregate(AggCall("COUNT", X)) == AggCall("COUNT", None)

    def test_count_distinct_not_collapsed(self):
        normalized = normalize_aggregate(AggCall("COUNT", X, distinct=True))
        assert isinstance(normalized, AggCall)
        assert normalized.distinct

    def test_min_positive_scaling(self, solver):
        # MIN(2x + 1) = 2 MIN(x) + 1
        left, _ = scalarize_term(
            AggCall("MIN", add(mul(const(2), X), const(1)))
        )
        right, _ = scalarize_term(
            add(mul(const(2), AggCall("MIN", X)), const(1))
        )
        assert solver.terms_equal(left, right)

    def test_min_negative_scaling_flips_to_max(self, solver):
        # MIN(-x) = -MAX(x)
        left, _ = scalarize_term(AggCall("MIN", mul(const(-1), X)))
        right, _ = scalarize_term(mul(const(-1), AggCall("MAX", X)))
        assert solver.terms_equal(left, right)

    def test_sum_distinct_blocks_linearity(self, solver):
        left, _ = scalarize_term(AggCall("SUM", mul(X, const(2)), distinct=True))
        right, _ = scalarize_term(
            mul(const(2), AggCall("SUM", X, distinct=True))
        )
        assert not solver.terms_equal(left, right)

    def test_scalar_var_types(self):
        assert agg_scalar_var(AggCall("COUNT", None)).vtype == SqlType.INT
        assert agg_scalar_var(AggCall("AVG", X)).vtype == SqlType.FLOAT
        assert agg_scalar_var(AggCall("MAX", X)).vtype == SqlType.INT


class TestScalarizeFormula:
    def test_shape_preserved(self):
        formula = Comparison(">", AggCall("SUM", X), const(10)) & Comparison(
            "<", X, const(5)
        )
        scalar, aggs = scalarize_formula(formula)
        assert type(scalar) is type(formula)
        assert len(scalar.operands) == 2
        assert aggs == {AggCall("SUM", X)}

    def test_no_aggregates_is_identity(self):
        formula = Comparison("=", X, Y)
        scalar, aggs = scalarize_formula(formula)
        assert scalar == formula
        assert not aggs


class TestHavingContext:
    def test_count_at_least_one(self, solver):
        context = HavingContext(Comparison(">", X, const(0)), []).build(set())
        count = agg_scalar_var(AggCall("COUNT", None))
        assert solver.is_unsatisfiable(Comparison("=", count, const(0)), context)

    def test_witness_bounds_max(self, solver):
        # WHERE x > 100 implies MAX(x) >= 101 over INT (paper Example 3).
        where = Comparison(">", X, const(100))
        aggs = {AggCall("MAX", X)}
        context = HavingContext(where, []).build(aggs)
        max_var = agg_scalar_var(AggCall("MAX", X))
        assert solver.is_valid(Comparison(">=", max_var, const(101)), context)

    def test_min_le_avg_le_max(self, solver):
        where = Comparison(">", X, const(0))
        aggs = {AggCall("AVG", X)}
        context = HavingContext(where, []).build(aggs)
        min_var = agg_scalar_var(AggCall("MIN", X))
        avg_var = agg_scalar_var(AggCall("AVG", X))
        max_var = agg_scalar_var(AggCall("MAX", X))
        assert solver.is_valid(Comparison("<=", min_var, avg_var), context)
        assert solver.is_valid(Comparison("<=", avg_var, max_var), context)

    def test_group_vars_shared_with_where(self, solver):
        # WHERE x = y with x grouped: the scalar x in HAVING obeys WHERE
        # facts about grouped columns only through the witness rows.
        where = Comparison(">", X, const(4)) & Comparison("=", X, Y)
        context = HavingContext(where, [X]).build(set())
        assert solver.is_valid(Comparison(">", X, const(4)), context)

    def test_compound_group_term_constant_within_group(self, solver):
        # GROUP BY x+y: the witness rows agree on the value of x+y.
        where = Comparison(">", X, const(0))
        group_term = add(X, Y)
        ctx_builder = HavingContext(where, [group_term])
        context = ctx_builder.build({AggCall("MIN", X)})
        # The group value variable appears in the context.
        names = set()
        for fact in context:
            names |= {v.name for v in fact.variables()}
        assert any(name.startswith("group[") for name in names)
