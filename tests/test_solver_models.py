"""Tests for model extraction: SAT snapshots and theory-level valuations."""

import random
from fractions import Fraction

import pytest

from repro.logic.evaluate import eval_formula
from repro.logic.formulas import Comparison, conj, disj, neg
from repro.logic.linear import LinExpr
from repro.logic.terms import Const, const, floatvar, intvar, strvar
from repro.solver import Solver, TheoryModel
from repro.solver.arith import Constraint, EQ, LE, LT, evaluate, find_model
from repro.solver.sat import SatSolver
from repro.solver.strings import find_model as find_string_model


def _clause_satisfied(clause, model):
    return any(model.get(abs(lit), False) == (lit > 0) for lit in clause)


class TestSatModelSnapshot:
    def test_model_none_before_any_solve(self):
        assert SatSolver().model() is None

    def test_model_satisfies_all_clauses(self):
        solver = SatSolver()
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is not None
        model = solver.model()
        assert all(_clause_satisfied(c, model) for c in clauses)

    def test_model_cleared_on_unsat(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is not None
        assert solver.model() is not None
        solver.add_clause([-1])
        solver.add_clause([-2])
        assert solver.solve() is None
        assert solver.model() is None

    def test_snapshot_is_a_copy(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.solve()
        snapshot = solver.model()
        snapshot[1] = False
        assert solver.model()[1] is True

    def test_snapshot_survives_clause_additions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve() is not None
        before = solver.model()
        solver.add_clause([-1, 2])  # no solve yet
        assert solver.model() == before

    def test_random_cnf_models_verify(self):
        rng = random.Random(11)
        for _ in range(60):
            solver = SatSolver()
            num_vars = rng.randint(3, 8)
            clauses = []
            for _ in range(rng.randint(2, 20)):
                clause = [
                    rng.choice([-1, 1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 4))
                ]
                clauses.append(clause)
                solver.add_clause(clause)
            if solver.solve(()) is not None:
                model = solver.model()
                assert all(_clause_satisfied(c, model) for c in clauses)


class TestArithFindModel:
    def test_equalities_and_bounds(self):
        x, y = intvar("x"), intvar("y")
        cons = [
            Constraint(LinExpr.build({x: Fraction(1), y: Fraction(-1)}, 0), EQ),
            Constraint(LinExpr.build({x: Fraction(-1)}, Fraction(5)), LT),
        ]
        model = find_model(cons)
        assert model[x] == model[y]
        assert model[x] > 5

    def test_integer_preference_in_interval(self):
        x = intvar("x")
        cons = [
            Constraint(LinExpr.build({x: Fraction(-1)}, Fraction(3, 2)), LE),
            Constraint(LinExpr.build({x: Fraction(1)}, Fraction(-7, 2)), LE),
        ]
        model = find_model(cons)  # 1.5 <= x <= 3.5
        assert model[x].denominator == 1
        assert Fraction(3, 2) <= model[x] <= Fraction(7, 2)

    def test_disequality_sides_resolved(self):
        x = intvar("x")
        zero_pinned = [
            Constraint(LinExpr.build({x: Fraction(1)}, 0), LE),
            Constraint(LinExpr.build({x: Fraction(-1)}, 0), LE),
        ]
        assert find_model(zero_pinned, [LinExpr.of_term(x)]) is None
        model = find_model(zero_pinned[:1], [LinExpr.of_term(x)])
        assert model[x] != 0 and model[x] <= 0

    def test_unconstrained_terms_get_explicit_values(self):
        x, y = intvar("x"), intvar("y")
        # y's only constraint is consumed when x is eliminated; y must
        # still appear in the model.
        cons = [
            Constraint(LinExpr.build({x: Fraction(-1)}, Fraction(100)), LT),
            Constraint(LinExpr.build({y: Fraction(1), x: Fraction(-1)}, 0), LE),
        ]
        model = find_model(cons)
        assert x in model and y in model
        assert model[y] <= model[x]

    def test_fuzz_matches_decision_procedure(self):
        from repro.solver.arith import is_satisfiable

        rng = random.Random(3)
        variables = [intvar(f"v{i}") for i in range(3)] + [floatvar("f")]
        for _ in range(400):
            constraints, disequalities = [], []
            for _ in range(rng.randint(1, 5)):
                coeffs = {
                    v: Fraction(rng.randint(-3, 3))
                    for v in rng.sample(variables, rng.randint(1, 3))
                }
                expr = LinExpr.build(coeffs, Fraction(rng.randint(-5, 5)))
                kind = rng.random()
                if kind < 0.25:
                    constraints.append(Constraint(expr, EQ))
                elif kind < 0.6:
                    constraints.append(Constraint(expr, LE))
                elif kind < 0.8:
                    constraints.append(Constraint(expr, LT))
                else:
                    disequalities.append(expr)
            model = find_model(constraints, disequalities)
            assert (model is not None) == is_satisfiable(
                constraints, disequalities
            )
            if model is None:
                continue
            for c in constraints:
                value = evaluate(c.expr, model)
                assert (
                    value == 0 if c.rel == EQ
                    else value <= 0 if c.rel == LE
                    else value < 0
                )
            for d in disequalities:
                assert evaluate(d, model) != 0


class TestStringFindModel:
    def test_equality_chain_with_constant(self):
        a, b = strvar("a"), strvar("b")
        model = find_string_model(
            [(a, b), (b, Const.of("Systems"))], [], []
        )
        assert model[a] == model[b] == "Systems"

    def test_conflicting_constants_unsat(self):
        a = strvar("a")
        assert find_string_model(
            [(a, Const.of("x")), (a, Const.of("y"))], [], []
        ) is None

    def test_disequalities_get_distinct_values(self):
        a, b, c = strvar("a"), strvar("b"), strvar("c")
        model = find_string_model([], [(a, b), (b, c), (a, c)], [])
        assert len({model[a], model[b], model[c]}) == 3

    def test_like_patterns_instantiated(self):
        from repro.logic.evaluate import sql_like

        a, b = strvar("a"), strvar("b")
        model = find_string_model(
            [], [(a, b)],
            [(a, "Sys%", True), (b, "Sys%", True), (b, "%z", False)],
        )
        assert sql_like(model[a], "Sys%")
        assert sql_like(model[b], "Sys%")
        assert not sql_like(model[b], "%z")
        assert model[a] != model[b]

    def test_negative_like_with_pinned_constant_unsat(self):
        a = strvar("a")
        assert find_string_model(
            [(a, Const.of("Systems"))], [], [(a, "Sys%", False)]
        ) is None


class TestSolverFindModel:
    def test_returns_theory_model_satisfying_formula(self):
        solver = Solver()
        x, y = intvar("t.x"), intvar("t.y")
        a = strvar("t.a")
        formula = conj(
            Comparison(">", x, const(100)),
            Comparison("<=", y, x),
            Comparison("=", a, const("Database")),
        )
        model = solver.find_model(formula)
        assert isinstance(model, TheoryModel)
        assert model.complete
        assert eval_formula(formula, model.env())

    def test_atom_polarities_exposed(self):
        solver = Solver()
        x = intvar("t.x")
        model = solver.find_model(Comparison(">", x, const(0)))
        assert len(model.atoms) == 1
        [(atom, positive)] = model.atoms.items()
        assert atom.kind == "num_le"

    def test_unsat_returns_none(self):
        solver = Solver()
        x = intvar("t.x")
        formula = conj(Comparison("<", x, const(0)), Comparison(">", x, const(5)))
        assert solver.find_model(formula) is None

    def test_context_constrains_model(self):
        solver = Solver()
        x = intvar("t.x")
        model = solver.find_model(
            Comparison(">", x, const(0)), context=(Comparison(">", x, const(50)),)
        )
        assert model.value(x) > 50

    def test_trivially_true_formula(self):
        solver = Solver()
        model = solver.find_model(Comparison("=", const(1), const(1)))
        assert model is not None and model.values == {}

    def test_incomplete_flag_for_opaque_atoms(self):
        solver = Solver()
        a, b = strvar("t.a"), strvar("t.b")
        x = intvar("t.x")
        # LIKE with a non-constant pattern is an opaque atom.
        formula = conj(Comparison("LIKE", a, b), Comparison(">", x, const(1)))
        model = solver.find_model(formula)
        assert model is not None
        assert not model.complete
        assert model.value(x) > 1

    def test_fuzz_models_satisfy_when_complete(self):
        solver = Solver()
        rng = random.Random(21)
        numeric = [intvar("t.x"), intvar("t.y"), floatvar("t.f")]
        stringy = [strvar("t.a"), strvar("t.b")]

        def random_atom():
            if rng.random() < 0.65:
                left, right = rng.sample(
                    numeric + [const(rng.randint(-4, 4))], 2
                )
                op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
            else:
                left = rng.choice(stringy)
                right = rng.choice(
                    [t for t in stringy if t is not left]
                    + [const("Amy"), const("Bob")]
                )
                op = rng.choice(["=", "<>"])
            return Comparison(op, left, right)

        checked = 0
        for _ in range(250):
            formula = random_atom()
            for _ in range(rng.randint(1, 4)):
                other = random_atom()
                formula = (
                    conj(formula, other)
                    if rng.random() < 0.6
                    else disj(formula, neg(other))
                )
            model = solver.find_model(formula)
            assert (model is not None) == solver.is_satisfiable(formula)
            if model is None or not model.complete:
                continue
            env = dict(model.env())
            for var in formula.variables():
                env.setdefault(
                    var.name, Fraction(0) if var.type.is_numeric else "w"
                )
            assert eval_formula(formula, env)
            checked += 1
        assert checked > 100


class TestEvaluateHelper:
    def test_missing_terms_default_to_zero(self):
        x = intvar("x")
        expr = LinExpr.build({x: Fraction(2)}, Fraction(3))
        assert evaluate(expr, {}) == 3
        assert evaluate(expr, {x: Fraction(2)}) == 7
