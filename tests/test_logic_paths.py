"""Tests for repro.logic.paths (tree addressing)."""

import pytest

from repro.logic.formulas import And, Comparison, Not, Or
from repro.logic.paths import (
    all_paths,
    disjoint_path_sets,
    is_prefix,
    node_at,
    paths_disjoint,
    paths_under,
    replace_at,
)
from repro.logic.terms import const, intvar

A = Comparison("=", intvar("a"), const(1))
B = Comparison("=", intvar("b"), const(2))
C = Comparison("=", intvar("c"), const(3))
TREE = Or((And((A, B)), C))  # paths: ()=Or, (0,)=And, (0,0)=A, (0,1)=B, (1,)=C


class TestNavigation:
    def test_node_at_root(self):
        assert node_at(TREE, ()) is TREE

    def test_node_at_nested(self):
        assert node_at(TREE, (0, 1)) == B
        assert node_at(TREE, (1,)) == C

    def test_all_paths_preorder(self):
        paths = [p for p, _ in all_paths(TREE)]
        assert paths == [(), (0,), (0, 0), (0, 1), (1,)]

    def test_is_prefix(self):
        assert is_prefix((), (0, 1))
        assert is_prefix((0,), (0, 1))
        assert not is_prefix((1,), (0, 1))
        assert is_prefix((0, 1), (0, 1))


class TestDisjointness:
    def test_paths_disjoint_true(self):
        assert paths_disjoint([(0, 0), (0, 1), (1,)])

    def test_paths_disjoint_false_on_ancestor(self):
        assert not paths_disjoint([(0,), (0, 1)])

    def test_paths_under(self):
        assert paths_under([(0, 0), (0, 1), (1,)], (0,)) == [(0,), (1,)]

    def test_disjoint_path_sets_size_one(self):
        sets = list(disjoint_path_sets([p for p, _ in all_paths(TREE)], 1))
        assert len(sets) == 5

    def test_disjoint_path_sets_excludes_overlaps(self):
        sets = list(disjoint_path_sets([p for p, _ in all_paths(TREE)], 2))
        for pair in sets:
            assert paths_disjoint(pair)
        assert ((0,), (1,)) in sets
        assert all((0,) not in s or (0, 0) not in s for s in sets)


class TestReplace:
    def test_replace_leaf(self):
        new = replace_at(TREE, {(0, 0): C})
        assert node_at(new, (0, 0)) == C
        assert node_at(new, (0, 1)) == B  # untouched sibling

    def test_replace_root(self):
        assert replace_at(TREE, {(): A}) == A

    def test_replace_multiple(self):
        new = replace_at(TREE, {(0, 0): C, (1,): A})
        assert node_at(new, (0, 0)) == C
        assert node_at(new, (1,)) == A

    def test_replace_inside_not(self):
        tree = Not(And((A, B)))
        new = replace_at(tree, {(0, 1): C})
        assert node_at(new, (0, 1)) == C

    def test_overlapping_replacements_rejected(self):
        with pytest.raises(ValueError):
            replace_at(TREE, {(0,): A, (0, 0): B})

    def test_descending_into_leaf_rejected(self):
        with pytest.raises(ValueError):
            replace_at(TREE, {(1, 0): A})
