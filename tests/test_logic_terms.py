"""Tests for repro.logic.terms."""

from fractions import Fraction

import pytest

from repro.catalog import SqlType
from repro.logic.terms import (
    AggCall,
    Arith,
    Const,
    Neg,
    Var,
    add,
    const,
    div,
    intvar,
    mul,
    strvar,
    sub,
)


class TestConst:
    def test_of_int(self):
        c = const(5)
        assert c.value == Fraction(5)
        assert c.type == SqlType.INT

    def test_of_float(self):
        c = const(2.5)
        assert c.type == SqlType.FLOAT
        assert c.value == Fraction(5, 2)

    def test_of_string(self):
        c = const("Amy")
        assert c.type == SqlType.STRING
        assert str(c) == "'Amy'"

    def test_of_bool(self):
        assert const(True).type == SqlType.BOOL

    def test_string_escaping(self):
        assert str(const("O'Brien")) == "'O''Brien'"

    def test_fraction_integral_renders_as_int(self):
        assert str(const(Fraction(4, 2))) == "2"

    def test_unsupported_value_raises(self):
        with pytest.raises(TypeError):
            Const.of(object())


class TestArith:
    def test_type_promotion(self):
        x = intvar("x")
        y = Var("y", SqlType.FLOAT)
        assert add(x, x).type == SqlType.INT
        assert add(x, y).type == SqlType.FLOAT

    def test_division_is_float(self):
        x = intvar("x")
        assert div(x, const(2)).type == SqlType.FLOAT

    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Arith("%", intvar("x"), intvar("y"))

    def test_size_counts_nodes(self):
        x = intvar("x")
        expr = add(mul(x, const(2)), const(1))  # (+ (* x 2) 1) = 5 nodes
        assert expr.size() == 5

    def test_neg(self):
        x = intvar("x")
        assert Neg(x).type == SqlType.INT
        assert Neg(x).size() == 2


class TestVariables:
    def test_variables_collects_vars(self):
        x, y = intvar("x"), intvar("y")
        expr = add(x, mul(y, const(3)))
        assert expr.variables() == {x, y}

    def test_variables_inside_aggregate(self):
        x = intvar("x")
        agg = AggCall("SUM", mul(x, const(2)))
        assert agg.variables() == {x}

    def test_hashable_and_equal(self):
        assert intvar("x") == intvar("x")
        assert len({intvar("x"), intvar("x"), intvar("y")}) == 2


class TestAggCall:
    def test_count_star(self):
        c = AggCall("COUNT", None)
        assert c.type == SqlType.INT
        assert str(c) == "COUNT(*)"

    def test_count_distinct_star_rejected(self):
        with pytest.raises(ValueError):
            AggCall("COUNT", None, distinct=True)

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            AggCall("MEDIAN", intvar("x"))

    def test_avg_is_float(self):
        assert AggCall("AVG", intvar("x")).type == SqlType.FLOAT

    def test_min_preserves_type(self):
        assert AggCall("MIN", strvar("s")).type == SqlType.STRING

    def test_distinct_rendering(self):
        agg = AggCall("SUM", intvar("x"), distinct=True)
        assert str(agg) == "SUM(DISTINCT x)"

    def test_aggregates_collection(self):
        agg = AggCall("MAX", intvar("x"))
        expr = add(agg, const(1))
        assert expr.aggregates() == {agg}
        assert expr.has_aggregate()

    def test_sub_helper(self):
        expr = sub(intvar("a"), intvar("b"))
        assert str(expr) == "(a - b)"
