"""Tests for the unified perf-regression sentinel (repro.obs.baseline)."""

import json

import pytest

from repro.obs.baseline import (
    BENCHMARKS,
    Benchmark,
    Metric,
    PerfDiff,
    compare,
    infer_bench,
    load_committed,
    parse_gate,
    perfdiff,
    repo_root,
    resolve_paths,
)


class TestParseGate:
    @pytest.mark.parametrize("text,expected", [
        ("0.5x", 0.5), ("0.5", 0.5), ("0.75X", 0.75), ("1x", 1.0),
        (" 0.9x ", 0.9),
    ])
    def test_accepts(self, text, expected):
        assert parse_gate(text) == expected

    @pytest.mark.parametrize("text", ["0", "0x", "1.5x", "-0.5", "fast"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_gate(text)


class TestResolvePaths:
    DOC = {
        "kernels": {
            "b": {"ops_per_sec": 2.0},
            "a": {"ops_per_sec": 1.0, "models_per_sec": 9.0},
        },
        "flat": 7,
    }

    def test_plain_path(self):
        assert resolve_paths(self.DOC, "flat") == [("flat", 7)]

    def test_wildcard_fans_out_sorted(self):
        assert resolve_paths(self.DOC, "kernels.*.ops_per_sec") == [
            ("kernels.a.ops_per_sec", 1.0),
            ("kernels.b.ops_per_sec", 2.0),
        ]

    def test_missing_segments_yield_nothing(self):
        assert resolve_paths(self.DOC, "kernels.c.ops_per_sec") == []
        assert resolve_paths(self.DOC, "flat.deeper") == []


SPEC = Benchmark(
    name="fake",
    filename="BENCH_fake.json",
    command=("true",),
    metrics=(
        Metric("speed"),
        Metric("floor", min_ratio=0.9, noise=0.0),
        Metric("invariant", direction="exact"),
        Metric("overhead", direction="bound_max", bound=0.02),
        Metric("tracked", gated=False),
    ),
)


def one(committed, fresh, path):
    results = [r for r in compare(SPEC, committed, fresh) if r.path == path]
    assert len(results) == 1
    return results[0]


class TestCompareVerdicts:
    def test_higher_within_noise_is_ok(self):
        r = one({"speed": 100.0}, {"speed": 95.0}, "speed")
        assert r.status == "ok" and r.ratio == 0.95

    def test_higher_improved_beyond_noise(self):
        assert one({"speed": 100.0}, {"speed": 130.0}, "speed").status == \
            "improved"

    def test_higher_slower_between_gate_and_noise(self):
        r = one({"speed": 100.0}, {"speed": 70.0}, "speed")
        assert r.status == "slower" and not r.failed

    def test_higher_fails_below_gate(self):
        r = one({"speed": 100.0}, {"speed": 40.0}, "speed")
        assert r.status == "fail" and r.failed

    def test_min_ratio_overrides_global_gate(self):
        # Above the 0.9 floor but below committed with a zero noise
        # band: visible as slower, not a hard failure.
        r = one({"floor": 1.0}, {"floor": 0.95}, "floor")
        assert r.status == "slower" and not r.failed
        assert one({"floor": 1.0}, {"floor": 0.85}, "floor").status == "fail"

    def test_exact_must_match(self):
        assert one({"invariant": True}, {"invariant": True},
                   "invariant").status == "ok"
        r = one({"invariant": True}, {"invariant": False}, "invariant")
        assert r.status == "fail" and "invariant" in r.detail

    def test_bound_max_is_absolute(self):
        assert one({"overhead": 0.01}, {"overhead": 0.015},
                   "overhead").status == "ok"
        # Committed value is irrelevant: only the budget counts.
        assert one({"overhead": 0.001}, {"overhead": 0.03},
                   "overhead").status == "fail"

    def test_ungated_regression_reports_slower_not_fail(self):
        r = one({"tracked": 100.0}, {"tracked": 10.0}, "tracked")
        assert r.status == "slower" and not r.failed

    def test_absent_side_is_skipped_never_fatal(self):
        results = compare(SPEC, {"speed": 100.0, "invariant": True}, {})
        by_path = {r.path: r for r in results}
        assert by_path["speed"].status == "skipped"
        assert by_path["invariant"].status == "skipped"
        assert not any(r.failed for r in results)
        assert "absent from fresh run" in by_path["speed"].detail

    def test_fresh_only_metric_also_skipped(self):
        results = compare(SPEC, {}, {"speed": 50.0})
        assert [r.status for r in results if r.path == "speed"] == ["skipped"]

    def test_non_numeric_higher_skipped(self):
        assert one({"speed": "fast"}, {"speed": 2.0}, "speed").status == \
            "skipped"

    def test_wildcard_mismatch_between_sides(self):
        spec = Benchmark(
            name="w", filename="w.json", command=("true",),
            metrics=(Metric("scenarios.*.speedup", noise=0.3),),
        )
        committed = {"scenarios": {"a": {"speedup": 10.0},
                                   "b": {"speedup": 8.0}}}
        fresh = {"scenarios": {"a": {"speedup": 9.0}}}
        by_path = {r.path: r for r in compare(spec, committed, fresh)}
        assert by_path["scenarios.a.speedup"].status == "ok"
        assert by_path["scenarios.b.speedup"].status == "skipped"


class TestPerfDiffReport:
    def _diff(self):
        diff = PerfDiff(gate=0.5)
        diff.results = compare(SPEC, {"speed": 100.0}, {"speed": 40.0})
        return diff

    def test_failed_on_fail_result_or_error(self):
        assert self._diff().failed
        clean = PerfDiff(gate=0.5)
        assert not clean.failed
        clean.errors["solver"] = "boom"
        assert clean.failed

    def test_render_ends_with_verdict_line(self):
        lines = self._diff().render()
        assert lines[-1].startswith("perfdiff FAIL (gate 0.5x)")
        ok = PerfDiff(gate=0.5)
        ok.results = compare(SPEC, {"speed": 100.0}, {"speed": 100.0})
        assert ok.render()[-1].startswith("perfdiff PASS")

    def test_to_dict_json_safe_with_counts(self):
        payload = json.loads(json.dumps(self._diff().to_dict()))
        assert payload["passed"] is False
        assert payload["counts"] == {"fail": 1}
        assert payload["results"][0]["path"] == "speed"


class TestRegistry:
    def test_all_five_benchmarks_registered(self):
        assert sorted(BENCHMARKS) == [
            "corpus", "obs", "service", "solver", "witness",
        ]

    def test_committed_files_resolve_every_gated_path(self):
        # Each committed BENCH file must actually contain the metrics the
        # sentinel gates on -- a renamed JSON key would otherwise turn
        # the gate into a silent skip.
        for name, spec in BENCHMARKS.items():
            doc = load_committed(name)
            for metric in spec.metrics:
                if metric.gated:
                    assert resolve_paths(doc, metric.path), (
                        f"{name}: no committed value at {metric.path}"
                    )

    def test_infer_bench_from_filenames(self):
        for name, spec in BENCHMARKS.items():
            assert infer_bench(f"/tmp/{spec.filename}") == name
        with pytest.raises(ValueError):
            infer_bench("results.json")

    def test_repo_root_holds_committed_files(self):
        for spec in BENCHMARKS.values():
            assert (repo_root() / spec.filename).exists()


class TestPerfdiffDriver:
    def test_ingest_identical_run_passes(self):
        doc = load_committed("obs")
        diff = perfdiff(["obs"], fresh_docs={"obs": doc}, run=False)
        assert not diff.failed
        assert all(r.status in ("ok", "improved") for r in diff.results)

    def test_no_run_without_fresh_doc_is_an_error(self):
        diff = perfdiff(["solver"], run=False)
        assert diff.failed
        assert "no fresh run supplied" in diff.errors["solver"]

    def test_missing_committed_file_is_an_error(self, tmp_path):
        diff = perfdiff(["solver"], run=False, root=tmp_path)
        assert diff.failed
        assert "cannot load committed file" in diff.errors["solver"]


class TestCli:
    def test_list_prints_registry(self, capsys):
        from repro.cli import main

        assert main(["perfdiff", "--list"]) == 0
        out = capsys.readouterr().out
        for spec in BENCHMARKS.values():
            assert spec.filename in out

    def test_ingest_committed_copy_passes(self, tmp_path, capsys):
        from repro.cli import main

        src = repo_root() / "BENCH_obs.json"
        copy = tmp_path / "BENCH_obs.json"
        copy.write_text(src.read_text())
        code = main([
            "perfdiff", "--ingest", str(copy), "--no-run",
            "--json", str(tmp_path / "out" / "diff.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "perfdiff PASS" in out
        payload = json.loads((tmp_path / "out" / "diff.json").read_text())
        assert payload["passed"] is True

    def test_regressed_ingest_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        doc = load_committed("obs")
        doc["overhead"]["overhead"] = 0.5  # blow the 2% budget
        bad = tmp_path / "BENCH_obs.json"
        bad.write_text(json.dumps(doc))
        assert main(["perfdiff", "--ingest", str(bad), "--no-run"]) == 1
        assert "perfdiff FAIL" in capsys.readouterr().out

    def test_bad_gate_and_unknown_bench_exit_2(self, capsys):
        from repro.cli import main

        assert main(["perfdiff", "--all", "--gate", "2x", "--no-run"]) == 2
        assert main(["perfdiff", "--bench", "nope", "--no-run"]) == 2
        err = capsys.readouterr().err
        assert "gate" in err and "unknown benchmark" in err

    def test_nothing_to_check_exits_2(self, capsys):
        from repro.cli import main

        assert main(["perfdiff"]) == 2
        assert "nothing to check" in capsys.readouterr().err
