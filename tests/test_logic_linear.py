"""Tests for repro.logic.linear (linearization)."""

from fractions import Fraction

import pytest

from repro.logic.linear import (
    LinExpr,
    NonLinearError,
    linearize,
    linexpr_to_term,
    try_linearize,
)
from repro.logic.terms import AggCall, Neg, add, const, div, floatvar, intvar, mul, sub


class TestLinearize:
    def test_constant(self):
        assert linearize(const(7)).constant == 7
        assert linearize(const(7)).is_constant

    def test_variable(self):
        x = intvar("x")
        expr = linearize(x)
        assert expr.coeff_dict() == {x: Fraction(1)}

    def test_sum_and_difference(self):
        x, y = intvar("x"), intvar("y")
        expr = linearize(sub(add(x, y), y))
        assert expr.coeff_dict() == {x: Fraction(1)}

    def test_scaling_by_constant(self):
        x = intvar("x")
        expr = linearize(mul(const(3), x))
        assert expr.coeff_dict() == {x: Fraction(3)}
        expr2 = linearize(mul(x, const(3)))
        assert expr == expr2

    def test_division_by_constant(self):
        x = intvar("x")
        expr = linearize(div(x, const(2)))
        assert expr.coeff_dict() == {x: Fraction(1, 2)}

    def test_nested_arithmetic(self):
        x, y = intvar("x"), intvar("y")
        # 2*(x + 3) - y/2 + 1  ->  2x - y/2 + 7
        term = add(sub(mul(const(2), add(x, const(3))), div(y, const(2))), const(1))
        expr = linearize(term)
        assert expr.coeff_dict() == {x: Fraction(2), y: Fraction(-1, 2)}
        assert expr.constant == 7

    def test_negation(self):
        x = intvar("x")
        assert linearize(Neg(x)).coeff_dict() == {x: Fraction(-1)}

    def test_same_syntax_same_linform(self):
        # a + 1 = b + 1 and a = b linearize to the same difference.
        a, b = intvar("a"), intvar("b")
        left = linearize(add(a, const(1))).sub(linearize(add(b, const(1))))
        right = linearize(a).sub(linearize(b))
        assert left == right

    def test_product_of_vars_rejected(self):
        x, y = intvar("x"), intvar("y")
        with pytest.raises(NonLinearError):
            linearize(mul(x, y))
        assert try_linearize(mul(x, y)) is None

    def test_division_by_var_rejected(self):
        x, y = intvar("x"), intvar("y")
        with pytest.raises(NonLinearError):
            linearize(div(x, y))

    def test_division_by_zero_rejected(self):
        with pytest.raises(NonLinearError):
            linearize(div(intvar("x"), const(0)))

    def test_string_constant_rejected(self):
        with pytest.raises(NonLinearError):
            linearize(const("Amy"))

    def test_aggregate_is_opaque_base_term(self):
        agg = AggCall("SUM", intvar("x"))
        expr = linearize(mul(const(2), agg))
        assert expr.coeff_dict() == {agg: Fraction(2)}


class TestLinExpr:
    def test_add_cancels(self):
        x = intvar("x")
        a = LinExpr.of_term(x)
        assert a.sub(a).is_constant

    def test_scale_zero(self):
        x = intvar("x")
        assert LinExpr.of_term(x).scale(0).is_constant

    def test_is_integral(self):
        x = intvar("x")
        assert LinExpr.build({x: Fraction(2)}, Fraction(3)).is_integral()
        assert not LinExpr.build({x: Fraction(1, 2)}, Fraction(0)).is_integral()

    def test_all_int_typed(self):
        assert LinExpr.of_term(intvar("x")).all_int_typed()
        assert not LinExpr.of_term(floatvar("y")).all_int_typed()

    def test_roundtrip_via_term(self):
        x, y = intvar("x"), intvar("y")
        original = LinExpr.build({x: Fraction(2), y: Fraction(-1)}, Fraction(5))
        assert linearize(linexpr_to_term(original)) == original

    def test_roundtrip_constant_only(self):
        original = LinExpr.of_const(9)
        assert linearize(linexpr_to_term(original)) == original
